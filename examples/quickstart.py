#!/usr/bin/env python3
"""Quickstart: run the paper's four feasibility tests on one instance.

Builds a small heterogeneous platform and a task set, runs each theorem
test, prints the verdicts with their guarantees, then double-checks the
accepted EDF partition by actually simulating it.

Run:  python examples/quickstart.py
"""

from repro import (
    Platform,
    Task,
    TaskSet,
    edf_test_vs_any,
    edf_test_vs_partitioned,
    lp_stress,
    rms_test_vs_any,
    rms_test_vs_partitioned,
)
from repro.sim.multiprocessor import simulate_partitioned


def main() -> None:
    # A sporadic task set: (wcet, period) pairs; utilization = wcet/period.
    taskset = TaskSet(
        [
            Task(wcet=9, period=10, name="video-decode"),   # u = 0.9
            Task(wcet=4, period=8, name="sensor-fusion"),   # u = 0.5
            Task(wcet=2, period=5, name="control-loop"),    # u = 0.4
            Task(wcet=1, period=4, name="telemetry"),       # u = 0.25
            Task(wcet=3, period=20, name="logging"),        # u = 0.15
        ]
    )
    # One fast core and two slow ones (the paper's §I motivation).
    platform = Platform.from_speeds([0.6, 0.6, 2.0])

    print(f"task set: {taskset}")
    print(f"platform: {platform}")
    print(f"LP stress beta* = {lp_stress(taskset, platform):.3f} "
          "(<= 1 means some scheduler could work)\n")

    for test in (
        edf_test_vs_partitioned,
        edf_test_vs_any,
        rms_test_vs_partitioned,
        rms_test_vs_any,
    ):
        report = test(taskset, platform)
        verdict = "ACCEPTED" if report.accepted else "REJECTED"
        print(f"[Theorem {report.theorem}] {report.scheduler.upper()} vs "
              f"{report.adversary} adversary (alpha={report.alpha:.3g}): {verdict}")
        print(f"    {report.guarantee}")

    # Trust, but verify: simulate the Theorem I.1 partition on the
    # 2x-augmented platform — zero deadline misses expected.
    report = edf_test_vs_partitioned(taskset, platform)
    if report.accepted:
        sim = simulate_partitioned(
            taskset, platform, report.partition, "edf", alpha=report.alpha
        )
        print(f"\nsimulated {sim.total_jobs} jobs on the "
              f"{report.alpha:g}x-augmented platform: "
              f"{sim.total_misses} deadline misses")
        for j, idxs in enumerate(report.partition.machine_tasks):
            names = [taskset[i].name for i in idxs]
            print(f"  machine {j} (speed {platform[j].speed:g}): {names} "
                  f"(load {report.partition.loads[j]:.2f})")


if __name__ == "__main__":
    main()
