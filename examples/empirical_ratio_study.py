#!/usr/bin/env python3
"""Mini research study: how tight are the paper's bounds in practice?

Reproduces the core of experiments E4/E5 at laptop scale: generate
instances a partitioned adversary can certifiably schedule, measure the
minimum speed augmentation first-fit needs, and compare the distribution
to the theorem bounds (2 for EDF, 1+sqrt2 for RMS).  Prints a CDF sketch
in ASCII.

Run:  python examples/empirical_ratio_study.py
"""

import numpy as np

from repro.analysis.speedup import empirical_speedup_study
from repro.analysis.stats import empirical_cdf
from repro.workloads.platforms import geometric_platform


def ascii_cdf(alphas, bound: float, width: int = 50) -> str:
    xs, ys = empirical_cdf(list(alphas))
    lines = []
    grid = np.linspace(1.0, bound, 12)
    for g in grid:
        frac = float(np.interp(g, xs, ys, left=0.0, right=1.0))
        bar = "#" * int(frac * width)
        lines.append(f"  alpha <= {g:5.3f} | {bar:<{width}} {frac:5.1%}")
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(2016)
    platform = geometric_platform(4, 8.0)
    print(f"platform: {platform}\n")

    for scheduler in ("edf", "rms"):
        study = empirical_speedup_study(
            rng,
            platform,
            scheduler=scheduler,  # type: ignore[arg-type]
            adversary="partitioned",
            samples=60,
            load=0.99,
        )
        print(
            f"{scheduler.upper()} vs partitioned adversary "
            f"(theorem bound alpha = {study.bound:.4g}):"
        )
        print(f"  measured: {study.summary}")
        print(
            f"  bound respected on all {len(study.alphas)} instances: "
            f"{study.bound_respected}"
        )
        print(ascii_cdf(study.alphas, study.bound))
        print(
            f"  tightness (max observed / bound): {study.tightness:.2f} — "
            "random instances sit far below the worst case.\n"
        )


if __name__ == "__main__":
    main()
