#!/usr/bin/env python3
"""Migration vs partitioning: watching the adversary classes diverge.

The paper compares its partitioned test against two adversaries — a
partitioned one (Theorems I.1/I.2) and a fully migratory one via the §II
LP (Theorems I.3/I.4).  This example executes both worlds on the two
classic separating instances:

1. **Dhall's effect** — one heavy + m light tasks: global EDF (with free
   migration!) misses deadlines while the paper's partitioner places the
   set trivially; migration is not automatically better.
2. **Chunky thirds** — three u≈2/3 tasks on two machines: no partition
   exists, the LP adversary schedules it (fluid/McNaughton), and global
   EDF *also* fails — the LP is strictly stronger than any concrete
   policy, which is why the paper's 2.98/3.34 analyses target it.

Run:  python examples/migration_vs_partitioning.py
"""

from repro.core.feasibility import feasibility_test
from repro.core.lp import lp_feasible, lp_stress
from repro.core.model import Platform, Task, TaskSet
from repro.sim.global_sched import simulate_global
from repro.sim.jobs import PeriodicSource
from repro.sim.multiprocessor import simulate_partitioned

PLATFORM = Platform.from_speeds([1.0, 1.0])


def global_run(taskset: TaskSet, horizon: float):
    tasks = list(taskset)
    sources = [PeriodicSource(t, i) for i, t in enumerate(tasks)]
    return simulate_global(tasks, [1.0, 1.0], "edf", sources, horizon)


def report(name: str, taskset: TaskSet, horizon: float) -> None:
    print(f"--- {name} ---")
    print(f"tasks: {[(t.name, round(t.utilization, 3)) for t in taskset]}")
    print(f"LP (ideal migratory adversary): "
          f"{'feasible' if lp_feasible(taskset, PLATFORM) else 'infeasible'} "
          f"(stress beta* = {lp_stress(taskset, PLATFORM):.3f})")

    ff = feasibility_test(taskset, PLATFORM, "edf", "partitioned", alpha=1.0)
    if ff.accepted:
        sim = simulate_partitioned(taskset, PLATFORM, ff.partition, "edf",
                                   horizon=horizon)
        print(f"partitioned FF-EDF: placed; simulated {sim.total_jobs} jobs, "
              f"{sim.total_misses} misses")
    else:
        print("partitioned FF-EDF: no placement found at speed 1")

    g = global_run(taskset, horizon)
    print(f"global EDF (migratory): {len(g.misses)} of {len(g.jobs)} jobs "
          f"missed, {g.migrations} migrations\n")


def main() -> None:
    dhall = TaskSet(
        [
            Task(1, 10, name="light0"),
            Task(1, 10, name="light1"),
            Task(11.5, 12, name="heavy"),
        ]
    )
    report("Dhall's effect (migration loses)", dhall, horizon=60.0)

    thirds = TaskSet(
        [Task(8, 12, name=f"chunk{i}") for i in range(3)]
    )
    report("Chunky thirds (only the LP wins)", thirds, horizon=12.0)

    print(
        "Takeaway: the partitioned adversary (Theorem I.1's alpha = 2) and\n"
        "the LP adversary (Theorem I.3's alpha = 2.98) genuinely differ, and\n"
        "no concrete migratory policy reaches the LP — the price the paper\n"
        "pays to compare against it is that extra 0.98 of augmentation."
    )


if __name__ == "__main__":
    main()
