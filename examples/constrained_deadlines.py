#!/usr/bin/env python3
"""Beyond the paper: partitioning constrained-deadline task sets.

The paper's tests require implicit deadlines (deadline = period).  Many
control workloads are *constrained* (deadline < period) — e.g. a sensor
sampled every 20 ms whose reading must be processed within 5 ms.  The
library supports these through the demand-bound-function machinery: the
same §III first-fit loop with the exact QPA test as per-machine
admission ("edf-dbf").

This example shows (1) why the utilization test alone is wrong for
constrained deadlines, (2) partitioning a mixed set with DBF admission,
and (3) an ASCII Gantt chart of the resulting schedule with deadline
misses visible when we deliberately tighten one deadline too far.

Run:  python examples/constrained_deadlines.py
"""

from repro.core.dbf import qpa_edf_feasible
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.sim.gantt import render_gantt
from repro.sim.multiprocessor import simulate_partitioned
from repro.sim.uniprocessor import simulate_taskset_on_machine


def main() -> None:
    # (1) utilization lies for constrained deadlines
    tight = [Task(4.5, 10, deadline=5, name="a"), Task(4.5, 10, deadline=5, name="b")]
    print("two tasks, U = 0.9, both due within half a period:")
    print(f"  utilization test (wrongly applied): {'pass' if 0.9 <= 1 else 'fail'}")
    print(f"  exact DBF/QPA test: {'pass' if qpa_edf_feasible(tight, 1.0) else 'FAIL'}")
    trace = simulate_taskset_on_machine(tight, 1.0, "edf", horizon=20)
    print(f"  simulation: {len(trace.misses)} deadline misses (as QPA predicted)\n")

    # (2) partition a mixed implicit/constrained set with DBF admission
    taskset = TaskSet(
        [
            Task(1, 20, deadline=5, name="sensorA"),
            Task(2, 20, deadline=8, name="sensorB"),
            Task(6, 16, name="vision"),
            Task(2, 8, name="actuate"),
            Task(4, 40, deadline=12, name="diag"),
            Task(3, 10, name="telemetry"),
        ]
    )
    platform = Platform.from_speeds([1.0, 1.0])
    result = first_fit_partition(taskset, platform, "edf-dbf")
    print(f"first-fit with exact DBF admission: success = {result.success}")
    for j, idxs in enumerate(result.machine_tasks):
        print(
            f"  machine {j}: {[taskset[i].name for i in idxs]} "
            f"(load {result.loads[j]:.2f})"
        )

    sim = simulate_partitioned(taskset, platform, result, "edf", horizon=80.0)
    print(f"simulated {sim.total_jobs} jobs: {sim.total_misses} misses\n")

    # (3) Gantt of machine 0, then break it on purpose
    print("machine 0 schedule (80 time units):")
    print(render_gantt(sim.traces[0], list(taskset), width=64))

    broken = TaskSet(
        [
            Task(t.wcet, t.period, name=t.name, deadline=2.0)
            if t.name == "vision"
            else t
            for t in taskset
        ]
    )
    print("\nnow demand 'vision' (wcet 6) complete within 2 time units:")
    r2 = first_fit_partition(broken, platform, "edf-dbf")
    print(f"  DBF admission verdict: success = {r2.success} "
          f"(failed task: {broken[r2.failed_task].name if r2.failed_task is not None else '-'})")
    forced = simulate_partitioned(broken, platform, list(sim.assignment), "edf", horizon=80.0)
    print(f"  forcing the old placement anyway: {forced.total_misses} misses")
    print(render_gantt(forced.traces[list(sim.assignment)[2]], list(broken), width=64))


if __name__ == "__main__":
    main()
