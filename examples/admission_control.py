#!/usr/bin/env python3
"""Online admission control with infeasibility certificates.

Scenario: a heterogeneous edge node accepts or declines real-time jobs
(streams) at runtime.  The approximation structure of the paper maps
directly onto the admission policy:

* **admit** when first-fit succeeds at alpha = 1 — the produced partition
  is itself a constructive witness (Theorem II.2) that the node meets
  every deadline at its real speeds;
* on a decline, run the Theorem I.1 test (alpha = 2): if even that
  rejects, the node can hand the requester a *proof* that no partitioned
  placement exists — not just "no";
* declines in the gap (fails at 1, passes at 2) are heuristic: a cleverer
  packing might fit, but never one needing less than half the margin.

The script replays a random arrival sequence, prints the admission log
with the three verdict kinds, shows one rejection certificate in detail,
and verifies the final admitted set end-to-end in the simulator at real
speed (alpha = 1).

Run:  python examples/admission_control.py
"""

import numpy as np

from repro.core.feasibility import edf_test_vs_partitioned, feasibility_test
from repro.core.model import Platform, Task, TaskSet
from repro.sim.multiprocessor import simulate_partitioned

PLATFORM = Platform.from_speeds([0.5, 0.5, 1.0, 2.0])


def main() -> None:
    rng = np.random.default_rng(7)
    admitted: list[Task] = []
    log: list[str] = []
    shown_certificate = False
    counts = {"ADMIT": 0, "DECLINE": 0, "DECLINE*": 0}

    for k in range(40):
        wcet = float(rng.integers(1, 6))
        period = float(rng.choice([4, 5, 8, 10, 16, 20]))
        candidate = Task(wcet, period, name=f"stream{k}")
        trial = TaskSet(admitted + [candidate])
        at_speed_1 = feasibility_test(
            trial, PLATFORM, "edf", "partitioned", alpha=1.0
        )
        if at_speed_1.accepted:
            admitted.append(candidate)
            counts["ADMIT"] += 1
            log.append(
                f"t={k:2d} ADMIT    {candidate.name} "
                f"(u={candidate.utilization:.2f}) -> {len(admitted)} active"
            )
            continue
        theorem = edf_test_vs_partitioned(trial, PLATFORM)
        cert = theorem.certificate
        certified = (not theorem.accepted) and cert is not None and cert.certifies
        kind = "DECLINE*" if certified else "DECLINE"
        counts[kind] += 1
        log.append(
            f"t={k:2d} {kind:8s} {candidate.name} (u={candidate.utilization:.2f})"
            + ("  [proof: no partition exists]" if certified else "  [heuristic]")
        )
        if certified and not shown_certificate:
            shown_certificate = True
            print("--- sample rejection certificate (Theorem I.1) -----")
            print(f"failing utilization  w_n = {cert.w_n:.3f}")
            print(
                f"tasks with u >= w_n demand {cert.prefix_utilization:.3f} "
                "total utilization,"
            )
            print(
                f"but machines fast enough for them (speed >= w_n) offer "
                f"only {cert.eligible_capacity:.3f}."
            )
            print("No partitioned scheduler can place this set. QED")
            print("-----------------------------------------------------\n")

    print("\n".join(log))
    print(f"\nsummary: {counts}")

    # A tenant requests a burst of heavyweight streams (u = 1.9 each —
    # only the fast core can host one).  The Theorem I.1 test rejects
    # with a certificate: show it.
    burst = TaskSet(
        admitted + [Task(9.5, 5.0, name=f"burst{i}") for i in range(4)]
    )
    theorem = edf_test_vs_partitioned(burst, PLATFORM)
    cert = theorem.certificate
    if not theorem.accepted and cert is not None and cert.certifies:
        print("\n--- burst request: certified rejection (Theorem I.1) ---")
        print(f"failing utilization  w_n = {cert.w_n:.3f}")
        print(
            f"tasks with u >= w_n demand {cert.prefix_utilization:.3f} "
            "total utilization,"
        )
        print(
            f"but machines fast enough for them (speed >= w_n) offer "
            f"only {cert.eligible_capacity:.3f}."
        )
        print("No partitioned scheduler can place this set. QED")

    final = TaskSet(admitted)
    report = feasibility_test(final, PLATFORM, "edf", "partitioned", alpha=1.0)
    assert report.accepted
    sim = simulate_partitioned(final, PLATFORM, report.partition, "edf", alpha=1.0)
    print(
        f"final set: {len(final)} streams, U={final.total_utilization:.2f} "
        f"on capacity {PLATFORM.total_speed:.2f}"
    )
    print(
        f"verification at real speed: {sim.total_jobs} jobs simulated, "
        f"{sim.total_misses} misses"
    )


if __name__ == "__main__":
    main()
