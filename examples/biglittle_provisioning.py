#!/usr/bin/env python3
"""Provisioning a big.LITTLE platform for a real-time workload.

Scenario: an embedded vendor must choose, for a fixed die budget, between
(a) many little cores, (b) a few big cores, or (c) a mix — for a workload
of sporadic control/vision tasks.  The theorem tests answer this without
simulation: a configuration is safe to ship if the Theorem I.1 test
accepts at the contractual speed margin.

The script sweeps candidate configurations of (approximately) equal total
capacity, reports which ones the EDF and RMS tests accept, and the speed
margin (minimum alpha) each needs — i.e. how much silicon headroom the
configuration really requires.

Run:  python examples/biglittle_provisioning.py
"""

import numpy as np

from repro.analysis.ratio import min_alpha_first_fit
from repro.core.feasibility import feasibility_test
from repro.io_.tables import format_table
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import big_little_platform

# Candidate configurations: (n_big, n_little); big = 2.0x, little = 0.5x.
# All have total speed ~ 4.0.
CONFIGS = [
    (0, 8),   # all little
    (1, 4),   # 1 big + 4 little
    (2, 0),   # all big
]


def main() -> None:
    rng = np.random.default_rng(42)
    # The workload: 12 tasks, total utilization 3.0 (75% of capacity),
    # with one heavyweight vision task that only fits a big core.
    taskset = generate_taskset(rng, 11, 1.8, u_max=0.45).extended(
        [
            # a 1.2-utilization task: more than any little core can host
            generate_taskset(rng, 1, 1.2, u_max=1.2)[0],
        ]
    )
    print(f"workload: n={len(taskset)}, U={taskset.total_utilization:.2f}, "
          f"max task utilization={taskset.max_utilization:.2f}\n")

    rows = []
    for n_big, n_little in CONFIGS:
        platform = big_little_platform(
            n_big, n_little, big_speed=2.0, little_speed=0.5
        )
        edf = feasibility_test(taskset, platform, "edf", "partitioned", alpha=1.0)
        rms = feasibility_test(taskset, platform, "rms", "partitioned", alpha=1.0)
        try:
            margin = min_alpha_first_fit(taskset, platform, "edf").alpha
        except RuntimeError:
            margin = float("inf")
        rows.append(
            {
                "config": f"{n_big} big + {n_little} little",
                "total speed": platform.total_speed,
                "EDF fits as-is": edf.accepted,
                "RMS fits as-is": rms.accepted,
                "speed margin needed (alpha*)": margin,
            }
        )
    print(format_table(rows, title="Provisioning sweep (equal die budget)"))
    print(
        "\nReading: the all-little config needs a large margin just to host "
        "the heavyweight task (its alpha* is ~ 1.2 / 0.5 = 2.4); mixes trade "
        "margin against core count. A configuration is contractually safe at "
        "speed margin alpha iff alpha* <= alpha."
    )


if __name__ == "__main__":
    main()
