"""Unit and property tests for repro.core.partition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import admission_test
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import (
    first_fit_partition,
    partition,
    verify_partition,
)


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0 * (i + 1)) for i, u in enumerate(utils))


class TestFirstFitBasics:
    def test_single_task_single_machine(self):
        r = first_fit_partition(ts(0.5), Platform.from_speeds([1.0]))
        assert r.success
        assert r.assignment == (0,)
        assert r.loads == (pytest.approx(0.5),)

    def test_task_too_big_fails(self):
        r = first_fit_partition(ts(1.5), Platform.from_speeds([1.0]))
        assert not r.success
        assert r.failed_task == 0
        assert r.assignment == (None,)

    def test_speed_augmentation_rescues(self):
        platform = Platform.from_speeds([1.0])
        assert not first_fit_partition(ts(1.5), platform).success
        assert first_fit_partition(ts(1.5), platform, alpha=2.0).success

    def test_prefers_slowest_feasible_machine(self):
        platform = Platform.from_speeds([1.0, 10.0])
        r = first_fit_partition(ts(0.5), platform)
        assert r.assignment == (0,)  # slow machine first

    def test_big_task_goes_to_fast_machine(self):
        platform = Platform.from_speeds([1.0, 10.0])
        r = first_fit_partition(ts(5.0, 0.5), platform)
        assert r.success
        assert r.assignment[0] == 1
        assert r.assignment[1] == 0

    def test_processes_tasks_in_decreasing_utilization(self):
        taskset = ts(0.1, 0.9, 0.5)
        r = first_fit_partition(taskset, Platform.from_speeds([2.0]))
        assert [taskset[i].utilization for i in r.order] == [0.9, 0.5, 0.1]

    def test_stops_at_first_failure(self):
        # 0.9 placed; 0.8 fails; 0.1 never attempted
        taskset = ts(0.1, 0.9, 0.8)
        r = first_fit_partition(taskset, Platform.from_speeds([1.0]))
        assert not r.success
        assert r.failed_task == 2  # the 0.8 task (original index 2)
        assert r.assignment == (None, 0, None)

    def test_machine_tasks_consistent_with_assignment(self):
        taskset = ts(0.6, 0.6, 0.3, 0.2)
        platform = Platform.from_speeds([1.0, 1.0])
        r = first_fit_partition(taskset, platform)
        assert r.success
        for j, idxs in enumerate(r.machine_tasks):
            for i in idxs:
                assert r.assignment[i] == j

    def test_empty_taskset(self):
        r = first_fit_partition(TaskSet([]), Platform.from_speeds([1.0]))
        assert r.success
        assert r.n_assigned == 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            first_fit_partition(ts(0.5), Platform.from_speeds([1.0]), alpha=0.0)

    def test_rms_ll_admission(self):
        # two tasks of 0.45 exceed the 2-task LL bound 0.828 on one machine
        taskset = ts(0.45, 0.45)
        platform = Platform.from_speeds([1.0, 1.0])
        r = first_fit_partition(taskset, platform, "rms-ll")
        assert r.success
        assert r.assignment[0] != r.assignment[1]

    def test_result_metadata(self):
        r = first_fit_partition(ts(0.5), Platform.from_speeds([1.0]), alpha=1.5)
        assert r.alpha == 1.5
        assert r.test_name == "edf"


class TestStrategyKnobs:
    def test_unknown_orders_rejected(self):
        taskset, platform = ts(0.5), Platform.from_speeds([1.0])
        with pytest.raises(ValueError):
            partition(taskset, platform, task_order="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            partition(taskset, platform, machine_order="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            partition(taskset, platform, fit="bogus")  # type: ignore[arg-type]

    def test_machine_order_desc(self):
        platform = Platform.from_speeds([1.0, 10.0])
        r = partition(ts(0.5), platform, machine_order="speed-desc")
        assert r.assignment == (1,)

    def test_best_fit_picks_fullest(self):
        platform = Platform.from_speeds([1.0, 1.0])
        # place 0.5 (m0 by first-fit part of best: both empty, equal fill -> first),
        # then 0.3 best-fit -> machine with 0.5 (fuller)
        r = partition(ts(0.5, 0.3), platform, fit="best")
        assert r.assignment[0] == r.assignment[1]

    def test_worst_fit_spreads(self):
        platform = Platform.from_speeds([1.0, 1.0])
        r = partition(ts(0.5, 0.3), platform, fit="worst")
        assert r.assignment[0] != r.assignment[1]

    def test_next_fit_advances_pointer(self):
        platform = Platform.from_speeds([1.0, 1.0, 1.0])
        r = partition(ts(0.9, 0.9, 0.9), platform, fit="next")
        assert r.success
        assert sorted(a for a in r.assignment) == [0, 1, 2]

    def test_input_task_order(self):
        taskset = ts(0.1, 0.9)
        r = partition(taskset, Platform.from_speeds([1.0]), task_order="input")
        assert list(r.order) == [0, 1]


class TestVerifyPartition:
    def test_successful_partition_verifies(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 12))
            utils = rng.uniform(0.05, 0.6, size=n)
            taskset = TaskSet(
                Task.from_utilization(float(u), float(rng.uniform(5, 50)))
                for u in utils
            )
            platform = Platform.from_speeds(rng.uniform(0.5, 3.0, size=4).tolist())
            for test in ("edf", "rms-ll"):
                r = first_fit_partition(taskset, platform, test, alpha=2.5)
                if r.success:
                    assert verify_partition(r, taskset, platform)

    def test_failed_partition_does_not_verify(self):
        r = first_fit_partition(ts(1.5), Platform.from_speeds([1.0]))
        assert not verify_partition(r, ts(1.5), Platform.from_speeds([1.0]))


class TestFirstFitProperties:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.5), min_size=1, max_size=14),
        st.lists(st.floats(min_value=0.2, max_value=4.0), min_size=1, max_size=5),
        st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_loads_respect_augmented_capacity(self, utils, speeds, alpha):
        taskset = TaskSet(
            Task.from_utilization(u, 10.0) for u in utils
        )
        platform = Platform.from_speeds(speeds)
        r = first_fit_partition(taskset, platform, "edf", alpha=alpha)
        for j, load in enumerate(r.loads):
            assert load <= alpha * platform[j].speed * (1 + 1e-9)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.9), min_size=1, max_size=12),
        st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_failure_certificate_condition(self, utils, speeds):
        """On failure, no machine could fit the failing task: for every
        machine, load + w_n exceeds the augmented capacity (EDF)."""
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        r = first_fit_partition(taskset, platform, "edf")
        if r.success:
            return
        w_n = taskset[r.failed_task].utilization
        for j, load in enumerate(r.loads):
            assert load + w_n > platform[j].speed * (1 - 1e-9)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.9), min_size=1, max_size=10),
        st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_task_assigned_once_on_success(self, utils, speeds):
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        r = first_fit_partition(taskset, platform, "edf", alpha=2.0)
        if not r.success:
            return
        seen = [i for idxs in r.machine_tasks for i in idxs]
        assert sorted(seen) == list(range(len(taskset)))
        assert verify_partition(r, taskset, platform)
