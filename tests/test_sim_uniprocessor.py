"""Behavioural tests for the uniprocessor simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Task
from repro.sim.jobs import PeriodicSource
from repro.sim.uniprocessor import simulate_taskset_on_machine, simulate_uniprocessor
from repro.sim.validators import validate_all


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        tasks = [Task(3, 10)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=10)
        assert len(trace.jobs) == 1
        job = trace.jobs[0]
        assert job.completion == pytest.approx(3.0)
        assert not job.missed
        assert trace.busy_time == pytest.approx(3.0)

    def test_speed_divides_execution_time(self):
        tasks = [Task(3, 10)]
        trace = simulate_taskset_on_machine(tasks, 3.0, "edf", horizon=10)
        assert trace.jobs[0].completion == pytest.approx(1.0)

    def test_two_jobs_sequential_edf(self):
        tasks = [Task(2, 4), Task(2, 8)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=8)
        # t0 (deadline 4) runs first, then t1
        first = next(j for j in trace.jobs if j.task_index == 0 and j.job_id == 0)
        second = next(j for j in trace.jobs if j.task_index == 1 and j.job_id == 0)
        assert first.completion == pytest.approx(2.0)
        assert second.completion == pytest.approx(4.0)

    def test_preemption_by_earlier_deadline(self):
        # long job starts; short-period task released later preempts (EDF)
        tasks = [Task(5, 20), Task(1, 3)]
        sources = [
            PeriodicSource(tasks[0], 0),
            PeriodicSource(tasks[1], 1, offset=1.0),
        ]
        trace = simulate_uniprocessor(tasks, 1.0, "edf", sources, horizon=10)
        # task 1's job released at 1 with deadline 4 preempts task 0 (deadline 20)
        seg_tasks = [(s.task_index, s.start) for s in trace.segments]
        assert seg_tasks[0] == (0, 0.0)
        assert seg_tasks[1][0] == 1 and seg_tasks[1][1] == pytest.approx(1.0)

    def test_rms_static_preemption(self):
        tasks = [Task(4, 10), Task(1, 2)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "rms", horizon=10)
        # task 1 (period 2) preempts task 0 at every release
        t1_jobs = [j for j in trace.jobs if j.task_index == 1]
        assert all(j.completion == pytest.approx(j.release + 1) for j in t1_jobs)
        assert not trace.any_miss

    def test_idle_time_between_bursts(self):
        tasks = [Task(1, 10)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=20)
        assert trace.busy_time == pytest.approx(2.0)
        assert len(trace.jobs) == 2

    def test_horizon_truncates_releases(self):
        tasks = [Task(1, 4)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=9)
        # releases at 0, 4, 8 -> 8 is within horizon
        assert len(trace.jobs) == 3


class TestDeadlineMisses:
    def test_overload_misses(self):
        tasks = [Task(3, 4), Task(3, 5)]  # U = 1.35
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=20)
        assert trace.any_miss

    def test_boundary_exactly_meets(self):
        tasks = [Task(2, 4), Task(2, 4)]  # U = 1.0, same deadline
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=8)
        assert not trace.any_miss

    def test_stop_on_first_miss_shortens_run(self):
        tasks = [Task(3, 4), Task(3, 5)]
        full = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=100)
        short = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=100, stop_on_first_miss=True
        )
        assert short.any_miss
        assert short.horizon <= full.horizon
        assert len(short.jobs) <= len(full.jobs)

    def test_incomplete_job_without_deadline_in_span_not_missed(self):
        tasks = [Task(8, 100)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=5)
        job = trace.jobs[0]
        assert job.completion is None
        assert not job.missed  # deadline 100 beyond horizon 5


class TestInputValidation:
    def test_negative_speed(self):
        with pytest.raises(ValueError):
            simulate_taskset_on_machine([Task(1, 2)], 0.0, "edf", horizon=5)

    def test_negative_horizon(self):
        with pytest.raises(ValueError):
            simulate_uniprocessor([Task(1, 2)], 1.0, "edf", [], -1.0)

    def test_sporadic_needs_rng(self):
        with pytest.raises(ValueError):
            simulate_taskset_on_machine(
                [Task(1, 2)], 1.0, "edf", release="sporadic", horizon=5
            )

    def test_unknown_release(self):
        with pytest.raises(ValueError):
            simulate_taskset_on_machine(
                [Task(1, 2)], 1.0, "edf", release="burst", horizon=5  # type: ignore[arg-type]
            )


class TestAgainstTheory:
    """The simulator must reproduce Theorems II.2 and II.3."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.sampled_from([4, 5, 6, 8, 10, 12]),
            ),
            min_size=1,
            max_size=5,
        ),
        st.sampled_from([1.0, 1.5, 2.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_edf_utilization_theorem(self, spec, speed):
        """Theorem II.2: sum w <= s  <=>  EDF meets all deadlines
        (synchronous periodic, over the hyperperiod; <= is exact for
        implicit deadlines)."""
        tasks = [Task(float(c), float(p)) for c, p in spec]
        total = sum(t.utilization for t in tasks)
        trace = simulate_taskset_on_machine(tasks, speed, "edf")
        if total <= speed * (1 - 1e-9):
            assert not trace.any_miss
        elif total > speed * (1 + 1e-9):
            assert trace.any_miss
        # exactly at the boundary: schedulable (closed condition)
        else:
            assert not trace.any_miss

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.sampled_from([5, 8, 10, 16, 20]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rms_liu_layland_sufficiency(self, spec):
        """Theorem II.3: LL-bound acceptance => RMS meets all deadlines."""
        tasks = [Task(float(c), float(p)) for c, p in spec]
        n = len(tasks)
        total = sum(t.utilization for t in tasks)
        if total <= n * (2 ** (1 / n) - 1):
            trace = simulate_taskset_on_machine(tasks, 1.0, "rms")
            assert not trace.any_miss

    def test_every_random_trace_validates(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 6))
            tasks = [
                Task(float(rng.integers(1, 4)), float(rng.integers(3, 16)))
                for _ in range(n)
            ]
            policy = "edf" if rng.random() < 0.5 else "rms"
            trace = simulate_taskset_on_machine(
                tasks, float(rng.uniform(0.5, 2.0)), policy
            )
            assert validate_all(trace, tasks) == []

    def test_sporadic_traces_validate(self, rng):
        tasks = [Task(1, 4), Task(2, 7), Task(1, 9)]
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", release="sporadic", rng=rng, horizon=100
        )
        assert validate_all(trace, tasks) == []
        assert not trace.any_miss  # U < 1 and sporadic only adds slack
