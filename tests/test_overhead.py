"""Tests for preemption-overhead accounting in the simulator."""

from __future__ import annotations

import pytest

from repro.core.model import Platform, Task, TaskSet
from repro.sim.multiprocessor import simulate_partitioned
from repro.sim.uniprocessor import simulate_taskset_on_machine
from repro.sim.validators import validate_all


class TestPreemptionOverhead:
    def test_zero_overhead_matches_default(self):
        tasks = [Task(2, 6), Task(2, 8)]
        a = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=24)
        b = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=24, preemption_overhead=0.0
        )
        assert a.segments == b.segments
        assert a.jobs == b.jobs

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            simulate_taskset_on_machine(
                [Task(1, 4)], 1.0, "edf", horizon=8, preemption_overhead=-0.1
            )

    def test_no_charge_without_preemption(self):
        # sequential, never-preempted workload: overhead must not appear
        tasks = [Task(1, 10)]
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=30, preemption_overhead=0.5
        )
        assert all(j.work == 1.0 for j in trace.jobs)
        assert trace.busy_time == pytest.approx(3.0)

    def test_resumption_charged_once_per_preemption(self):
        # long job preempted once by a short high-priority arrival
        tasks = [Task(5, 20), Task(1, 3, deadline=3)]
        from repro.sim.jobs import PeriodicSource
        from repro.sim.uniprocessor import simulate_uniprocessor

        sources = [
            PeriodicSource(tasks[0], 0),
            PeriodicSource(tasks[1], 1, offset=1.0),
        ]
        trace = simulate_uniprocessor(
            tasks, 1.0, "edf", sources, 3.9, preemption_overhead=0.25
        )
        long_job = next(j for j in trace.jobs if j.task_index == 0)
        # preempted at t=1, resumed at 2 with +0.25 work
        assert long_job.work == pytest.approx(5.25)

    def test_overhead_traces_validate(self):
        tasks = [Task(3, 9), Task(2, 5), Task(1, 4)]
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=180, preemption_overhead=0.1
        )
        assert validate_all(trace, tasks) == []

    def test_overhead_can_break_tight_sets(self):
        # U = 1.0 exactly: zero-overhead feasible, any overhead overflows
        tasks = [Task(2, 4), Task(2, 4)]
        clean = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=40)
        assert not clean.any_miss
        loaded = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=40, preemption_overhead=0.3
        )
        # a tight harmonic pair has no preemptions under EDF tie-breaking;
        # use an offset interferer instead
        from repro.sim.jobs import PeriodicSource
        from repro.sim.uniprocessor import simulate_uniprocessor

        tight = [Task(3.8, 8), Task(3.8, 8), Task(0.2, 8)]
        sources = [
            PeriodicSource(tight[0], 0),
            PeriodicSource(tight[1], 1, offset=0.5),
            PeriodicSource(tight[2], 2, offset=1.0),
        ]
        base = simulate_uniprocessor(tight, 1.0, "edf", sources, 80.0)
        sources2 = [
            PeriodicSource(tight[0], 0),
            PeriodicSource(tight[1], 1, offset=0.5),
            PeriodicSource(tight[2], 2, offset=1.0),
        ]
        heavy = simulate_uniprocessor(
            tight, 1.0, "edf", sources2, 80.0, preemption_overhead=0.5
        )
        assert len(heavy.misses) >= len(base.misses)

    def test_partition_margin_absorbs_overhead(self, rng):
        """A Theorem I.1 acceptance at alpha=2 leaves enough margin that a
        modest overhead cannot cause misses on the augmented platform."""
        from repro.core.partition import first_fit_partition
        from repro.workloads.builder import partitioned_feasible_instance
        from repro.workloads.platforms import geometric_platform

        platform = geometric_platform(2, 3.0)
        inst = partitioned_feasible_instance(
            rng, platform, load=0.7, tasks_per_machine=2,
            integer_periods=True, p_min=8, p_max=24,
        )
        result = first_fit_partition(inst.taskset, platform, "edf", alpha=2.0)
        assert result.success
        sim = simulate_partitioned(
            inst.taskset,
            platform,
            result,
            "edf",
            alpha=2.0,
            preemption_overhead=0.05,
        )
        assert not sim.any_miss
