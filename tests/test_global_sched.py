"""Tests for the global (migratory) scheduling simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.sim.global_sched import simulate_global
from repro.sim.global_validators import validate_global_trace
from repro.sim.jobs import PeriodicSource
from repro.sim.multiprocessor import simulate_partitioned


def periodic_sources(tasks):
    return [PeriodicSource(t, i) for i, t in enumerate(tasks)]


def run_global(tasks, speeds, policy="edf", horizon=None):
    if horizon is None:
        import math

        horizon = float(math.lcm(*(int(t.period) for t in tasks)))
    return simulate_global(tasks, speeds, policy, periodic_sources(tasks), horizon)


class TestBasics:
    def test_single_machine_matches_uniprocessor_semantics(self):
        tasks = [Task(2, 4), Task(2, 8)]
        trace = run_global(tasks, [1.0])
        assert not trace.any_miss
        assert trace.migrations == 0

    def test_parallel_execution_on_two_machines(self):
        tasks = [Task(2, 4), Task(2, 4)]
        trace = run_global(tasks, [1.0, 1.0])
        assert not trace.any_miss
        # both jobs run simultaneously from t=0
        first_two = sorted(trace.segments, key=lambda s: s.start)[:2]
        assert first_two[0].start == first_two[1].start == 0.0
        assert validate_global_trace(trace, tasks) == []

    def test_highest_priority_gets_fastest_machine(self):
        tasks = [Task(2, 4, name="hot"), Task(2, 8, name="cold")]
        trace = run_global(tasks, [1.0, 3.0])
        seg0 = min(trace.segments, key=lambda s: (s.start, -trace.speeds[s.machine]))
        assert seg0.task_index == 0  # earliest deadline on the speed-3 machine
        assert trace.speeds[seg0.machine] == 3.0

    def test_validation_inputs(self):
        tasks = [Task(1, 4)]
        with pytest.raises(ValueError):
            simulate_global(tasks, [], "edf", periodic_sources(tasks), 4.0)
        with pytest.raises(ValueError):
            simulate_global(tasks, [1.0], "edf", periodic_sources(tasks), -1.0)

    def test_migration_counting(self):
        # one long job + interfering short jobs on two unequal machines
        # force at least some migration under EDF
        tasks = [Task(6, 12), Task(2, 4)]
        trace = run_global(tasks, [1.0, 2.0], horizon=12.0)
        assert validate_global_trace(trace, tasks) == []
        assert trace.migrations >= 0  # structurally valid either way


class TestMigrationBeatsPartitioning:
    def test_three_two_thirds_tasks(self):
        """The canonical partitioned-infeasible set (three tasks of
        u=2/3 on two unit machines): no partition exists and the paper's
        LP adversary is feasible (a McNaughton wrap schedules it) — yet
        *global EDF*, despite free migration, also fails (EDF is not
        optimal on multiprocessors).  This is exactly why the paper
        compares against the LP rather than any concrete global policy."""
        from repro.core.lp import lp_feasible

        tasks = [Task(8, 12), Task(8, 12), Task(8, 12)]
        platform = Platform.from_speeds([1.0, 1.0])
        taskset = TaskSet(tasks)
        assert not first_fit_partition(taskset, platform, "edf").success
        assert lp_feasible(taskset, platform)
        trace = run_global(tasks, [1.0, 1.0], horizon=12.0)
        # two jobs hog both machines until t=8; the third cannot finish
        # 8 units of work in the remaining 4
        assert trace.any_miss
        assert validate_global_trace(trace, tasks) == []

    def test_migration_schedules_light_spillover(self):
        """A set no *single* machine could interleave but migration
        handles: total U just under 2 with per-task u <= 1, light tasks —
        global EDF meets every deadline here."""
        tasks = [Task(3, 4), Task(3, 4), Task(1, 2)]  # U = 1.75 wait <= 2
        trace = run_global(tasks, [1.0, 1.0], horizon=8.0)
        assert not trace.any_miss
        assert validate_global_trace(trace, tasks) == []


class TestDhallEffect:
    def test_global_edf_dhall_misses_where_partitioning_succeeds(self):
        """Dhall's effect: m light tasks + one heavy task.  Global EDF
        runs the light jobs first (earlier deadlines) and strands the
        heavy one; a partition dedicates a machine to the heavy task."""
        m = 2
        light = [Task(1, 10, name=f"light{i}") for i in range(m)]
        heavy = Task(11.5, 12, name="heavy")  # u ~ 0.958
        tasks = light + [heavy]
        speeds = [1.0] * m

        trace = run_global(tasks, speeds, "edf", horizon=60.0)
        assert trace.any_miss, "Dhall instance should break global EDF"
        assert validate_global_trace(trace, tasks) == []

        platform = Platform.from_speeds(speeds)
        taskset = TaskSet(tasks)
        result = first_fit_partition(taskset, platform, "edf")
        assert result.success
        sim = simulate_partitioned(taskset, platform, result, "edf", horizon=60.0)
        assert not sim.any_miss

    def test_no_parallel_self_execution_ever(self, rng):
        """Property: across random instances, a job never runs on two
        machines at once and work always accounts (validator clean)."""
        for _ in range(20):
            n = int(rng.integers(2, 6))
            tasks = [
                Task(float(rng.integers(1, 4)), float(rng.integers(4, 12)))
                for _ in range(n)
            ]
            speeds = rng.uniform(0.5, 2.0, size=int(rng.integers(1, 4))).tolist()
            trace = run_global(tasks, speeds, "edf", horizon=48.0)
            assert validate_global_trace(trace, tasks) == []

    def test_global_rms_also_validates(self, rng):
        tasks = [Task(1, 4), Task(2, 6), Task(2, 9)]
        trace = run_global(tasks, [1.0, 1.0], "rms", horizon=36.0)
        assert validate_global_trace(trace, tasks) == []
