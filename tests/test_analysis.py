"""Tests for the analysis/measurement machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.acceptance import (
    acceptance_sweep,
    exact_edf_tester,
    exact_rms_tester,
    ff_tester,
    lp_tester,
)
from repro.analysis.ratio import (
    alpha_success_profile,
    min_alpha_first_fit,
)
from repro.analysis.runtime import runtime_scaling
from repro.analysis.speedup import empirical_speedup_study
from repro.analysis.stats import bootstrap_ci, empirical_cdf, summarize
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.workloads.platforms import geometric_platform


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestMinAlpha:
    def test_already_feasible_returns_lo(self):
        r = min_alpha_first_fit(ts(0.3), Platform.from_speeds([1.0]))
        assert r.alpha == 1.0
        assert r.evaluations == 1

    def test_finds_known_threshold(self):
        # single machine speed 1, total utilization 1.5: min alpha = 1.5
        r = min_alpha_first_fit(ts(0.9, 0.6), Platform.from_speeds([1.0]), tol=1e-4)
        assert r.alpha == pytest.approx(1.5, abs=2e-4)

    def test_result_is_feasible_point(self):
        taskset = ts(0.9, 0.8, 0.7)
        platform = Platform.from_speeds([1.0, 0.5])
        r = min_alpha_first_fit(taskset, platform)
        assert first_fit_partition(taskset, platform, "edf", alpha=r.alpha).success
        # and just below (more than tol) it should fail
        below = r.alpha - 3 * r.tol
        if below > 1.0:
            assert not first_fit_partition(
                taskset, platform, "edf", alpha=below
            ).success

    def test_explicit_bracket_validation(self):
        with pytest.raises(RuntimeError):
            min_alpha_first_fit(
                ts(3.0), Platform.from_speeds([1.0]), hi=2.0
            )

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            min_alpha_first_fit(ts(0.5), Platform.from_speeds([1.0]), tol=0.0)

    def test_anomaly_scan_monotone_case(self):
        r = min_alpha_first_fit(
            ts(0.9, 0.6), Platform.from_speeds([1.0]), anomaly_scan=20
        )
        assert r.monotone is True

    def test_profile_shape(self):
        alphas = np.linspace(1.0, 2.0, 5)
        prof = alpha_success_profile(
            ts(0.9, 0.6), Platform.from_speeds([1.0]), "edf", alphas
        )
        assert prof.dtype == bool
        assert not prof[0]  # 1.5 needed
        assert prof[-1]

    def test_rms_threshold(self):
        # one task of utilization 1.2 on speed 1: LL bound for 1 task is 1,
        # so min alpha = 1.2 for rms-ll as well
        r = min_alpha_first_fit(
            ts(1.2), Platform.from_speeds([1.0]), "rms-ll", tol=1e-4
        )
        assert r.alpha == pytest.approx(1.2, abs=2e-4)


class TestAcceptanceSweep:
    def test_rates_monotone_decreasing_in_utilization(self, rng):
        platform = geometric_platform(3, 4.0)
        curve = acceptance_sweep(
            rng,
            platform,
            {"ff": ff_tester("edf")},
            n_tasks=8,
            normalized_utilizations=(0.5, 0.95, 1.05),
            samples=30,
        )
        rates = curve.rates["ff"]
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[0] == 1.0

    def test_lp_dominates_exact_dominates_ff(self, rng):
        platform = geometric_platform(3, 4.0)
        curve = acceptance_sweep(
            rng,
            platform,
            {
                "ff": ff_tester("edf"),
                "exact": exact_edf_tester(),
                "lp": lp_tester(),
            },
            n_tasks=8,
            normalized_utilizations=(0.9, 0.97),
            samples=40,
        )
        for k in range(2):
            assert curve.rates["lp"][k] >= curve.rates["exact"][k]
            assert curve.rates["exact"][k] >= curve.rates["ff"][k]

    def test_rows_format(self, rng):
        platform = geometric_platform(2, 2.0)
        curve = acceptance_sweep(
            rng,
            platform,
            {"ff": ff_tester("edf")},
            normalized_utilizations=(0.5,),
            samples=3,
        )
        rows = curve.as_rows()
        assert rows[0]["U/S"] == 0.5
        assert "ff" in rows[0]

    def test_invalid_samples(self, rng):
        with pytest.raises(ValueError):
            acceptance_sweep(
                rng, geometric_platform(2, 2.0), {"ff": ff_tester("edf")}, samples=0
            )

    def test_rms_exact_tester_runs(self, rng):
        platform = geometric_platform(2, 2.0)
        curve = acceptance_sweep(
            rng,
            platform,
            {"exact-rms": exact_rms_tester()},
            n_tasks=4,
            normalized_utilizations=(0.4,),
            samples=5,
        )
        assert curve.rates["exact-rms"][0] == 1.0


class TestSpeedupStudy:
    def test_edf_partitioned_respects_bound(self, rng):
        platform = geometric_platform(3, 4.0)
        study = empirical_speedup_study(
            rng, platform, scheduler="edf", adversary="partitioned", samples=10
        )
        assert study.bound == 2.0
        assert study.bound_respected
        assert len(study.alphas) == 10
        assert study.tightness <= 1.0

    def test_rms_any_respects_bound(self, rng):
        platform = geometric_platform(3, 4.0)
        study = empirical_speedup_study(
            rng,
            platform,
            scheduler="rms",
            adversary="any",
            samples=5,
            load=0.9,
        )
        assert study.bound == 3.34
        assert study.bound_respected

    def test_unknown_combination(self, rng):
        with pytest.raises(ValueError):
            empirical_speedup_study(
                rng,
                geometric_platform(2, 2.0),
                scheduler="edf",
                adversary="weird",  # type: ignore[arg-type]
            )


class TestRuntimeScaling:
    def test_grid_and_positivity(self, rng):
        points = runtime_scaling(
            rng, task_counts=(32, 64), machine_counts=(2, 4), repeats=2
        )
        assert len(points) == 4
        for p in points:
            assert p.seconds > 0
            assert p.seconds_per_nm == pytest.approx(
                p.seconds / (p.n_tasks * p.m_machines)
            )

    def test_invalid_repeats(self, rng):
        with pytest.raises(ValueError):
            runtime_scaling(rng, repeats=0)


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert "mean" in str(s)

    def test_summarize_single(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_contains_mean(self):
        values = list(np.random.default_rng(0).normal(10, 1, size=200))
        lo, hi = bootstrap_ci(values)
        assert lo < 10 < hi
        assert hi - lo < 1.0

    def test_bootstrap_invalid(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], level=1.5)

    def test_empirical_cdf_default_points(self):
        xs, ys = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_query_points(self):
        xs, ys = empirical_cdf([1.0, 2.0, 3.0], points=[0.0, 2.5, 5.0])
        assert list(ys) == pytest.approx([0.0, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
