"""Negative tests: the global-trace validators must catch corruption."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.model import Task
from repro.sim.global_sched import GlobalSegment, GlobalTrace, simulate_global
from repro.sim.global_validators import validate_global_trace
from repro.sim.jobs import PeriodicSource
from repro.sim.trace import JobRecord

TASKS = [Task(2, 6), Task(2, 8)]


@pytest.fixture
def clean():
    sources = [PeriodicSource(t, i) for i, t in enumerate(TASKS)]
    return simulate_global(TASKS, [1.0, 1.0], "edf", sources, 24.0)


def with_segments(trace: GlobalTrace, segments) -> GlobalTrace:
    return dataclasses.replace(trace, segments=tuple(segments))


class TestGlobalValidators:
    def test_clean_trace_passes(self, clean):
        assert validate_global_trace(clean, TASKS) == []

    def test_detects_machine_overlap(self, clean):
        segs = list(clean.segments)
        first = segs[0]
        clone = GlobalSegment(
            machine=first.machine,
            start=first.start,
            end=first.end + 0.5,
            task_index=1 - first.task_index,
            job_id=0,
        )
        errors = validate_global_trace(
            with_segments(clean, segs + [clone]), TASKS
        )
        assert any("overlap" in e for e in errors)

    def test_detects_parallel_self_execution(self, clean):
        segs = list(clean.segments)
        first = segs[0]
        other_machine = 1 - first.machine
        ghost = GlobalSegment(
            machine=other_machine,
            start=first.start,
            end=first.end,
            task_index=first.task_index,
            job_id=first.job_id,
        )
        errors = validate_global_trace(
            with_segments(clean, segs + [ghost]), TASKS
        )
        assert any("two machines" in e or "over-executed" in e or "work" in e
                   for e in errors)

    def test_detects_pre_release_execution(self, clean):
        jobs = [
            dataclasses.replace(j, release=j.release + 1.0)
            if (j.task_index, j.job_id) == (0, 0)
            else j
            for j in clean.jobs
        ]
        corrupted = dataclasses.replace(clean, jobs=tuple(jobs))
        errors = validate_global_trace(corrupted, TASKS)
        assert any("before release" in e for e in errors)

    def test_detects_phantom_segments(self, clean):
        phantom = GlobalSegment(
            machine=0, start=20.0, end=21.0, task_index=9, job_id=0
        )
        errors = validate_global_trace(
            with_segments(clean, list(clean.segments) + [phantom]), TASKS
        )
        assert any("without a record" in e for e in errors)

    def test_detects_wrong_work_accounting(self, clean):
        segs = [
            GlobalSegment(
                machine=s.machine,
                start=s.start,
                end=s.end - 0.5 if i == 0 else s.end,
                task_index=s.task_index,
                job_id=s.job_id,
            )
            for i, s in enumerate(clean.segments)
        ]
        errors = validate_global_trace(with_segments(clean, segs), TASKS)
        assert errors

    def test_detects_inconsistent_miss_flag(self, clean):
        jobs = tuple(dataclasses.replace(j, missed=True) for j in clean.jobs)
        corrupted = dataclasses.replace(clean, jobs=jobs)
        errors = validate_global_trace(corrupted, TASKS)
        assert any("miss flag" in e for e in errors)
