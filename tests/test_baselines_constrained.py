"""Tests for the constrained-deadline related-work baselines.

Han–Zhao (linearized-dbf EDF admission) and Chen's FBB-FFD
deadline-monotonic test: soundness against the exact QPA oracle,
permutation invariance, the published speedup constants, and the
registry/partition plumbing the campaigns rely on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    CHEN_DM_SPEEDUP,
    HAN_ZHAO_SPEEDUP,
    ChenFPAdmissionTest,
    HanZhaoAdmissionTest,
    chen_fp_feasible,
    chen_partition,
    han_zhao_feasible,
    han_zhao_partition,
)
from repro.core.bounds import ADMISSION_TESTS, admission_test
from repro.core.dbf import qpa_edf_feasible
from repro.core.dbf_approx import edf_approx_demand_feasible
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import verify_partition
from repro.core.rta import dm_rta_schedulable
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform

constrained_task = st.builds(
    lambda c, p, frac: Task(
        wcet=float(c),
        period=float(p),
        deadline=max(float(c), round(frac * p, 3)),
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=5, max_value=30),
    st.floats(min_value=0.3, max_value=1.0),
)


class TestSingleMachineSoundness:
    """Both baselines are sufficient-only: acceptance implies QPA."""

    @given(st.lists(constrained_task, min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_han_zhao_implies_qpa(self, tasks):
        for speed in (0.7, 1.0, 1.6):
            if han_zhao_feasible(tasks, speed):
                assert qpa_edf_feasible(tasks, speed)

    @given(st.lists(constrained_task, min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_chen_implies_dm_rta_implies_qpa(self, tasks):
        for speed in (0.7, 1.0, 1.6):
            if chen_fp_feasible(tasks, speed):
                assert dm_rta_schedulable(tasks, speed)
                assert qpa_edf_feasible(tasks, speed)

    @given(st.lists(constrained_task, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_han_zhao_is_the_k1_approximation(self, tasks):
        # coarser dominates finer: k=1 acceptance implies k=4 acceptance
        for speed in (0.8, 1.2):
            got = han_zhao_feasible(tasks, speed)
            assert got == edf_approx_demand_feasible(tasks, speed, k=1)
            if got:
                assert edf_approx_demand_feasible(tasks, speed, k=4)

    @given(st.lists(constrained_task, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_chen_is_permutation_invariant_on_distinct_deadlines(self, tasks):
        # the test sorts deadline-monotonically itself, so submission
        # order cannot matter when deadlines are distinct (DM ties are
        # broken by position, so exact ties may legitimately differ)
        deadlines = [t.deadline for t in tasks]
        if len(set(deadlines)) != len(deadlines):
            return
        reversed_tasks = list(reversed(tasks))
        for speed in (0.9, 1.4):
            assert chen_fp_feasible(tasks, speed) == chen_fp_feasible(
                reversed_tasks, speed
            )

    def test_empty_and_invalid_speed(self):
        assert han_zhao_feasible([], 1.0)
        assert chen_fp_feasible([], 1.0)
        with pytest.raises(ValueError):
            chen_fp_feasible([Task(1, 2)], 0.0)

    def test_known_verdicts(self):
        # one job of each due at t=4: linearized demand at t=4 is
        # 2 + (1 + 0.5*(4-2)) = 4 <= 4 — Han–Zhao accepts exactly
        tasks = [Task(2, 10, deadline=4), Task(1, 2)]
        assert han_zhao_feasible(tasks, 1.0)
        # squeeze the long task's deadline to 3: exact demand in [0, 3]
        # is 2 + 1 = 3, still feasible — but the k=1 linearization bills
        # the short task 1 + 0.5*(3-2) = 1.5 there, so Han–Zhao rejects.
        # A pinned pessimism witness: sufficient-only, not exact.
        squeezed = [Task(2, 10, deadline=3), Task(1, 2)]
        assert qpa_edf_feasible(squeezed, 1.0)
        assert not han_zhao_feasible(squeezed, 1.0)


class TestSpeedupConstants:
    def test_published_values(self):
        assert HAN_ZHAO_SPEEDUP == pytest.approx(2.5556, abs=1e-4)
        assert CHEN_DM_SPEEDUP == pytest.approx(2.84306, abs=1e-5)

    def test_ordering_matches_the_literature(self):
        # the cruder FP baseline needs more speedup than the EDF one
        assert HAN_ZHAO_SPEEDUP < CHEN_DM_SPEEDUP


class TestRegistryAndPartition:
    def test_registered_under_related_work_names(self):
        assert isinstance(admission_test("han-zhao"), HanZhaoAdmissionTest)
        assert isinstance(admission_test("chen-dm"), ChenFPAdmissionTest)
        assert "han-zhao" in ADMISSION_TESTS and "chen-dm" in ADMISSION_TESTS

    def _corpus(self, seed, size=24):
        rng = np.random.default_rng(seed)
        out = []
        for k in range(size):
            platform = geometric_platform(2 + k % 3, (2.0, 4.0)[k % 2])
            out.append(
                (
                    generate_taskset(
                        rng,
                        4 + k % 8,
                        (0.3 + 0.4 * (k % 5) / 4) * platform.total_speed,
                        u_max=platform.fastest_speed,
                        dr_dist="uniform",
                        dr_min=0.5,
                        dr_max=1.0,
                    ),
                    platform,
                )
            )
        return out

    @pytest.mark.parametrize(
        "partition_fn, test",
        [(han_zhao_partition, "han-zhao"), (chen_partition, "chen-dm")],
    )
    def test_partitions_verify_and_are_qpa_sound(self, partition_fn, test):
        accepted = 0
        for taskset, platform in self._corpus(11):
            result = partition_fn(taskset, platform)
            if not result.success:
                continue
            accepted += 1
            assert verify_partition(result, taskset, platform, test)
            # every baseline-accepted machine is exactly feasible too
            for j, idxs in enumerate(result.machine_tasks):
                machine = [taskset[i] for i in idxs]
                assert qpa_edf_feasible(machine, platform[j].speed)
        assert accepted, "corpus never exercised the acceptance path"

    def test_baseline_accepts_subset_of_exact_first_fit(self):
        # on this corpus the exact QPA partitioner accepts whenever the
        # approximate baselines do (weaker admission, same machine order
        # would be needed for a theorem; here we just require the exact
        # test to cope with every baseline-accepted instance)
        from repro.core.partition import first_fit_partition

        for taskset, platform in self._corpus(29):
            for fn in (han_zhao_partition, chen_partition):
                if fn(taskset, platform).success:
                    exact = first_fit_partition(
                        taskset, platform, "edf-dbf", alpha=1.0
                    )
                    per_machine = exact.success and verify_partition(
                        exact, taskset, platform, "edf-dbf"
                    )
                    assert per_machine, (fn.__name__, taskset)
