"""Smoke + structure tests: every experiment runs at quick scale and
produces the shape of table its artifact promises.

These are deliberately the slowest tests in the suite; each experiment
also carries artifact-specific assertions (e.g. the bounds hold, the
curves are ordered) so a silent regression in the harness shows up here.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import all_experiments, get_experiment

QUICK = {"scale": "quick"}


def run(eid):
    return get_experiment(eid)(**QUICK)


class TestRegistry:
    def test_all_registered(self):
        ids = list(all_experiments())
        # e18-e21 are benchmark artifacts, not registry experiments
        assert ids == [f"e{k:02d}" for k in range(1, 18)] + ["e22", "e23"]

    def test_result_archiving_roundtrip(self, tmp_path):
        import json

        from repro.experiments import result_from_dict

        res = run("e01")
        path = tmp_path / "e01.json"
        path.write_text(json.dumps(res.to_dict()))
        back = result_from_dict(json.loads(path.read_text()))
        assert back.experiment_id == res.experiment_id
        assert back.rows == res.rows
        assert back.render() == res.render()

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("e99")


class TestE01Constants:
    def test_tables(self):
        res = run("e01")
        assert len(res.rows) == 4
        conds = res.extra_tables["Proof-inequality values (must exceed 1)"]
        assert all(row["all > 1"] for row in conds)
        opt = res.extra_tables["Free-constant re-optimization"]
        for row in opt:
            assert row["re-optimized alpha"] == pytest.approx(
                row["paper alpha"], abs=0.02
            )


class TestE02AcceptEDF:
    def test_curve_ordering(self):
        res = run("e02")
        for row in res.rows:
            # FF(a=2) and LP dominate exact; exact dominates FF(a=1)
            assert row["FF-EDF(a=2)"] >= row["exact-partitioned"] - 1e-9
            assert row["LP(any)"] >= row["exact-partitioned"] - 1e-9
            assert row["exact-partitioned"] >= row["FF-EDF(a=1)"] - 1e-9


class TestE03AcceptRMS:
    def test_admission_ordering(self):
        res = run("e03")
        for row in res.rows:
            assert row["FF-RMS-RTA(a=1)"] >= row["FF-RMS-hyp(a=1)"] - 1e-9
            assert row["FF-RMS-hyp(a=1)"] >= row["FF-RMS-LL(a=1)"] - 1e-9


class TestE04E05Speedup:
    def test_edf_bounds_respected(self):
        res = run("e04")
        for row in res.rows:
            assert row["bound respected"]
            assert row["max a*"] <= row["bound"] + 1e-2

    def test_rms_bounds_respected(self):
        res = run("e05")
        for row in res.rows:
            assert row["bound respected"]


class TestE06Runtime:
    def test_rows_cover_grid(self):
        res = run("e06")
        assert len(res.rows) == 6  # 3 task counts x 2 machine counts
        assert all(row["ms"] > 0 for row in res.rows)


class TestE07Heterogeneity:
    def test_alpha_under_bound(self):
        res = run("e07")
        for row in res.rows:
            assert row["max alpha*"] <= 2.0 + 1e-2


class TestE08Ablation:
    def test_paper_strategy_at_top(self):
        res = run("e08")
        # the paper's strategy must be within the best acceptance rate
        best = max(row["acceptance"] for row in res.rows)
        paper_row = next(r for r in res.rows if "paper" in r["strategy"])
        assert paper_row["acceptance"] == pytest.approx(best, abs=0.05)


class TestE09Gap:
    def test_edf_dominates_rms_ll(self):
        res = run("e09")
        for row in res.rows:
            assert row["FF-EDF accept"] >= row["FF-RMS-LL accept"] - 1e-9
            assert row["FF-RMS-RTA accept"] >= row["FF-RMS-LL accept"] - 1e-9

    def test_ll_bound_column(self):
        res = run("e09")
        assert res.rows[0]["LL bound n(2^(1/n)-1)"] == pytest.approx(1.0)


class TestE10AdversaryGap:
    def test_bounds_respected_where_applicable(self):
        res = run("e10")
        for row in res.rows:
            if "bound respected" in row:
                assert row["bound respected"]


class TestE11Baselines:
    def test_no_false_rejections(self):
        res = run("e11")
        for row in res.rows:
            if row["test"] in ("ours(a=2)", "AT[2](a=3)", "PTAS(eps=.25)"):
                assert row["false rejections"] == 0


class TestE12Frontier:
    def test_global_optimum_matches_paper(self):
        res = run("e12")
        opt = res.extra_tables["Global optimum over all constants"]
        for row in opt:
            assert row["global min alpha"] == pytest.approx(row["paper"], abs=0.02)

    def test_frontier_minimum_location(self):
        res = run("e12")
        edf = {row["c_f"]: row["min alpha (EDF)"] for row in res.rows}
        assert edf[28.412] <= edf[4.0]
        assert edf[28.412] <= edf[160.0] + 5e-3


class TestE14HardInstances:
    def test_lower_bounds_stay_below_upper_bounds(self):
        res = run("e14")
        for row in res.rows:
            assert row["searched max alpha*"] <= row["upper bound (theorem)"] + 2e-3
            assert row["searched max alpha*"] >= 1.0
            assert row["remaining gap to bound"] >= -2e-3


class TestE15Anomalies:
    def test_rates_well_formed(self):
        res = run("e15")
        for row in res.rows:
            assert row["non-monotone profiles"] <= row["instances with a transition"]


class TestE16Migration:
    def test_family_signatures(self):
        res = run("e16")
        by_family = {row["family"]: row for row in res.rows}
        dhall = by_family["Dhall (2 light + heavy)"]
        # partitioning handles every Dhall instance; global EDF drops some
        assert dhall["partitioned FF-EDF clean"] == 1.0
        assert dhall["global EDF clean"] < 1.0
        thirds = by_family["chunky thirds (3 x u~0.6)"]
        # LP-feasible yet both concrete schedulers fail
        assert thirds["LP feasible"] == 1.0
        assert thirds["partitioned FF-EDF clean"] == 0.0
        assert thirds["global EDF clean"] == 0.0
        # executing an accepted partition never misses
        rand = by_family["random near-capacity"]
        assert rand["LP feasible"] >= rand["partitioned FF-EDF clean"]


class TestE17Breakdown:
    def test_admission_ordering_in_breakdown(self):
        res = run("e17")
        means = {row["test"]: row["mean breakdown U/S"] for row in res.rows}
        assert means["FF-RMS-LL"] <= means["FF-RMS-hyp"] + 1e-9
        assert means["FF-RMS-hyp"] <= means["FF-RMS-RTA"] + 1e-9
        assert means["FF-RMS-RTA"] <= means["FF-EDF"] + 1e-9
        assert means["FF-EDF"] <= means["exact-partitioned"] + 1e-9
        # everything breaks down somewhere in (0, 1]
        for row in res.rows:
            assert 0.0 < row["mean breakdown U/S"] <= 1.0 + 1e-9


class TestE22AcceptDeadline:
    def test_dominance_order_holds_pointwise(self):
        # theorem order on every grid point: exact QPA >= k=4
        # approximation >= Han-Zhao (k=1); Chen's FP test never beats the
        # exact EDF partitioner either
        res = run("e22")
        assert len(res.rows) == 24  # 4 dr_min values x 6 U/S points
        for row in res.rows:
            assert row["FF-QPA"] >= row["approx(k=4)"] - 1e-9
            assert row["approx(k=4)"] >= row["Han-Zhao"] - 1e-9
            assert row["FF-QPA"] >= row["Chen-DM"] - 1e-9

    def test_tighter_deadlines_never_help(self):
        # acceptance at dr_min=1.0 (implicit) dominates dr_min=0.4 for
        # the exact test at every utilization point
        res = run("e22")
        by_dr = {}
        for row in res.rows:
            by_dr.setdefault(row["dr_min"], {})[row["U/S"]] = row["FF-QPA"]
        for us, rate in by_dr[1.0].items():
            assert rate >= by_dr[0.4][us] - 1e-9


class TestE23SpeedupDeadline:
    def test_alphas_under_published_bounds(self):
        res = run("e23")
        assert len(res.rows) == 12  # 4 dr_min values x 3 testers
        for row in res.rows:
            assert row["max alpha"] <= row["bound"] + 1e-2
            assert row["mean alpha"] <= row["max alpha"] + 1e-9

    def test_exact_test_needs_no_speedup_on_certified_instances(self):
        # the instances carry a density certificate at speed 1, so the
        # exact QPA partitioner must accept them without augmentation
        res = run("e23")
        for row in res.rows:
            if row["tester"] == "FF-QPA":
                assert row["max alpha"] == pytest.approx(1.0)


class TestE13Simulation:
    def test_zero_misses_on_accepted_rows(self):
        res = run("e13")
        control = res.rows[-1]
        assert control["deadline misses"] > 0  # overload control
        for row in res.rows[:-1]:
            assert row["deadline misses"] == 0
            assert row["validator errors"] == 0

    def test_render_includes_notes(self):
        res = run("e13")
        out = res.render()
        assert "e13" in out
        assert "overload" in out
