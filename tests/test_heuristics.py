"""Tests for the strategy-cube ablation machinery and prior-work wrappers."""

from __future__ import annotations

import pytest

from repro.baselines.andersson_tovar import (
    andersson_tovar_edf_test,
    andersson_tovar_rms_test,
)
from repro.baselines.heuristics import (
    PAPER_STRATEGY,
    Strategy,
    all_strategies,
    run_strategy,
)
from repro.core.lp import lp_feasible
from repro.core.model import Platform, Task, TaskSet
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestStrategyCube:
    def test_cube_size(self):
        cube = all_strategies()
        assert len(cube) == 3 * 2 * 3
        assert len(set(s.label for s in cube)) == len(cube)

    def test_paper_strategy_first(self):
        assert all_strategies()[0] == PAPER_STRATEGY
        assert PAPER_STRATEGY.label == "util-desc/speed-asc/first"

    def test_run_strategy_matches_partition(self):
        taskset = ts(0.5, 0.3, 0.7)
        platform = Platform.from_speeds([1.0, 2.0])
        r = run_strategy(PAPER_STRATEGY, taskset, platform, "edf", alpha=1.0)
        assert r.success
        assert r.test_name == "edf"

    def test_strategies_can_disagree(self, rng):
        """There exist instances the paper's strategy places and a bad
        strategy does not (the point of the ablation)."""
        bad = Strategy(task_order="util-asc", machine_order="speed-desc", fit="first")
        platform = geometric_platform(3, 6.0)
        found = False
        for _ in range(200):
            taskset = generate_taskset(
                rng, 10, 0.9 * platform.total_speed, u_max=platform.fastest_speed
            )
            good_ok = run_strategy(PAPER_STRATEGY, taskset, platform, "edf").success
            bad_ok = run_strategy(bad, taskset, platform, "edf").success
            if good_ok and not bad_ok:
                found = True
                break
        assert found


class TestAnderssonTovar:
    def test_edf_alpha_is_three(self):
        report = andersson_tovar_edf_test(ts(0.5), Platform.from_speeds([1.0]))
        assert report.alpha == 3.0
        assert report.accepted

    def test_rms_alpha(self):
        report = andersson_tovar_rms_test(ts(0.5), Platform.from_speeds([1.0]))
        assert report.alpha == pytest.approx(3.4142, abs=1e-3)

    def test_at_edf_rejection_implies_lp_infeasible(self, rng):
        """[2]'s guarantee: rejection at alpha=3 certifies total
        infeasibility — checkable against the LP."""
        platform = geometric_platform(3, 4.0)
        checked = 0
        for _ in range(300):
            stress = float(rng.uniform(2.5, 4.0))
            taskset = generate_taskset(
                rng,
                8,
                stress * platform.total_speed,
                u_max=3.5 * platform.fastest_speed,
            )
            report = andersson_tovar_edf_test(taskset, platform)
            if not report.accepted:
                checked += 1
                assert not lp_feasible(taskset, platform)
            if checked >= 20:
                break
        assert checked >= 5

    def test_ours_rejects_no_later_than_at(self, rng):
        """Same algorithm, alpha 2 vs 3: anything AT rejects, ours rejects
        too (lower augmentation admits weakly less)... not guaranteed by
        packing anomalies in general — so assert only the theorem-safe
        direction: AT rejection => LP infeasible => exact partitioned
        infeasible => ours must also have failed *or* our acceptance is a
        valid 2x partition (both legitimate)."""
        platform = geometric_platform(3, 4.0)
        from repro.core.feasibility import edf_test_vs_partitioned

        for _ in range(100):
            stress = float(rng.uniform(2.5, 3.5))
            taskset = generate_taskset(
                rng,
                8,
                stress * platform.total_speed,
                u_max=3.0 * platform.fastest_speed,
            )
            at = andersson_tovar_edf_test(taskset, platform)
            if at.accepted:
                continue
            ours = edf_test_vs_partitioned(taskset, platform)
            if ours.accepted:
                # legal only if the 2x partition is genuinely valid
                from repro.core.partition import verify_partition

                assert verify_partition(ours.partition, taskset, platform)
