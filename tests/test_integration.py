"""Cross-module integration tests: the full pipeline from generation
through testing, adversaries, certificates, and simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ratio import min_alpha_first_fit
from repro.baselines.exact import exact_partitioned_edf_feasible
from repro.baselines.ptas import ptas_feasibility_test
from repro.core.feasibility import edf_test_vs_partitioned, rms_test_vs_partitioned
from repro.core.lp import lp_feasible, lp_solve, verify_lemma_ii1
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.sim.multiprocessor import simulate_partitioned
from repro.sim.validators import validate_all
from repro.workloads.builder import (
    generate_taskset,
    partitioned_feasible_instance,
)
from repro.workloads.platforms import big_little_platform, geometric_platform


class TestFourOraclesAgree:
    """On exactly-decidable instances, the oracles must be consistent:
    FF(alpha=1) => PTAS-feasible and exact-feasible => LP-feasible."""

    def test_oracle_chain(self, rng):
        platform = geometric_platform(3, 5.0)
        for _ in range(40):
            stress = float(rng.uniform(0.6, 1.2))
            taskset = generate_taskset(
                rng, 9, stress * platform.total_speed, u_max=platform.fastest_speed
            )
            ff = first_fit_partition(taskset, platform, "edf").success
            exact = exact_partitioned_edf_feasible(taskset, platform)
            lp = lp_feasible(taskset, platform)
            ptas = ptas_feasibility_test(taskset, platform, eps=0.2).feasible
            if ff:
                assert exact is True
            if exact is True:
                assert lp
                assert ptas  # exact packing survives rounding
            if not lp:
                assert exact is False

    def test_lemma_ii1_on_pipeline_solutions(self, rng):
        platform = big_little_platform(1, 3, big_speed=4.0)
        for _ in range(10):
            taskset = generate_taskset(
                rng, 6, 0.8 * platform.total_speed, u_max=platform.fastest_speed
            )
            sol = lp_solve(taskset, platform)
            if sol.feasible:
                assert verify_lemma_ii1(sol.u, taskset, platform, 2.98)


class TestAdmissionControlScenario:
    """A realistic admission-control flow: tasks arrive one at a time;
    the system re-runs the theorem test and only admits while accepted;
    the final admitted set must simulate cleanly."""

    def test_incremental_admission(self, rng):
        platform = big_little_platform(1, 2, big_speed=2.0, little_speed=1.0)
        admitted: list[Task] = []
        rejected = 0
        for k in range(30):
            candidate = Task(
                float(rng.integers(1, 5)), float(rng.choice([4, 5, 8, 10, 20]))
            )
            trial = TaskSet(admitted + [candidate])
            if edf_test_vs_partitioned(trial, platform).accepted:
                admitted.append(candidate)
            else:
                rejected += 1
        assert admitted and rejected  # both paths exercised
        final = TaskSet(admitted)
        report = edf_test_vs_partitioned(final, platform)
        assert report.accepted
        sim = simulate_partitioned(
            final, platform, report.partition, "edf", alpha=report.alpha
        )
        assert not sim.any_miss
        for trace in sim.traces:
            assert validate_all(trace, final.tasks) == []


class TestMinAlphaAgainstTheorems:
    def test_min_alpha_within_bound_on_witnessed(self, rng):
        platform = geometric_platform(4, 6.0)
        for _ in range(10):
            inst = partitioned_feasible_instance(
                rng, platform, load=0.99, tasks_per_machine=3
            )
            edf = min_alpha_first_fit(inst.taskset, platform, "edf")
            rms = min_alpha_first_fit(inst.taskset, platform, "rms-ll")
            assert edf.alpha <= 2.0 + 2e-3
            assert rms.alpha <= 1 + np.sqrt(2) + 2e-3
            # RMS admission can never need less augmentation than EDF
            assert rms.alpha >= edf.alpha - 2e-3


class TestRMSvsEDFEndToEnd:
    def test_rms_partition_simulates_under_both_policies(self, rng):
        """A partition passing the LL test meets deadlines under RMS and
        (a fortiori) under EDF in actual execution."""
        platform = geometric_platform(2, 3.0)
        inst = partitioned_feasible_instance(
            rng,
            platform,
            load=0.6,
            tasks_per_machine=2,
            integer_periods=True,
            p_min=4,
            p_max=16,
        )
        report = rms_test_vs_partitioned(inst.taskset, platform)
        assert report.accepted
        for policy in ("rms", "edf"):
            sim = simulate_partitioned(
                inst.taskset,
                platform,
                report.partition,
                policy,  # type: ignore[arg-type]
                alpha=report.alpha,
            )
            assert not sim.any_miss
