"""Property-based tests of Theorems I.1–I.4 — the paper's main results.

Each theorem is an implication with two checkable sides:

* **acceptance**: if first-fit succeeds at the theorem's alpha, the
  returned partition is schedulable on the alpha-augmented platform
  (checked against the one-shot per-machine tests and by simulation);
* **rejection**: if first-fit fails at the theorem's alpha, the adversary
  of that theorem can do nothing at speed 1 — checked against the exact
  partitioned adversary / the LP oracle on randomly generated instances,
  and via the contrapositive on certified-feasible instances.

Any counterexample found here would falsify the paper (or our
implementation); none exists.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_partitioned_edf_feasible
from repro.core.certificates import partitioned_infeasibility_certificate
from repro.core.feasibility import (
    edf_test_vs_any,
    edf_test_vs_partitioned,
    rms_test_vs_any,
    rms_test_vs_partitioned,
)
from repro.core.lp import lp_feasible
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition, verify_partition
from repro.workloads.builder import (
    lp_feasible_instance,
    partitioned_feasible_instance,
)
from repro.workloads.platforms import geometric_platform

ALPHA_RMS_PART = 1 + math.sqrt(2)

utils_strategy = st.lists(
    st.floats(min_value=0.02, max_value=2.5), min_size=1, max_size=12
)
speeds_strategy = st.lists(
    st.floats(min_value=0.2, max_value=4.0), min_size=1, max_size=5
)


def build(utils, speeds):
    taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
    platform = Platform.from_speeds(speeds)
    return taskset, platform


class TestTheoremI1EDFPartitioned:
    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=150, deadline=None)
    def test_acceptance_side(self, utils, speeds):
        """Accept => valid EDF partition on the 2x platform."""
        taskset, platform = build(utils, speeds)
        report = edf_test_vs_partitioned(taskset, platform)
        if report.accepted:
            assert verify_partition(report.partition, taskset, platform)

    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=150, deadline=None)
    def test_rejection_side_vs_exact_adversary(self, utils, speeds):
        """Reject at alpha=2 => NO partition fits at speed 1 (Theorem I.1)."""
        taskset, platform = build(utils, speeds)
        report = edf_test_vs_partitioned(taskset, platform)
        if not report.accepted:
            assert exact_partitioned_edf_feasible(taskset, platform) is False

    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=150, deadline=None)
    def test_rejection_certificate_certifies(self, utils, speeds):
        """Reject at alpha=2 => the arithmetic certificate itself proves it."""
        taskset, platform = build(utils, speeds)
        report = edf_test_vs_partitioned(taskset, platform)
        if not report.accepted:
            assert report.certificate is not None
            assert report.certificate.certifies

    def test_contrapositive_on_witnessed_instances(self, rng):
        """Partitioned-feasible => FF-EDF at alpha=2 accepts (many trials)."""
        for _ in range(60):
            m = int(rng.integers(2, 6))
            platform = geometric_platform(m, float(rng.uniform(1.0, 12.0)))
            inst = partitioned_feasible_instance(
                rng,
                platform,
                load=float(rng.uniform(0.5, 1.0)),
                tasks_per_machine=int(rng.integers(1, 6)),
            )
            report = edf_test_vs_partitioned(inst.taskset, platform)
            assert report.accepted, (
                f"Theorem I.1 violated: witnessed-feasible instance rejected "
                f"(witness loads {inst.witness_loads()}, "
                f"speeds {platform.speeds})"
            )


class TestTheoremI2RMSPartitioned:
    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=100, deadline=None)
    def test_acceptance_side(self, utils, speeds):
        taskset, platform = build(utils, speeds)
        report = rms_test_vs_partitioned(taskset, platform)
        if report.accepted:
            assert verify_partition(report.partition, taskset, platform)

    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=100, deadline=None)
    def test_rejection_side_vs_exact_adversary(self, utils, speeds):
        """Reject at alpha=1+sqrt2 => no capacity-respecting partition
        exists at speed 1."""
        taskset, platform = build(utils, speeds)
        report = rms_test_vs_partitioned(taskset, platform)
        if not report.accepted:
            assert exact_partitioned_edf_feasible(taskset, platform) is False

    def test_contrapositive_on_witnessed_instances(self, rng):
        for _ in range(60):
            m = int(rng.integers(2, 5))
            platform = geometric_platform(m, float(rng.uniform(1.0, 8.0)))
            inst = partitioned_feasible_instance(
                rng,
                platform,
                load=float(rng.uniform(0.5, 1.0)),
                tasks_per_machine=int(rng.integers(1, 5)),
            )
            report = rms_test_vs_partitioned(inst.taskset, platform)
            assert report.accepted, "Theorem I.2 violated"


class TestTheoremI3EDFAny:
    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rejection_side_vs_lp(self, utils, speeds):
        """Reject at alpha=2.98 => the LP (any scheduler) is infeasible."""
        taskset, platform = build(utils, speeds)
        report = edf_test_vs_any(taskset, platform)
        if not report.accepted:
            assert not lp_feasible(taskset, platform)

    def test_contrapositive_on_lp_instances(self, rng):
        """LP-feasible => FF-EDF at alpha=2.98 accepts."""
        for _ in range(25):
            m = int(rng.integers(2, 5))
            platform = geometric_platform(m, float(rng.uniform(1.0, 8.0)))
            taskset = lp_feasible_instance(
                rng, platform, int(rng.integers(3, 12)), stress=0.97
            )
            report = edf_test_vs_any(taskset, platform)
            assert report.accepted, "Theorem I.3 violated"


class TestTheoremI4RMSAny:
    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rejection_side_vs_lp(self, utils, speeds):
        taskset, platform = build(utils, speeds)
        report = rms_test_vs_any(taskset, platform)
        if not report.accepted:
            assert not lp_feasible(taskset, platform)

    def test_contrapositive_on_lp_instances(self, rng):
        for _ in range(25):
            m = int(rng.integers(2, 5))
            platform = geometric_platform(m, float(rng.uniform(1.0, 8.0)))
            taskset = lp_feasible_instance(
                rng, platform, int(rng.integers(3, 12)), stress=0.97
            )
            report = rms_test_vs_any(taskset, platform)
            assert report.accepted, "Theorem I.4 violated"


class TestHierarchy:
    """Structural relations the theorems imply between the oracles.

    Note what is deliberately NOT here: first-fit verdicts at different
    alphas are not formally comparable (packing anomalies), so no
    cross-alpha implication is asserted — that behaviour is measured, not
    assumed, by the anomaly scan in :mod:`repro.analysis.ratio`.
    """

    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_partitioned_feasible_implies_lp_feasible(self, utils, speeds):
        """A partitioned schedule is a schedule: exact => LP (the paper's
        two adversary classes are nested)."""
        taskset, platform = build(utils, speeds)
        assume(len(taskset) <= 10)
        if exact_partitioned_edf_feasible(taskset, platform) is True:
            assert lp_feasible(taskset, platform)

    @given(utils_strategy, speeds_strategy)
    @settings(max_examples=80, deadline=None)
    def test_ll_partition_is_edf_valid(self, utils, speeds):
        """LL bound <= 1: any partition the RMS test accepts also
        respects the EDF capacities machine-by-machine."""
        taskset, platform = build(utils, speeds)
        for alpha in (1.0, 2.0):
            rms = first_fit_partition(taskset, platform, "rms-ll", alpha=alpha)
            if rms.success:
                assert verify_partition(rms, taskset, platform, test="edf")
