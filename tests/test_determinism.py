"""Reproducibility guarantees: same seed, same results — everywhere.

EXPERIMENTS.md's numbers are only meaningful if runs are deterministic;
these tests pin that for the generators, the experiments, and the
simulator.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import get_experiment
from repro.sim.uniprocessor import simulate_taskset_on_machine
from repro.workloads.builder import generate_taskset, partitioned_feasible_instance
from repro.workloads.platforms import geometric_platform, random_platform


class TestGeneratorDeterminism:
    def test_taskset_generation(self):
        a = generate_taskset(np.random.default_rng(11), 10, 2.0)
        b = generate_taskset(np.random.default_rng(11), 10, 2.0)
        assert a == b

    def test_platform_generation(self):
        a = random_platform(np.random.default_rng(3), 5)
        b = random_platform(np.random.default_rng(3), 5)
        assert a == b

    def test_witnessed_instances(self):
        platform = geometric_platform(3, 4.0)
        a = partitioned_feasible_instance(np.random.default_rng(7), platform)
        b = partitioned_feasible_instance(np.random.default_rng(7), platform)
        assert a.taskset == b.taskset
        assert a.witness == b.witness


class TestExperimentDeterminism:
    def test_e01_rows_identical(self):
        a = get_experiment("e01")(seed=123, scale="quick")
        b = get_experiment("e01")(seed=123, scale="quick")
        assert a.rows == b.rows

    def test_e04_rows_identical(self):
        a = get_experiment("e04")(seed=123, scale="quick")
        b = get_experiment("e04")(seed=123, scale="quick")
        assert a.rows == b.rows

    def test_e10_bit_identical_across_jobs(self):
        # adaptive draw rounds are whole-batch, so jobs must not change
        # which draws are classified (rows contain NaN bounds — compare
        # the rendered table, the CLI's stdout contract)
        a = get_experiment("e10")(seed=7, scale="quick", jobs=1)
        b = get_experiment("e10")(seed=7, scale="quick", jobs=2)
        assert a.render() == b.render()
        assert a.notes == b.notes

    def test_e11_bit_identical_across_jobs(self):
        a = get_experiment("e11")(seed=7, scale="quick", jobs=1)
        b = get_experiment("e11")(seed=7, scale="quick", jobs=2)
        assert a.render() == b.render()
        assert a.rows == b.rows

    def test_seed_changes_results(self):
        a = get_experiment("e04")(seed=1, scale="quick")
        b = get_experiment("e04")(seed=2, scale="quick")
        # the summaries derive from different instances; identical output
        # would indicate a seeding bug (alpha* ties at exactly 1.0 are
        # possible, so compare the full sample summaries)
        assert a.rows != b.rows or a.extra_tables != b.extra_tables


class TestSimulatorDeterminism:
    def test_sporadic_trace_reproducible(self):
        from repro.core.model import Task

        tasks = [Task(1, 4), Task(2, 7)]
        a = simulate_taskset_on_machine(
            tasks, 1.0, "edf", release="sporadic",
            rng=np.random.default_rng(5), horizon=200.0,
        )
        b = simulate_taskset_on_machine(
            tasks, 1.0, "edf", release="sporadic",
            rng=np.random.default_rng(5), horizon=200.0,
        )
        assert a.segments == b.segments
        assert a.jobs == b.jobs
