"""Tests for the Gantt renderer and the named workload suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import rms_liu_layland_feasible, rms_rta_feasible
from repro.core.model import Task
from repro.sim.gantt import render_gantt
from repro.sim.trace import Trace
from repro.sim.uniprocessor import simulate_taskset_on_machine
from repro.workloads.suites import (
    AUTOMOTIVE_PERIOD_SHARES,
    automotive_suite,
    avionics_suite,
)


class TestGantt:
    def test_renders_rows_per_task(self):
        tasks = [Task(2, 6, name="ctrl"), Task(2, 8, name="log")]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=24)
        art = render_gantt(trace, tasks, width=48)
        lines = art.splitlines()
        assert len(lines) == 3  # two tasks + axis
        assert lines[0].startswith("ctrl")
        assert "#" in lines[0]
        assert "0" in lines[-1] and "24" in lines[-1]

    def test_busy_fraction_roughly_matches(self):
        tasks = [Task(3, 6)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=24)
        art = render_gantt(trace, tasks, width=24)
        row = art.splitlines()[0]
        body = row.split("|")[1]
        assert body.count("#") == 12  # 50% utilization over 24 buckets

    def test_miss_marker(self):
        tasks = [Task(5, 6), Task(3, 7)]  # overload
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=42)
        art = render_gantt(trace, tasks, width=40)
        assert "!" in art
        assert "miss" in art

    def test_empty_trace(self):
        trace = Trace(
            machine_speed=1.0, horizon=0.0, policy_name="edf", segments=(), jobs=()
        )
        assert render_gantt(trace, []) == "(empty trace)"

    def test_width_validation(self):
        tasks = [Task(1, 4)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=8)
        with pytest.raises(ValueError):
            render_gantt(trace, tasks, width=4)


class TestAvionicsSuite:
    def test_structure(self):
        ts = avionics_suite()
        assert len(ts) == 12
        assert ts.total_utilization == pytest.approx(0.6)
        assert set(t.period for t in ts) == {5.0, 10.0, 20.0, 40.0}

    def test_harmonic_periods(self):
        ts = avionics_suite()
        periods = sorted(set(t.period for t in ts))
        for a, b in zip(periods, periods[1:]):
            assert b % a == 0

    def test_rms_schedulable_on_unit_machine(self):
        # harmonic + U=0.6: comfortably RMS-schedulable
        ts = avionics_suite()
        assert rms_rta_feasible(list(ts), 1.0)

    def test_simulates_cleanly_to_hyperperiod(self):
        ts = avionics_suite()
        trace = simulate_taskset_on_machine(list(ts), 1.0, "rms")
        assert trace.horizon == 40.0
        assert not trace.any_miss

    def test_utilization_knob(self):
        ts = avionics_suite(utilization_per_group=0.2)
        assert ts.total_utilization == pytest.approx(0.8)
        with pytest.raises(ValueError):
            avionics_suite(utilization_per_group=0.3)


class TestAutomotiveSuite:
    def test_periods_from_menu(self, rng):
        ts = automotive_suite(rng, 100)
        assert set(t.period for t in ts) <= set(AUTOMOTIVE_PERIOD_SHARES)

    def test_total_utilization(self, rng):
        ts = automotive_suite(rng, 30, total_utilization=2.5)
        assert ts.total_utilization == pytest.approx(2.5)

    def test_period_distribution_shape(self, rng):
        ts = automotive_suite(rng, 4000)
        counts = {}
        for t in ts:
            counts[t.period] = counts.get(t.period, 0) + 1
        # 10 ms (with the folded angle-sync share) should be the mode
        assert max(counts, key=counts.get) == 10.0
        # the rare 200 ms bin stays rare
        assert counts.get(200.0, 0) < counts[10.0] / 5

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            automotive_suite(rng, 0)
