"""Tests for partitioned multiprocessor simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.sim.multiprocessor import simulate_partitioned
from repro.sim.validators import validate_all
from repro.workloads.builder import partitioned_feasible_instance
from repro.workloads.platforms import geometric_platform


def ts(*utils):
    return TaskSet(
        Task.from_utilization(u, float(4 * (i + 1))) for i, u in enumerate(utils)
    )


class TestSimulatePartitioned:
    def test_explicit_assignment(self):
        taskset = ts(0.5, 0.5)
        platform = Platform.from_speeds([1.0, 1.0])
        sim = simulate_partitioned(taskset, platform, [0, 1], "edf")
        assert not sim.any_miss
        assert sim.assignment == (0, 1)
        assert len(sim.traces) == 2

    def test_partition_result_input(self):
        taskset = ts(0.4, 0.4, 0.4)
        platform = Platform.from_speeds([1.0, 1.0])
        result = first_fit_partition(taskset, platform, "edf")
        assert result.success
        sim = simulate_partitioned(taskset, platform, result, "edf")
        assert not sim.any_miss
        assert sim.total_jobs > 0

    def test_failed_partition_rejected(self):
        taskset = ts(0.9, 0.9, 0.9)
        platform = Platform.from_speeds([1.0])
        result = first_fit_partition(taskset, platform, "edf")
        assert not result.success
        with pytest.raises(ValueError):
            simulate_partitioned(taskset, platform, result, "edf")

    def test_wrong_length_assignment(self):
        with pytest.raises(ValueError):
            simulate_partitioned(
                ts(0.5, 0.5), Platform.from_speeds([1.0]), [0], "edf"
            )

    def test_out_of_range_machine(self):
        with pytest.raises(ValueError):
            simulate_partitioned(
                ts(0.5), Platform.from_speeds([1.0]), [3], "edf"
            )

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            simulate_partitioned(
                ts(0.5), Platform.from_speeds([1.0]), [0], "edf", alpha=0.0
            )

    def test_empty_machines_get_empty_traces(self):
        taskset = ts(0.5)
        platform = Platform.from_speeds([1.0, 1.0, 1.0])
        sim = simulate_partitioned(taskset, platform, [0], "edf")
        assert len(sim.traces) == 3
        assert sim.traces[1].jobs == ()
        assert sim.traces[2].jobs == ()

    def test_overloaded_machine_misses(self):
        taskset = ts(0.7, 0.7)
        platform = Platform.from_speeds([1.0, 1.0])
        sim = simulate_partitioned(
            taskset, platform, [0, 0], "edf", horizon=100.0
        )
        assert sim.any_miss
        assert sim.total_misses > 0

    def test_alpha_rescues_overload(self):
        taskset = ts(0.7, 0.7)
        platform = Platform.from_speeds([1.0, 1.0])
        sim = simulate_partitioned(
            taskset, platform, [0, 0], "edf", alpha=1.5, horizon=100.0
        )
        assert not sim.any_miss

    def test_sporadic_needs_rng(self):
        with pytest.raises(ValueError):
            simulate_partitioned(
                ts(0.5), Platform.from_speeds([1.0]), [0], "edf", release="sporadic"
            )


class TestEndToEnd:
    def test_accepted_partitions_never_miss(self, rng):
        """Integration: feasibility test accepted at alpha => zero misses
        on the alpha-augmented platform, traces all validate."""
        for _ in range(8):
            platform = geometric_platform(int(rng.integers(2, 4)), 3.0)
            inst = partitioned_feasible_instance(
                rng,
                platform,
                load=0.8,
                tasks_per_machine=2,
                integer_periods=True,
                p_min=4,
                p_max=20,
            )
            for test, policy, alpha in (("edf", "edf", 2.0), ("rms-ll", "rms", 2.42)):
                result = first_fit_partition(inst.taskset, platform, test, alpha=alpha)
                assert result.success  # theorem guarantee on witnessed instances
                sim = simulate_partitioned(
                    inst.taskset, platform, result, policy, alpha=alpha
                )
                assert not sim.any_miss
                for trace in sim.traces:
                    assert validate_all(trace, inst.taskset.tasks) == []

    def test_witness_assignment_simulates_clean(self, rng):
        """The constructive witness itself is a valid schedule at speed 1."""
        platform = geometric_platform(3, 4.0)
        inst = partitioned_feasible_instance(
            rng,
            platform,
            load=0.9,
            tasks_per_machine=3,
            integer_periods=True,
            p_min=5,
            p_max=25,
        )
        sim = simulate_partitioned(
            inst.taskset, platform, list(inst.witness), "edf"
        )
        assert not sim.any_miss
