"""Heavier cross-module invariants, property-based.

These tie together components that individually pass their unit tests
but could still disagree: analytical tests vs the simulator, incremental
vs one-shot admissions inside full partition runs, the LP vs exact
adversaries, serialization vs verdicts, and speed-augmentation algebra.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_partitioned_edf_feasible
from repro.core.lp import lp_feasible, lp_stress
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.io_.serialize import (
    platform_from_dict,
    platform_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.sim.multiprocessor import simulate_partitioned
from repro.sim.validators import validate_all

task_strategy = st.builds(
    Task,
    wcet=st.integers(min_value=1, max_value=6).map(float),
    period=st.sampled_from([4.0, 5.0, 6.0, 8.0, 10.0, 12.0]),
)
taskset_strategy = st.lists(task_strategy, min_size=1, max_size=8).map(TaskSet)
platform_strategy = st.lists(
    st.floats(min_value=0.25, max_value=4.0), min_size=1, max_size=4
).map(Platform.from_speeds)


class TestAugmentationAlgebra:
    @given(taskset_strategy, platform_strategy, st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_alpha_equals_scaled_platform(self, taskset, platform, alpha):
        """Partitioning with augmentation alpha is identical to
        partitioning the alpha-scaled platform at alpha = 1."""
        a = first_fit_partition(taskset, platform, "edf", alpha=alpha)
        b = first_fit_partition(taskset, platform.scaled(alpha), "edf", alpha=1.0)
        assert a.success == b.success
        assert a.assignment == b.assignment

    @given(taskset_strategy, platform_strategy, st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_lp_stress_scaling(self, taskset, platform, factor):
        """beta* scales linearly with the task set and inversely with the
        platform: stress(f * ts, pf) == f * stress(ts, pf)."""
        base = lp_stress(taskset, platform)
        scaled = lp_stress(taskset.scaled(factor), platform)
        assert scaled == pytest.approx(factor * base, rel=1e-5, abs=1e-7)

    @given(taskset_strategy, platform_strategy)
    @settings(max_examples=60, deadline=None)
    def test_lp_stress_vs_trivial_lower_bound(self, taskset, platform):
        """beta* is at least the capacity ratio U / S and at least the
        largest single-task density w_max / s_max."""
        beta = lp_stress(taskset, platform)
        assert beta >= taskset.total_utilization / platform.total_speed - 1e-7
        assert beta >= taskset.max_utilization / platform.fastest_speed - 1e-7


class TestVerdictConsistency:
    @given(taskset_strategy, platform_strategy)
    @settings(max_examples=40, deadline=None)
    def test_ff_accept_implies_every_oracle_accepts(self, taskset, platform):
        if first_fit_partition(taskset, platform, "edf").success:
            assert exact_partitioned_edf_feasible(taskset, platform) is True
            assert lp_feasible(taskset, platform)

    @given(taskset_strategy, platform_strategy)
    @settings(max_examples=25, deadline=None)
    def test_accepted_partition_simulates_clean(self, taskset, platform):
        """The acceptance contract end-to-end: FF at alpha=1 accepted =>
        zero misses at real speed, and the trace audits clean."""
        result = first_fit_partition(taskset, platform, "edf")
        if not result.success:
            return
        sim = simulate_partitioned(taskset, platform, result, "edf")
        assert not sim.any_miss
        for trace in sim.traces:
            assert validate_all(trace, taskset.tasks) == []

    @given(taskset_strategy, platform_strategy)
    @settings(max_examples=60, deadline=None)
    def test_serialization_preserves_verdicts(self, taskset, platform):
        ts2 = taskset_from_dict(taskset_to_dict(taskset))
        pf2 = platform_from_dict(platform_to_dict(platform))
        for alpha in (1.0, 2.0):
            a = first_fit_partition(taskset, platform, "edf", alpha=alpha)
            b = first_fit_partition(ts2, pf2, "edf", alpha=alpha)
            assert a.assignment == b.assignment
            assert a.loads == b.loads


class TestRMSLadderUnderPartitioning:
    @given(taskset_strategy, platform_strategy)
    @settings(max_examples=50, deadline=None)
    def test_one_shot_ladder_on_ff_outputs(self, taskset, platform):
        """Whatever set first-fit puts on a machine under the LL
        admission must also pass hyperbolic and RTA there (sufficiency
        ladder applied to real partitions)."""
        from repro.core.bounds import (
            rms_hyperbolic_feasible,
            rms_rta_feasible,
        )

        result = first_fit_partition(taskset, platform, "rms-ll", alpha=2.0)
        if not result.success:
            return
        for j, idxs in enumerate(result.machine_tasks):
            members = [taskset[i] for i in idxs]
            speed = platform[j].speed * 2.0
            assert rms_hyperbolic_feasible(members, speed)
            assert rms_rta_feasible(members, speed)
