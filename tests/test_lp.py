"""Unit and property tests for the §II feasibility LP."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp import (
    LP_TOL,
    check_lp_solution,
    lp_feasible,
    lp_solve,
    lp_stress,
    tol_geq,
    tol_leq,
    verify_lemma_ii1,
)
from repro.core.model import Platform, Task, TaskSet


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestLPFeasible:
    def test_trivially_feasible(self):
        assert lp_feasible(ts(0.2, 0.3), Platform.from_speeds([1.0]))

    def test_exactly_at_capacity(self):
        assert lp_feasible(ts(0.5, 0.5), Platform.from_speeds([1.0]))

    def test_over_total_capacity(self):
        assert not lp_feasible(ts(0.8, 0.8), Platform.from_speeds([1.0, 0.5]))

    def test_task_bigger_than_fastest_machine(self):
        # constraint (2): a single task cannot exceed the fastest speed
        assert not lp_feasible(ts(1.2), Platform.from_speeds([1.0, 1.0]))

    def test_big_task_ok_on_fast_machine(self):
        assert lp_feasible(ts(1.8), Platform.from_speeds([0.5, 2.0]))

    def test_migration_beats_partitioning(self):
        # three tasks of 2/3 on two unit machines: partitioned infeasible
        # (two tasks would share a machine), LP feasible (split utilization)
        taskset = ts(2 / 3, 2 / 3, 2 / 3)
        platform = Platform.from_speeds([1.0, 1.0])
        assert lp_feasible(taskset, platform)

    def test_empty_taskset(self):
        assert lp_feasible(TaskSet([]), Platform.from_speeds([1.0]))


class TestLPStress:
    def test_stress_of_empty(self):
        assert lp_stress(TaskSet([]), Platform.from_speeds([1.0])) == 0.0

    def test_stress_single_machine(self):
        # single machine: stress is exactly total utilization / speed
        assert lp_stress(ts(0.25, 0.25), Platform.from_speeds([1.0])) == pytest.approx(
            0.5, abs=1e-6
        )

    def test_stress_scales_inversely_with_speed(self):
        taskset = ts(0.5)
        s1 = lp_stress(taskset, Platform.from_speeds([1.0]))
        s2 = lp_stress(taskset, Platform.from_speeds([2.0]))
        assert s1 == pytest.approx(2 * s2, rel=1e-6)

    def test_stress_above_one_iff_infeasible(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 8))
            utils = rng.uniform(0.1, 1.2, size=n)
            taskset = ts(*utils)
            platform = Platform.from_speeds(rng.uniform(0.4, 2.0, size=3).tolist())
            feas = lp_feasible(taskset, platform)
            stress = lp_stress(taskset, platform)
            assert feas == (stress <= 1.0 + LP_TOL)

    def test_single_big_task_stress(self):
        # one task of 1.5 on speeds [1, 2]: best is all on the fast machine
        assert lp_stress(ts(1.5), Platform.from_speeds([1.0, 2.0])) == pytest.approx(
            0.75, abs=1e-6
        )


class TestLPSolution:
    def test_solution_satisfies_constraints(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 9))
            taskset = ts(*rng.uniform(0.05, 0.8, size=n))
            platform = Platform.from_speeds(rng.uniform(0.5, 2.0, size=4).tolist())
            sol = lp_solve(taskset, platform)
            if sol.feasible:
                assert check_lp_solution(sol.u, taskset, platform)

    def test_check_rejects_bad_shapes(self):
        taskset, platform = ts(0.5), Platform.from_speeds([1.0])
        assert not check_lp_solution(np.zeros((2, 2)), taskset, platform)

    def test_check_rejects_negative(self):
        taskset, platform = ts(0.5), Platform.from_speeds([1.0, 1.0])
        u = np.array([[1.0, -0.5]])
        assert not check_lp_solution(u, taskset, platform)

    def test_check_rejects_underserved_task(self):
        taskset, platform = ts(0.5), Platform.from_speeds([1.0])
        u = np.array([[0.3]])
        assert not check_lp_solution(u, taskset, platform)

    def test_check_rejects_overloaded_machine(self):
        taskset, platform = ts(0.8, 0.8), Platform.from_speeds([1.0, 1.0])
        u = np.array([[0.8, 0.0], [0.8, 0.0]])  # machine 0 at 1.6
        assert not check_lp_solution(u, taskset, platform)

    def test_check_rejects_self_parallelism(self):
        # task of 1.5 split across two speed-1 machines: sum u/s = 1.5 > 1
        taskset, platform = ts(1.5), Platform.from_speeds([1.0, 1.0])
        u = np.array([[0.75, 0.75]])
        assert not check_lp_solution(u, taskset, platform)


class TestLemmaII1:
    def test_holds_on_solver_output(self, rng):
        """Lemma II.1 is a theorem about every feasible LP solution — it
        must hold on whatever HiGHS returns, for arbitrary alpha > 1."""
        for _ in range(20):
            n = int(rng.integers(1, 8))
            taskset = ts(*rng.uniform(0.05, 0.9, size=n))
            platform = Platform.from_speeds(rng.uniform(0.3, 2.5, size=4).tolist())
            sol = lp_solve(taskset, platform)
            if not sol.feasible:
                continue
            for alpha in (1.5, 2.0, 2.98, 3.34):
                assert verify_lemma_ii1(sol.u, taskset, platform, alpha), (
                    f"Lemma II.1 violated at alpha={alpha}"
                )

    def test_requires_alpha_above_one(self):
        taskset, platform = ts(0.5), Platform.from_speeds([1.0])
        sol = lp_solve(taskset, platform)
        with pytest.raises(ValueError):
            verify_lemma_ii1(sol.u, taskset, platform, 1.0)

    def test_detects_violation(self):
        # A fake 'solution' parking a large task entirely on a machine
        # that is too slow for it even augmented: with alpha=2 and
        # w=0.9 >= 2*0.2, the suffix over the fast machine must carry at
        # least w*(1-1/alpha) = 0.45, but carries 0.
        taskset = ts(0.9)
        platform = Platform.from_speeds([0.2, 1.0])
        u = np.array([[0.9, 0.0]])
        assert not verify_lemma_ii1(u, taskset, platform, 2.0)

    def test_trivial_case_k0_reduces_to_constraint_one(self):
        # any feasible u satisfies the k=0 case since alpha/(alpha-1) > 1
        taskset = ts(0.5)
        platform = Platform.from_speeds([1.0])
        u = np.array([[0.5]])
        assert verify_lemma_ii1(u, taskset, platform, 2.0)


class TestToleranceHelpers:
    """Direct contract tests for tol_leq/tol_geq — the single comparison
    convention shared by check_lp_solution and verify_lemma_ii1."""

    def test_scalar_window(self):
        assert tol_leq(1.0, 1.0)
        assert tol_leq(1.0 + LP_TOL / 2, 1.0)  # inside the window
        assert not tol_leq(1.0 + 3 * LP_TOL, 1.0)  # outside it
        assert tol_geq(1.0 - LP_TOL / 2, 1.0)
        assert not tol_geq(1.0 - 3 * LP_TOL, 1.0)

    def test_relative_scaling(self):
        # the window grows with magnitude (relative, not absolute)
        assert tol_leq(1000.0 + 400 * LP_TOL, 1000.0)
        assert not tol_leq(1000.0 + 3000 * LP_TOL, 1000.0)
        # near zero it is absolute
        assert tol_leq(LP_TOL / 2, 0.0)
        assert not tol_leq(3 * LP_TOL, 0.0)

    def test_elementwise_on_arrays(self):
        a = np.array([1.0, 1.0 + LP_TOL / 2, 1.0 + 3 * LP_TOL])
        out = tol_leq(a, 1.0)
        assert out.tolist() == [True, True, False]
        assert tol_geq(np.array([0.5, 1.5]), 1.0).tolist() == [False, True]

    def test_custom_tol(self):
        assert tol_leq(1.01, 1.0, tol=0.1)
        assert not tol_leq(1.01, 1.0, tol=1e-9)


class TestLemmaII1Boundary:
    """The w_i ~= alpha * s_k boundary (historical tolerance-mismatch
    bug): whether machine k counts as 'too slow even augmented' is
    decided by the same tol_geq window both verifiers share, so the
    lemma's prefix/suffix split flips consistently."""

    ALPHA = 2.0  # factor alpha/(alpha-1) = 2
    SPEEDS = (0.45, 1.0)  # threshold w = alpha * s_0 = 0.9

    def _one_task(self, w):
        return TaskSet([Task.from_utilization(w, 10.0)])

    @pytest.mark.parametrize(
        "w",
        [
            0.9,  # exactly on the threshold
            0.9 * (1.0 - LP_TOL / 2),  # inside the window from below
            0.9 * (1.0 + LP_TOL / 2),  # inside the window from above
            0.9 * (1.0 + 10 * LP_TOL),  # clearly above
        ],
    )
    def test_on_threshold_prefix_applies(self, w):
        """w within (or above) the tol window of alpha*s_0: machine 0
        counts as slow, so the suffix (machine 1) must carry >= w/2."""
        taskset = self._one_task(w)
        platform = Platform.from_speeds(self.SPEEDS)
        good = np.array([[w / 2, w / 2]])
        assert verify_lemma_ii1(good, taskset, platform, self.ALPHA)
        starved = np.array([[w / 2 * (1 + 10 * LP_TOL), w / 2 * (1 - 10 * LP_TOL)]])
        assert not verify_lemma_ii1(starved, taskset, platform, self.ALPHA)

    def test_below_threshold_prefix_does_not_apply(self):
        """w clearly below alpha*s_0: k=1 never triggers, only the
        trivial k=0 case (total >= w(1-1/alpha)) constrains u."""
        w = 0.9 * (1.0 - 1e-3)
        taskset = self._one_task(w)
        platform = Platform.from_speeds(self.SPEEDS)
        # machine 0 may now carry almost everything
        lopsided = np.array([[w * 0.99, w * 0.01]])
        assert verify_lemma_ii1(lopsided, taskset, platform, self.ALPHA)

    def test_solver_output_passes_both_verifiers_near_threshold(self):
        """End-to-end: LP solutions for boundary-engineered instances
        satisfy check_lp_solution AND verify_lemma_ii1 under the shared
        convention — the pairing that used to disagree."""
        platform = Platform.from_speeds(self.SPEEDS)
        for nudge in (-LP_TOL / 2, 0.0, LP_TOL / 2):
            w = 0.9 * (1.0 + nudge)
            taskset = TaskSet(
                [Task.from_utilization(w, 10.0), Task.from_utilization(0.3, 20.0)]
            )
            sol = lp_solve(taskset, platform)
            assert sol.feasible and sol.u is not None
            assert check_lp_solution(sol.u, taskset, platform)
            for alpha in (1.5, self.ALPHA, 3.0):
                assert verify_lemma_ii1(sol.u, taskset, platform, alpha)
