"""Tests for the simplified (1+eps) dual-approximation test."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_partitioned_edf_feasible
from repro.baselines.ptas import ptas_feasibility_test
from repro.core.model import EPS, Platform, Task, TaskSet


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestPTASBasics:
    def test_trivial_feasible(self):
        res = ptas_feasibility_test(ts(0.5), Platform.from_speeds([1.0]))
        assert res.feasible
        assert res.assignment == (0,)

    def test_total_overload_infeasible(self):
        res = ptas_feasibility_test(ts(0.9, 0.9), Platform.from_speeds([1.0]))
        assert not res.feasible
        assert res.assignment is None

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            ptas_feasibility_test(ts(0.5), Platform.from_speeds([1.0]), eps=0.0)

    def test_empty_taskset(self):
        res = ptas_feasibility_test(TaskSet([]), Platform.from_speeds([1.0]))
        assert res.feasible
        assert res.assignment == ()

    def test_sand_only_instance(self):
        # all tasks below eps*s_min: pure pouring
        res = ptas_feasibility_test(
            ts(0.01, 0.02, 0.015), Platform.from_speeds([1.0]), eps=0.25
        )
        assert res.feasible
        assert res.size_classes == 0

    def test_smaller_eps_more_classes(self):
        taskset = ts(0.9, 0.7, 0.5, 0.3, 0.2)
        platform = Platform.from_speeds([1.0, 1.0])
        coarse = ptas_feasibility_test(taskset, platform, eps=0.5)
        fine = ptas_feasibility_test(taskset, platform, eps=0.1)
        assert fine.size_classes >= coarse.size_classes


class TestPTASSoundness:
    """The dual-approximation guarantees:

    * feasible verdict => the returned assignment respects (1+eps)-
      augmented capacities;
    * infeasible verdict => the exact adversary agrees at speed 1.
    """

    @given(
        st.lists(st.floats(min_value=0.02, max_value=1.0), min_size=1, max_size=10),
        st.lists(st.floats(min_value=0.3, max_value=2.0), min_size=1, max_size=3),
        st.sampled_from([0.1, 0.25, 0.5]),
    )
    @settings(max_examples=80, deadline=None)
    def test_feasible_assignment_respects_augmented_capacity(
        self, utils, speeds, eps
    ):
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        res = ptas_feasibility_test(taskset, platform, eps=eps)
        if not res.feasible:
            return
        assert res.assignment is not None
        loads = [0.0] * len(platform)
        for i, j in enumerate(res.assignment):
            loads[j] += taskset[i].utilization
        for j, load in enumerate(loads):
            assert load <= (1 + eps) * platform[j].speed * (1 + 1e-9)

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=8),
        st.lists(st.floats(min_value=0.3, max_value=1.5), min_size=1, max_size=3),
        st.sampled_from([0.15, 0.3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_infeasible_verdict_is_sound(self, utils, speeds, eps):
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        res = ptas_feasibility_test(taskset, platform, eps=eps)
        if not res.feasible:
            assert exact_partitioned_edf_feasible(taskset, platform) is False

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=8),
        st.lists(st.floats(min_value=0.3, max_value=1.5), min_size=1, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_feasible_implies_ptas_feasible(self, utils, speeds):
        """completeness direction: a true packing survives rounding."""
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        if exact_partitioned_edf_feasible(taskset, platform) is True:
            assert ptas_feasibility_test(taskset, platform, eps=0.25).feasible
