"""Tests for the executable proof machinery (machine classes, load
bounds, certificates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.certificates import (
    classify_machines,
    corollary_iv3_holds,
    corollary_v3_holds,
    edf_load_bounds_hold,
    partitioned_infeasibility_certificate,
    rms_load_bounds_hold,
)
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


def failing_runs(rng, test, alpha, count=40):
    """Generate (taskset, platform, failed result) triples."""
    out = []
    attempts = 0
    while len(out) < count and attempts < count * 200:
        attempts += 1
        m = int(rng.integers(2, 6))
        platform = geometric_platform(m, float(rng.uniform(1.5, 10.0)))
        n = int(rng.integers(4, 16))
        stress = float(rng.uniform(alpha * 0.9, alpha * 1.6))
        taskset = generate_taskset(
            rng,
            n,
            stress * platform.total_speed,
            u_max=alpha * platform.fastest_speed * 1.2,
        )
        result = first_fit_partition(taskset, platform, test, alpha=alpha)
        if not result.success:
            out.append((taskset, platform, result))
    assert out, "could not generate failing runs"
    return out


class TestClassifyMachines:
    def test_groups_are_contiguous_partition(self):
        platform = Platform.from_speeds([0.1, 0.5, 1.0, 2.0, 8.0])
        classes = classify_machines(platform, w_n=1.0, alpha=2.0, c_s=3.0)
        all_idx = sorted(classes.slow + classes.medium + classes.fast)
        assert all_idx == list(range(5))
        # slow: alpha*s < 1 -> s < 0.5 -> index 0
        assert classes.slow == (0,)
        # fast: alpha*s >= 3 -> s >= 1.5 -> indices 3, 4
        assert classes.fast == (3, 4)
        assert classes.medium == (1, 2)

    def test_thresholds(self):
        platform = Platform.from_speeds([1.0])
        classes = classify_machines(platform, w_n=2.0, alpha=2.0, c_s=4.0)
        assert classes.s_s == pytest.approx(1.0)
        assert classes.s_f == pytest.approx(4.0)

    def test_boundary_machine_is_not_slow(self):
        # speed exactly w_n / alpha: medium, not slow (alpha*s >= w_n)
        platform = Platform.from_speeds([1.0])
        classes = classify_machines(platform, w_n=2.0, alpha=2.0, c_s=3.0)
        assert classes.slow == ()
        assert classes.medium == (0,)

    def test_group_of(self):
        platform = Platform.from_speeds([0.1, 1.0, 10.0])
        classes = classify_machines(platform, w_n=1.0, alpha=2.0, c_s=3.0)
        assert classes.group_of(0) == "slow"
        assert classes.group_of(2) == "fast"

    def test_invalid_args(self):
        platform = Platform.from_speeds([1.0])
        with pytest.raises(ValueError):
            classify_machines(platform, w_n=0.0, alpha=2.0, c_s=3.0)
        with pytest.raises(ValueError):
            classify_machines(platform, w_n=1.0, alpha=2.0, c_s=0.5)


class TestLoadLowerBounds:
    def test_edf_bounds_on_random_failures(self, rng):
        """§IV.A: every failed EDF run satisfies the medium/fast load
        floors (property over random failing instances)."""
        for taskset, platform, result in failing_runs(rng, "edf", alpha=2.98):
            assert edf_load_bounds_hold(taskset, platform, result, c_s=2.868)

    def test_rms_bounds_on_random_failures(self, rng):
        for taskset, platform, result in failing_runs(rng, "rms-ll", alpha=3.34):
            assert rms_load_bounds_hold(taskset, platform, result, c_s=2.0)

    def test_requires_failed_result(self):
        taskset = ts(0.2)
        platform = Platform.from_speeds([1.0])
        ok = first_fit_partition(taskset, platform, "edf")
        assert ok.success
        with pytest.raises(ValueError):
            edf_load_bounds_hold(taskset, platform, ok, c_s=2.868)
        with pytest.raises(ValueError):
            rms_load_bounds_hold(taskset, platform, ok, c_s=2.0)


class TestCorollaries:
    def test_corollary_iv3_on_random_failures(self, rng):
        for taskset, platform, result in failing_runs(rng, "edf", alpha=2.0):
            assert corollary_iv3_holds(taskset, platform, result)

    def test_corollary_v3_on_random_failures(self, rng):
        for taskset, platform, result in failing_runs(
            rng, "rms-ll", alpha=1 + np.sqrt(2)
        ):
            assert corollary_v3_holds(taskset, platform, result)

    def test_requires_failure(self):
        taskset, platform = ts(0.1), Platform.from_speeds([1.0])
        ok = first_fit_partition(taskset, platform, "edf")
        with pytest.raises(ValueError):
            corollary_iv3_holds(taskset, platform, ok)


class TestFailureCertificate:
    def test_requires_failed_result(self):
        taskset, platform = ts(0.1), Platform.from_speeds([1.0])
        ok = first_fit_partition(taskset, platform, "edf")
        with pytest.raises(ValueError):
            partitioned_infeasibility_certificate(taskset, platform, ok)

    def test_certificate_fields(self):
        taskset = ts(0.9, 0.8)
        platform = Platform.from_speeds([1.0])
        result = first_fit_partition(taskset, platform, "edf", alpha=1.0)
        assert not result.success
        cert = partitioned_infeasibility_certificate(taskset, platform, result)
        assert cert.w_n == pytest.approx(0.8)
        assert cert.prefix_utilization == pytest.approx(1.7)
        assert cert.eligible_machines == (0,)
        assert cert.eligible_capacity == pytest.approx(1.0)
        assert cert.certifies  # 1.7 > 1.0: no partition can work

    def test_certificate_may_not_certify_below_theorem_alpha(self):
        # at alpha=1, failures can be spurious (partition may exist)
        taskset = ts(0.7, 0.7, 0.7)
        platform = Platform.from_speeds([1.0, 1.0])
        result = first_fit_partition(taskset, platform, "edf", alpha=1.0)
        assert not result.success
        cert = partitioned_infeasibility_certificate(taskset, platform, result)
        # prefix utilization 2.1 > capacity 2.0: certifies here (genuinely
        # infeasible); build a case that does NOT certify:
        taskset2 = ts(0.6, 0.6, 0.6)
        result2 = first_fit_partition(taskset2, platform, "edf", alpha=1.0)
        assert not result2.success  # 0.6+0.6 > 1 on each machine
        cert2 = partitioned_infeasibility_certificate(taskset2, platform, result2)
        assert not cert2.certifies  # 1.8 <= 2.0: the partition {2 tasks...
        # ...cannot actually exist, but this certificate can't prove it}
