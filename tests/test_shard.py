"""Tests for the sharded multi-process service front end.

Three layers:

* unit — digest→shard routing, the frame protocol over a real
  socketpair, and the per-shard Prometheus rendering;
* cross-process determinism — the sharded server's ``/v1/test``,
  ``/v1/partition``, and ``/v1/batch`` responses must be byte-identical
  to the single-process server for every worker count (1, 2, 4) and
  evaluation backend;
* robustness — a worker killed mid-request (chaos fault injection) is
  respawned with an empty cache, the poisoned request is replayed once
  before surfacing a 503, and a SIGTERM drain under load finishes the
  in-flight request before exiting 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.io_.serialize import SHARD_KEY_HEX_DIGITS, shard_for_digest
from repro.service.frontend import ShardedFrontend
from repro.service.metrics import render_shard_prometheus
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    frame_bytes,
    recv_frame,
    send_frame,
)
from repro.service.server import make_server
from repro.service.shard import CHAOS_EXIT_NAME, CHAOS_SLEEP_PREFIX
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform


def _request_body(seed: int, n: int = 8, scheduler: str = "edf",
                  adversary: str = "partitioned") -> dict:
    rng = np.random.default_rng(seed)
    platform = geometric_platform(3, 4.0)
    taskset = generate_taskset(
        rng, n, 0.8 * platform.total_speed, u_max=platform.fastest_speed
    )
    return {
        "taskset": {
            "tasks": [
                {"wcet": t.wcet, "period": t.period, "name": t.name}
                for t in taskset
            ]
        },
        "platform": {
            "machines": [{"speed": m.speed, "name": m.name} for m in platform]
        },
        "scheduler": scheduler,
        "adversary": adversary,
    }


def _post(url: str, body: dict | bytes) -> tuple[int, bytes]:
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class _ShardedProc:
    """A ``repro serve --workers N`` subprocess on an ephemeral port."""

    def __init__(self, workers: int, *extra: str):
        src_dir = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", str(workers), *extra,
            ],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        assert self.proc.stderr is not None
        banner = self.proc.stderr.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        assert match, f"no listening banner, got: {banner!r}"
        self.url = f"http://{match.group(1)}:{match.group(2)}"

    def terminate(self, expect_code: int = 0) -> None:
        self.proc.send_signal(signal.SIGTERM)
        assert self.proc.wait(timeout=30) == expect_code

    def __enter__(self) -> "_ShardedProc":
        return self

    def __exit__(self, *exc: object) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)
        if self.proc.stderr is not None:
            self.proc.stderr.close()


class TestShardRouting:
    def test_routes_are_stable_and_in_range(self):
        digests = [f"{k:064x}" for k in range(50)]
        for shards in (1, 2, 4, 7):
            routes = [shard_for_digest(d, shards) for d in digests]
            assert all(0 <= r < shards for r in routes)
            assert routes == [shard_for_digest(d, shards) for d in digests]

    def test_one_shard_takes_everything(self):
        assert shard_for_digest("ff" * 32, 1) == 0

    def test_only_the_prefix_matters(self):
        prefix = "ab" * (SHARD_KEY_HEX_DIGITS // 2)
        a = prefix + "0" * (64 - SHARD_KEY_HEX_DIGITS)
        b = prefix + "f" * (64 - SHARD_KEY_HEX_DIGITS)
        for shards in (2, 4, 8):
            assert shard_for_digest(a, shards) == shard_for_digest(b, shards)

    def test_rejects_nonpositive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_for_digest("0" * 64, 0)

    def test_spreads_uniform_digests(self):
        rng = np.random.default_rng(7)
        digests = [
            "".join(rng.choice(list("0123456789abcdef"), size=64))
            for _ in range(400)
        ]
        counts = [0, 0, 0, 0]
        for d in digests:
            counts[shard_for_digest(d, 4)] += 1
        assert min(counts) > 50  # no shard starved


class TestFrameProtocol:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = ("test", 7, {"payload": [1.5, "x"], "nested": (1, 2)})
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            blob = frame_bytes(("op", 0, None))
            a.sendall(blob[: len(blob) - 2])
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestShardPrometheus:
    def test_renders_live_and_dead_shards(self):
        snapshots = [
            {
                "shard": 0,
                "state": "ok",
                "restarts": 1,
                "queue_depth": 3,
                "stats": {
                    "requests": {"test": 10, "batch": 2},
                    "items": 42,
                    "cache": {"hits": 30, "misses": 12, "evictions": 4,
                              "size": 8},
                    "backend_tests": {"scalar": 12},
                },
            },
            # A dead shard answers no stats, but liveness/restarts/queue
            # depth come from the front end's view and must still render.
            {
                "shard": 1,
                "state": "restarting",
                "restarts": 2,
                "queue_depth": 5,
                "stats": None,
            },
        ]
        text = render_shard_prometheus(snapshots)
        assert 'repro_shard_up{shard="0"} 1' in text
        assert 'repro_shard_up{shard="1"} 0' in text
        assert 'repro_shard_restarts_total{shard="1"} 2' in text
        assert 'repro_shard_queue_depth{shard="1"} 5' in text
        assert 'repro_shard_requests_total{shard="0",op="test"} 10' in text
        assert 'repro_shard_cache_hits_total{shard="0"} 30' in text
        assert 'repro_shard_backend_tests_total{shard="0",backend="scalar"} 12' in text
        # No stats series for the dead shard.
        assert 'repro_shard_cache_hits_total{shard="1"}' not in text

    def test_empty_snapshot_list_renders_empty(self):
        assert render_shard_prometheus([]) == ""


class TestHealthzAggregation:
    def test_degraded_when_any_worker_not_ok(self):
        frontend = ShardedFrontend(workers=2)
        # Handles that never started report state "starting" — anything
        # other than "ok" must flip the aggregate to degraded.
        from repro.service.frontend import _WorkerHandle

        ok = _WorkerHandle.__new__(_WorkerHandle)
        ok.frontend, ok.index, ok.state, ok.restarts = frontend, 0, "ok", 0
        ok.proc, ok.pending = None, {}
        bad = _WorkerHandle.__new__(_WorkerHandle)
        bad.frontend, bad.index, bad.state, bad.restarts = frontend, 1, "restarting", 1
        bad.proc, bad.pending = None, {}
        frontend.handles = [ok, bad]
        health = frontend._handle_healthz()
        assert health["status"] == "degraded"
        assert [s["state"] for s in health["shards"]] == ["ok", "restarting"]
        bad.state = "ok"
        assert frontend._handle_healthz()["status"] == "ok"


@pytest.fixture()
def reference():
    """Fresh single-process reference server per test.

    Function-scoped on purpose: the byte-identity tests compare cold
    verdicts (``cached: false``) on both sides, so the reference cache
    must not stay warm across parametrized runs.
    """
    srv = make_server(port=0, cache_size=4096)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()


class TestCrossProcessDeterminism:
    """The acceptance property: bytes must not depend on the topology."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_test_and_partition_bytes_match_reference(self, reference, workers):
        bodies = [_request_body(seed) for seed in range(6)]
        partition = {
            "taskset": bodies[0]["taskset"],
            "platform": bodies[0]["platform"],
            "test": "edf",
            "alpha": 2.0,
        }
        with _ShardedProc(workers) as sharded:
            for body in bodies:
                expected = _post(reference + "/v1/test", body)
                got = _post(sharded.url + "/v1/test", body)
                assert got == expected
            assert (
                _post(sharded.url + "/v1/partition", partition)
                == _post(reference + "/v1/partition", partition)
            )
            sharded.terminate()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batch_bytes_match_reference(self, reference, workers):
        instances = [
            _request_body(seed, scheduler=sch, adversary=adv)
            for seed in range(3)
            for sch in ("edf", "rms")
            for adv in ("partitioned", "any")
        ]
        # Duplicates exercise the dedup discipline across the shard split.
        batch = {"instances": instances + instances[:4]}
        expected = _post(reference + "/v1/batch", batch)
        assert expected[0] == 200
        with _ShardedProc(workers) as sharded:
            assert _post(sharded.url + "/v1/batch", batch) == expected
            sharded.terminate()

    @pytest.mark.parametrize("backend", ["kernel", "numpy"])
    def test_backends_agree_on_batch_verdicts(self, reference, backend):
        """Kernel-backend shards return the same verdicts (modulo the
        documented ``backend`` provenance key) as the scalar reference."""
        if backend == "numpy":
            pytest.importorskip("numpy")
        batch = {
            "instances": [
                _request_body(seed, scheduler=sch)
                for seed in range(3)
                for sch in ("edf", "rms")
            ]
        }
        status, raw = _post(reference + "/v1/batch", batch)
        assert status == 200
        scalar = json.loads(raw)
        with _ShardedProc(2, "--backend", backend) as sharded:
            status, raw = _post(sharded.url + "/v1/batch", batch)
            assert status == 200
            fast = json.loads(raw)
            sharded.terminate()
        assert len(fast["results"]) == len(scalar["results"])
        for got, want in zip(fast["results"], scalar["results"]):
            assert got["digest"] == want["digest"]
            report = dict(got["report"])
            assert report.pop("backend", None) == backend
            assert report == want["report"]

    def test_error_paths_match_reference(self, reference):
        with _ShardedProc(2) as sharded:
            for path, body in (
                ("/v1/test", {"bogus": True}),
                ("/nowhere", {"x": 1}),
            ):
                assert (
                    _post(sharded.url + path, body)
                    == _post(reference + path, body)
                )
            sharded.terminate()

    def test_same_instance_lands_on_same_shard_cache(self):
        body = _request_body(99)
        with _ShardedProc(4) as sharded:
            first = json.loads(_post(sharded.url + "/v1/test", body)[1])
            second = json.loads(_post(sharded.url + "/v1/test", body)[1])
            assert first["cached"] is False
            assert second["cached"] is True
            assert second["report"] == first["report"]
            sharded.terminate()


class TestWorkerCrashRobustness:
    def test_poisoned_request_gets_503_after_one_replay(self):
        poison = _request_body(1)
        poison["taskset"]["tasks"][0]["name"] = CHAOS_EXIT_NAME
        good = _request_body(2)
        with _ShardedProc(2, "--chaos") as sharded:
            status, raw = _post(sharded.url + "/v1/test", good)
            assert status == 200
            status, raw = _post(sharded.url + "/v1/test", poison)
            assert status == 503
            assert "unavailable" in json.loads(raw)["error"]["message"]
            # The shard died twice (original + one replay) and respawned
            # both times; the pool must be serving again.
            status, raw = _post(sharded.url + "/v1/test", good)
            assert status == 200
            health = json.loads(_get(sharded.url + "/healthz")[1])
            assert health["status"] == "ok"
            assert sum(s["restarts"] for s in health["shards"]) == 2
            text = _get(sharded.url + "/metrics?format=prometheus")[1].decode()
            assert re.search(r'repro_shard_restarts_total\{shard="\d"\} 2', text)
            sharded.terminate()

    def test_respawned_worker_starts_with_empty_cache(self):
        body = _request_body(3)
        poison = _request_body(4)
        poison["taskset"]["tasks"][0]["name"] = CHAOS_EXIT_NAME
        with _ShardedProc(1, "--chaos") as sharded:
            first = json.loads(_post(sharded.url + "/v1/test", body)[1])
            assert first["cached"] is False
            assert json.loads(_post(sharded.url + "/v1/test", body)[1])["cached"]
            assert _post(sharded.url + "/v1/test", poison)[0] == 503
            # Same instance again: the respawned worker's LRU is empty,
            # so this is a recomputation, not a hit — and the verdict
            # bytes must still match the pre-crash response.
            after = json.loads(_post(sharded.url + "/v1/test", body)[1])
            assert after["cached"] is False
            assert after["report"] == first["report"]
            sharded.terminate()

    def test_mid_batch_crash_fails_only_that_batch(self):
        instances = [_request_body(seed) for seed in range(4)]
        poisoned = [dict(b) for b in instances]
        poisoned[2] = json.loads(json.dumps(poisoned[2]))
        poisoned[2]["taskset"]["tasks"][0]["name"] = CHAOS_EXIT_NAME
        with _ShardedProc(2, "--chaos") as sharded:
            status, raw = _post(
                sharded.url + "/v1/batch", {"instances": poisoned}
            )
            assert status == 503
            # The pool recovered; the clean batch now answers fully.
            status, raw = _post(
                sharded.url + "/v1/batch", {"instances": instances}
            )
            assert status == 200
            assert json.loads(raw)["count"] == 4
            sharded.terminate()


class TestShardedDrain:
    def test_sigterm_finishes_inflight_request_then_exits_zero(self):
        slow = _request_body(5)
        slow["taskset"]["tasks"][0]["name"] = f"{CHAOS_SLEEP_PREFIX}800__"
        with _ShardedProc(2, "--chaos") as sharded:
            results: list[tuple[int, bytes]] = []

            def fire():
                results.append(_post(sharded.url + "/v1/test", slow))

            thread = threading.Thread(target=fire)
            thread.start()
            time.sleep(0.3)  # let the slow request reach the worker
            sharded.proc.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert sharded.proc.wait(timeout=30) == 0
            assert results and results[0][0] == 200

    def test_metrics_json_reports_shard_stats(self):
        with _ShardedProc(2) as sharded:
            _post(sharded.url + "/v1/test", _request_body(6))
            metrics = json.loads(_get(sharded.url + "/metrics")[1])
            assert metrics["workers"] == 2
            assert len(metrics["shards"]) == 2
            polled = [s["stats"] for s in metrics["shards"] if s["stats"]]
            assert polled, "no shard answered a stats frame"
            assert sum(s["items"] for s in polled) == 1
            sharded.terminate()
