"""Live-server tests for the feasibility-query service.

A real ``ThreadingHTTPServer`` on an ephemeral port, exercised through
``ServiceClient`` and raw sockets: correctness-vs-direct-call
equivalence, canonical-instance cache behaviour, concurrent clients,
structured error paths, metrics, and graceful shutdown.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.feasibility import feasibility_test
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.io_.serialize import (
    instance_digest,
    partition_result_to_dict,
    report_to_dict,
)
from repro.service import LRUCache, ServiceClient, ServiceError, make_server
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform


def _instance(seed: int, n: int = 12, stress: float = 0.9):
    rng = np.random.default_rng(seed)
    platform = geometric_platform(4, 8.0)
    taskset = generate_taskset(
        rng, n, stress * platform.total_speed, u_max=platform.fastest_speed
    )
    return taskset, platform


def _rejected_instance():
    """Overloaded by construction: 5 x utilization 0.9 on two unit machines
    exceeds even alpha=2 aggregate capacity, so every theorem test rejects."""
    taskset = TaskSet([Task(wcet=9, period=10) for _ in range(5)])
    platform = Platform.from_speeds([1.0, 1.0])
    return taskset, platform


@pytest.fixture(scope="module")
def server():
    srv = make_server(port=0, jobs=1, cache_size=256)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture(scope="module")
def client(base_url):
    return ServiceClient(base_url, timeout=30.0)


def _raw_post(base_url: str, path: str, body: bytes):
    request = urllib.request.Request(
        base_url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealth:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["uptime_seconds"] >= 0
        assert health["cache"]["capacity"] == 256


class TestEquivalence:
    """Acceptance: /v1/test responses byte-identical to direct calls."""

    @pytest.mark.parametrize("scheduler", ["edf", "rms"])
    @pytest.mark.parametrize("adversary", ["partitioned", "any"])
    def test_all_theorems_match_direct_call(self, client, scheduler, adversary):
        for seed in range(5):
            taskset, platform = _instance(seed)
            direct = report_to_dict(
                feasibility_test(taskset, platform, scheduler, adversary)
            )
            response = client.test(taskset, platform, scheduler, adversary)
            assert response["report"] == direct

    def test_rejection_with_certificate_matches(self, client):
        taskset, platform = _rejected_instance()
        direct = report_to_dict(feasibility_test(taskset, platform))
        response = client.test(taskset, platform)
        assert not direct["accepted"]
        assert response["report"] == direct
        assert response["report"]["certificate"]["certifies"]

    def test_alpha_override_matches(self, client):
        taskset, platform = _instance(11, stress=1.05)
        direct = report_to_dict(
            feasibility_test(taskset, platform, alpha=1.0)
        )
        response = client.test(taskset, platform, alpha=1.0)
        assert response["report"] == direct

    def test_client_report_equals_direct_object(self, client):
        taskset, platform = _instance(3)
        assert client.test_report(taskset, platform) == feasibility_test(
            taskset, platform
        )


class TestCache:
    """Acceptance: repeated queries hit the cache, verdict unchanged."""

    def test_repeat_query_is_cached(self, client):
        taskset, platform = _instance(100)
        hits_before = client.health()["cache"]["hits"]
        first = client.test(taskset, platform)
        second = client.test(taskset, platform)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["report"] == first["report"]
        assert second["digest"] == first["digest"]
        assert client.health()["cache"]["hits"] > hits_before

    def test_task_permutation_hits_cache_with_correct_indices(self, client):
        taskset, platform = _instance(101)
        first = client.test(taskset, platform)
        permuted = taskset.subset(list(range(len(taskset)))[::-1])
        response = client.test(permuted, platform)
        assert response["digest"] == first["digest"]
        assert response["cached"] is True
        # the remapped response equals a direct call on the permuted order
        assert response["report"] == report_to_dict(
            feasibility_test(permuted, platform)
        )

    def test_machine_permutation_and_names_hit_cache(self, client):
        taskset, platform = _instance(102)
        first = client.test(taskset, platform)
        renamed = Platform.from_speeds(list(platform.speeds)[::-1])
        response = client.test(taskset, renamed)
        assert response["digest"] == first["digest"]
        assert response["cached"] is True
        assert response["report"] == first["report"]

    def test_default_and_explicit_theorem_alpha_share_entry(self, client):
        taskset, platform = _instance(103)
        first = client.test(taskset, platform, "edf", "partitioned")
        second = client.test(taskset, platform, "edf", "partitioned", alpha=2.0)
        assert second["digest"] == first["digest"]
        assert second["cached"] is True

    def test_different_query_different_entry(self, client):
        taskset, platform = _instance(104)
        edf = client.test(taskset, platform, "edf")
        rms = client.test(taskset, platform, "rms")
        assert edf["digest"] != rms["digest"]
        assert rms["cached"] is False


class TestPartition:
    def test_matches_direct_first_fit(self, client):
        taskset, platform = _instance(7)
        for test, alpha in (("edf", 1.0), ("edf", 2.0), ("rms-ll", 2.5)):
            direct = partition_result_to_dict(
                first_fit_partition(taskset, platform, test, alpha=alpha)
            )
            response = client.partition(taskset, platform, test, alpha=alpha)
            assert response["result"] == direct

    def test_constrained_deadlines_allowed(self, client):
        taskset = TaskSet(
            [Task(wcet=1, period=10, deadline=4), Task(wcet=2, period=8)]
        )
        platform = Platform.from_speeds([1.0, 2.0])
        direct = partition_result_to_dict(
            first_fit_partition(taskset, platform, "edf-dbf", alpha=1.0)
        )
        response = client.partition(taskset, platform, "edf-dbf")
        assert response["result"] == direct

    def test_partition_cached_on_repeat(self, client):
        taskset, platform = _instance(8)
        first = client.partition(taskset, platform, "edf", alpha=1.5)
        second = client.partition(taskset, platform, "edf", alpha=1.5)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]


class TestBatch:
    def test_batch_matches_individual_direct_calls(self, client):
        pairs = [_instance(200 + k) for k in range(6)]
        response = client.batch(pairs)
        assert response["count"] == 6
        assert len(response["results"]) == 6
        for (taskset, platform), item in zip(pairs, response["results"]):
            assert item["report"] == report_to_dict(
                feasibility_test(taskset, platform)
            )
            assert item["digest"] == instance_digest(
                taskset,
                platform,
                query={
                    "kind": "test",
                    "scheduler": "edf",
                    "adversary": "partitioned",
                    "alpha": 2.0,
                },
            )

    def test_batch_reuses_cache(self, client):
        pairs = [_instance(300 + k) for k in range(3)]
        first = client.batch(pairs)
        second = client.batch(pairs)
        assert first["cached"] == 0
        assert second["cached"] == 3
        assert [r["report"] for r in second["results"]] == [
            r["report"] for r in first["results"]
        ]

    def test_batch_deduplicates_permutations(self, client):
        taskset, platform = _instance(400)
        permuted = taskset.subset(list(range(len(taskset)))[::-1])
        response = client.batch([(taskset, platform), (permuted, platform)])
        assert response["results"][0]["digest"] == response["results"][1]["digest"]
        assert response["results"][1]["report"] == report_to_dict(
            feasibility_test(permuted, platform)
        )


class TestConcurrency:
    """Acceptance: 8 concurrent clients on /v1/batch, no corruption."""

    def test_eight_concurrent_batch_clients(self, base_url):
        n_clients = 8
        shared = [_instance(500 + k) for k in range(3)]
        per_client = {
            c: shared + [_instance(600 + 10 * c + k) for k in range(3)]
            for c in range(n_clients)
        }
        expected = {
            c: [
                report_to_dict(feasibility_test(ts, pf))
                for ts, pf in pairs
            ]
            for c, pairs in per_client.items()
        }

        def hammer(c: int):
            local_client = ServiceClient(base_url, timeout=60.0)
            out = []
            for _ in range(3):
                response = local_client.batch(per_client[c])
                out.append([item["report"] for item in response["results"]])
            return out

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            results = list(pool.map(hammer, range(n_clients)))
        for c, rounds in enumerate(results):
            for reports in rounds:
                assert reports == expected[c]


class TestErrors:
    def test_malformed_json(self, base_url):
        status, body = _raw_post(base_url, "/v1/test", b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]["message"]

    def test_non_object_body(self, base_url):
        status, body = _raw_post(base_url, "/v1/test", b"[1, 2, 3]")
        assert status == 400
        assert body["error"]["fields"]

    def test_field_level_errors(self, base_url):
        payload = {
            "taskset": {"tasks": [{"wcet": -1, "period": 5}, {"wcet": 1}]},
            "platform": {"machines": [{"speed": 0}]},
            "scheduler": "fifo",
        }
        status, body = _raw_post(
            base_url, "/v1/test", json.dumps(payload).encode()
        )
        assert status == 400
        fields = {e["field"] for e in body["error"]["fields"]}
        assert "taskset.tasks[0].wcet" in fields
        assert "taskset.tasks[1].period" in fields
        assert "platform.machines[0].speed" in fields
        assert "scheduler" in fields

    def test_constrained_deadline_rejected_on_test(self, base_url):
        payload = {
            "taskset": {"tasks": [{"wcet": 1, "period": 10, "deadline": 4}]},
            "platform": {"machines": [{"speed": 1.0}]},
        }
        status, body = _raw_post(
            base_url, "/v1/test", json.dumps(payload).encode()
        )
        assert status == 400
        assert any(
            "implicit deadlines" in e["message"] for e in body["error"]["fields"]
        )

    def test_batch_item_errors_are_indexed(self, base_url):
        good = {
            "taskset": {"tasks": [{"wcet": 1, "period": 10}]},
            "platform": {"machines": [{"speed": 1.0}]},
        }
        bad = {
            "taskset": {"tasks": [{"wcet": "x", "period": 10}]},
            "platform": {"machines": [{"speed": 1.0}]},
        }
        status, body = _raw_post(
            base_url,
            "/v1/batch",
            json.dumps({"instances": [good, bad]}).encode(),
        )
        assert status == 400
        fields = {e["field"] for e in body["error"]["fields"]}
        assert "instances[1].taskset.tasks[0].wcet" in fields

    def test_unknown_endpoint_404(self, base_url):
        status, body = _raw_post(base_url, "/v1/nope", b"{}")
        assert status == 404
        assert "unknown endpoint" in body["error"]["message"]

    def test_wrong_method_405(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(base_url + "/v1/test", timeout=10)
        assert exc_info.value.code == 405

    def test_bad_metrics_format_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.metrics("xml")
        assert exc_info.value.status == 400

    def test_client_error_carries_fields(self, base_url):
        bad_client = ServiceClient(base_url)
        taskset, platform = _instance(2)
        with pytest.raises(ServiceError) as exc_info:
            bad_client.test(taskset, platform, scheduler="bogus")
        assert exc_info.value.status == 400
        assert any(e["field"] == "scheduler" for e in exc_info.value.fields)


class TestConstrainedValidation:
    """Deadline-axis validation (constrained-family satellites): the
    tolerant implicit check snaps float-round-trip deadlines, and the
    rejection body for constrained submissions is byte-identical no
    matter which evaluation backend the server runs."""

    def test_float_roundtrip_deadline_snaps_to_implicit(self, base_url):
        # 0.1 + 0.2 != 0.3 exactly; a client that computed the period and
        # serialized the deadline separately still submitted an implicit
        # instance, so validation must snap (not reject, not crash later
        # in a theorem test that requires Task.is_implicit)
        period = 0.1 + 0.2
        payload = {
            "taskset": {
                "tasks": [{"wcet": 0.1, "period": period, "deadline": 0.3}]
            },
            "platform": {"machines": [{"speed": 1.0}]},
        }
        status, body = _raw_post(
            base_url, "/v1/test", json.dumps(payload).encode()
        )
        assert status == 200
        direct = feasibility_test(
            TaskSet([Task(wcet=0.1, period=period)]),
            Platform.from_speeds([1.0]),
        )
        assert body["report"] == report_to_dict(direct)

    def test_truly_constrained_deadline_still_rejected(self, base_url):
        # the snap is a tolerance, not a loophole: a deadline well below
        # the period keeps its field-level error
        payload = {
            "taskset": {
                "tasks": [{"wcet": 0.1, "period": 0.3, "deadline": 0.15}]
            },
            "platform": {"machines": [{"speed": 1.0}]},
        }
        status, body = _raw_post(
            base_url, "/v1/test", json.dumps(payload).encode()
        )
        assert status == 400
        assert any(
            e["field"] == "taskset.tasks[0].deadline"
            for e in body["error"]["fields"]
        )

    def test_batch_rejection_is_backend_identical(self, base_url):
        # a constrained instance inside /v1/batch must fail up front in
        # validation with the same indexed field errors on every backend
        # — never as a mid-batch ValueError from a kernel
        payload = json.dumps(
            {
                "instances": [
                    {
                        "taskset": {"tasks": [{"wcet": 1, "period": 10}]},
                        "platform": {"machines": [{"speed": 1.0}]},
                    },
                    {
                        "taskset": {
                            "tasks": [{"wcet": 1, "period": 10, "deadline": 4}]
                        },
                        "platform": {"machines": [{"speed": 1.0}]},
                    },
                ]
            }
        ).encode()
        scalar_status, scalar_body = _raw_post(base_url, "/v1/batch", payload)
        assert scalar_status == 400
        fields = {e["field"] for e in scalar_body["error"]["fields"]}
        assert "instances[1].taskset.tasks[0].deadline" in fields

        for backend in ("kernel", "numpy"):
            srv = make_server(port=0, jobs=1, cache_size=16, backend=backend)
            thread = threading.Thread(target=srv.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = srv.server_address[:2]
                status, body = _raw_post(
                    f"http://{host}:{port}", "/v1/batch", payload
                )
            finally:
                srv.shutdown()
                thread.join(timeout=10)
                srv.server_close()
            assert status == scalar_status, backend
            assert body == scalar_body, backend


class TestMetrics:
    def test_json_snapshot_structure(self, client):
        client.health()  # ensure at least one observed request
        metrics = client.metrics()
        assert set(metrics) >= {"requests", "latency", "cache", "uptime_seconds"}
        assert "/healthz" in metrics["requests"]
        assert metrics["requests"]["/healthz"]["200"] >= 1
        hist = metrics["latency"]["/healthz"]
        assert hist["count"] >= 1
        assert hist["buckets"]["+Inf"] == hist["count"]
        cache = metrics["cache"]
        assert 0.0 <= cache["hit_ratio"] <= 1.0
        assert cache["hits"] + cache["misses"] > 0

    def test_latency_counts_match_request_counts(self, client):
        metrics = client.metrics()
        for endpoint, by_status in metrics["requests"].items():
            assert metrics["latency"][endpoint]["count"] == sum(
                by_status.values()
            )

    def test_prometheus_rendering(self, client):
        text = client.metrics("prometheus")
        assert isinstance(text, str)
        assert "# TYPE repro_requests_total counter" in text
        assert re.search(
            r'repro_requests_total\{endpoint="/healthz",status="200"\} \d+', text
        )
        assert 'repro_request_latency_seconds_bucket{endpoint="/healthz",le="+Inf"}' in text
        assert "repro_cache_hits_total" in text
        assert "repro_cache_hit_ratio" in text

    def test_error_requests_are_counted(self, client, base_url):
        before = client.metrics()["requests"].get("/v1/test", {}).get("400", 0)
        _raw_post(base_url, "/v1/test", b"{not json")
        after = client.metrics()["requests"]["/v1/test"]["400"]
        assert after == before + 1


class TestGracefulShutdown:
    def test_inflight_request_drains_before_close(self):
        srv = make_server(port=0, jobs=1, cache_size=16)
        host, port = srv.server_address[:2]
        accept_thread = threading.Thread(target=srv.serve_forever)
        accept_thread.start()
        started = threading.Event()
        release = threading.Event()

        def hold(endpoint: str) -> None:
            if endpoint == "/v1/test":
                started.set()
                assert release.wait(timeout=30)

        srv.service.before_handle = hold
        local_client = ServiceClient(f"http://{host}:{port}")
        taskset, platform = _instance(9)
        box = {}

        def request():
            box["response"] = local_client.test(taskset, platform)

        request_thread = threading.Thread(target=request)
        request_thread.start()
        try:
            assert started.wait(timeout=30)
            # Stop the accept loop while the request is still in flight.
            srv.shutdown()
            accept_thread.join(timeout=10)
            assert not accept_thread.is_alive()
            assert request_thread.is_alive()
        finally:
            release.set()
        request_thread.join(timeout=30)
        srv.server_close()  # joins the handler thread (block_on_close)
        assert box["response"]["report"] == report_to_dict(
            feasibility_test(taskset, platform)
        )
        # the drained server no longer accepts connections
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            local_client.health()


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self):
        src_dir = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no listening banner, got: {banner!r}"
            url = f"http://{match.group(1)}:{match.group(2)}"
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                assert json.loads(resp.read())["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestLRUCacheUnit:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_hit_ratio_counters(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_ratio == 0.5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_concurrent_access_is_safe(self):
        cache = LRUCache(64)

        def worker(base: int):
            for i in range(500):
                cache.put((base, i % 80), i)
                cache.get((base, (i * 7) % 80))

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.size <= 64
        assert stats.hits + stats.misses == 8 * 500
