"""Tests for the adversarial hard-instance search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hard_instances import search_hard_instance
from repro.analysis.ratio import min_alpha_first_fit
from repro.baselines.exact import exact_partitioned_edf_feasible
from repro.workloads.platforms import geometric_platform


class TestSearchHardInstance:
    def test_result_is_witnessed_feasible(self, rng):
        platform = geometric_platform(3, 4.0)
        hard = search_hard_instance(
            rng, platform, "edf", iterations=20, restarts=2
        )
        # the witness certifies feasibility: per-machine loads fit speeds
        loads = [0.0] * len(platform)
        for i, j in enumerate(hard.witness):
            loads[j] += hard.taskset[i].utilization
        for j, load in enumerate(loads):
            assert load <= platform[j].speed * (1 + 1e-9)
        # and the exact adversary agrees
        assert exact_partitioned_edf_feasible(hard.taskset, platform) is True

    def test_alpha_is_reproducible(self, rng):
        platform = geometric_platform(3, 4.0)
        hard = search_hard_instance(
            rng, platform, "edf", iterations=15, restarts=1
        )
        re_measured = min_alpha_first_fit(hard.taskset, platform, "edf").alpha
        assert re_measured == pytest.approx(hard.alpha, abs=2e-3)

    def test_respects_theorem_bound(self, rng):
        platform = geometric_platform(3, 6.0)
        for scheduler, bound in (("edf", 2.0), ("rms", 1 + np.sqrt(2))):
            hard = search_hard_instance(
                rng, platform, scheduler, iterations=25, restarts=2
            )
            assert hard.alpha <= bound + 2e-3, (
                f"search found an instance above the Theorem bound for "
                f"{scheduler} — that would falsify the paper"
            )

    def test_search_at_least_matches_its_own_restarts(self, rng):
        platform = geometric_platform(3, 4.0)
        hard = search_hard_instance(
            rng, platform, "edf", iterations=10, restarts=3
        )
        assert len(hard.restart_bests) == 3
        assert hard.alpha == pytest.approx(max(hard.restart_bests), abs=1e-9)

    def test_finds_nontrivial_hardness(self, rng):
        """With full machine fill, the search should find instances
        needing strictly more than alpha = 1 (first-fit is not optimal)."""
        platform = geometric_platform(4, 8.0)
        hard = search_hard_instance(
            rng, platform, "edf", iterations=60, restarts=3, load=1.0
        )
        assert hard.alpha > 1.0

    def test_invalid_args(self, rng):
        platform = geometric_platform(2, 2.0)
        with pytest.raises(ValueError):
            search_hard_instance(rng, platform, "edf", load=0.0)
        with pytest.raises(ValueError):
            search_hard_instance(rng, platform, "edf", iterations=0)
