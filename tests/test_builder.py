"""Tests for instance builders and campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lp import lp_feasible
from repro.core.model import TaskSet
from repro.workloads.builder import (
    constrained_feasible_instance,
    generate_taskset,
    lp_feasible_instance,
    partitioned_feasible_instance,
    taskset_from_utilizations,
)
from repro.workloads.campaigns import Campaign, campaign_seed, utilization_grid
from repro.workloads.platforms import geometric_platform


class TestTasksetFromUtilizations:
    def test_basic(self):
        ts = taskset_from_utilizations([0.2, 0.5], [10.0, 4.0])
        assert ts[0].wcet == pytest.approx(2.0)
        assert ts[1].wcet == pytest.approx(2.0)
        assert ts[0].name == "tau0"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            taskset_from_utilizations([0.2], [10.0, 4.0])


class TestGenerateTaskset:
    def test_uunifast_default(self, rng):
        ts = generate_taskset(rng, 10, 2.5)
        assert len(ts) == 10
        assert ts.total_utilization == pytest.approx(2.5)

    def test_u_max_respected(self, rng):
        ts = generate_taskset(rng, 10, 4.0, u_max=0.7)
        assert ts.max_utilization <= 0.7 + 1e-12

    def test_randfixedsum_with_umin(self, rng):
        ts = generate_taskset(
            rng, 8, 3.0, method="randfixedsum", u_min=0.1, u_max=0.9
        )
        assert all(0.1 - 1e-9 <= t.utilization <= 0.9 + 1e-9 for t in ts)
        assert ts.total_utilization == pytest.approx(3.0)

    def test_umin_requires_randfixedsum(self, rng):
        with pytest.raises(ValueError):
            generate_taskset(rng, 5, 1.0, u_min=0.1)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            generate_taskset(rng, 5, 1.0, method="magic")  # type: ignore[arg-type]

    def test_integer_periods(self, rng):
        ts = generate_taskset(rng, 10, 2.0, integer_periods=True, p_min=3, p_max=30)
        assert all(t.period == round(t.period) for t in ts)

    def test_implicit_default_is_bit_compatible(self):
        # dr_dist='implicit' must consume the same random stream as the
        # pre-deadline-axis generator, or every pinned seed in the
        # experiment archives silently drifts
        a = generate_taskset(np.random.default_rng(77), 12, 3.0)
        b = generate_taskset(
            np.random.default_rng(77), 12, 3.0, dr_dist="implicit"
        )
        assert a == b
        assert a.is_implicit

    def test_deadline_axis_bounds_and_untouched_wcets(self, rng):
        ts = generate_taskset(
            rng, 40, 6.0, dr_dist="uniform", dr_min=0.3, dr_max=0.8
        )
        for t in ts:
            assert 0.3 * t.period - 1e-9 <= t.deadline <= 0.8 * t.period + 1e-9
        # the sweep isolates the deadline axis: utilizations still sum to
        # the target exactly as in the implicit draw
        assert ts.total_utilization == pytest.approx(6.0)

    def test_deadline_axis_same_body_as_implicit_draw(self):
        # same seed: wcets and periods identical, only deadlines differ
        implicit = generate_taskset(np.random.default_rng(5), 8, 2.0)
        constrained = generate_taskset(
            np.random.default_rng(5), 8, 2.0, dr_dist="uniform"
        )
        for a, b in zip(implicit, constrained):
            assert (a.wcet, a.period) == (b.wcet, b.period)
        assert not constrained.is_implicit

    def test_loguniform_deadline_axis(self, rng):
        ts = generate_taskset(
            rng, 30, 4.0, dr_dist="loguniform", dr_min=0.2, dr_max=1.0
        )
        assert all(t.deadline <= t.period + 1e-9 for t in ts)
        assert any(t.deadline < t.period for t in ts)

    def test_invalid_deadline_ratio_args(self, rng):
        with pytest.raises(ValueError):
            generate_taskset(rng, 5, 1.0, dr_dist="gaussian")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            generate_taskset(rng, 5, 1.0, dr_dist="uniform", dr_min=0.0)


class TestPartitionedFeasibleInstance:
    def test_witness_fits_capacities(self, rng):
        platform = geometric_platform(4, 6.0)
        inst = partitioned_feasible_instance(
            rng, platform, load=0.9, tasks_per_machine=4
        )
        loads = inst.witness_loads()
        for j, machine in enumerate(platform):
            assert loads[j] <= machine.speed * 0.9 * (1 + 1e-9)

    def test_task_count(self, rng):
        platform = geometric_platform(3, 2.0)
        inst = partitioned_feasible_instance(rng, platform, tasks_per_machine=5)
        assert len(inst.taskset) == 15
        assert len(inst.witness) == 15

    def test_shuffled_but_consistent(self, rng):
        platform = geometric_platform(2, 4.0)
        inst = partitioned_feasible_instance(
            rng, platform, load=1.0, tasks_per_machine=3
        )
        # per-machine witness load equals the generated target load * s_j
        loads = inst.witness_loads()
        for j, machine in enumerate(platform):
            assert loads[j] == pytest.approx(machine.speed, rel=1e-9)

    def test_invalid_args(self, rng):
        platform = geometric_platform(2, 2.0)
        with pytest.raises(ValueError):
            partitioned_feasible_instance(rng, platform, load=0.0)
        with pytest.raises(ValueError):
            partitioned_feasible_instance(rng, platform, load=1.2)
        with pytest.raises(ValueError):
            partitioned_feasible_instance(rng, platform, tasks_per_machine=0)

    def test_integer_periods(self, rng):
        platform = geometric_platform(2, 2.0)
        inst = partitioned_feasible_instance(
            rng, platform, integer_periods=True, p_min=4, p_max=16
        )
        assert all(t.period == round(t.period) for t in inst.taskset)


class TestConstrainedFeasibleInstance:
    def test_density_certificate_holds(self, rng):
        # per machine, total density sums to load * s_j — the generator's
        # no-redraw feasibility certificate
        platform = geometric_platform(3, 4.0)
        inst = constrained_feasible_instance(
            rng, platform, load=0.85, tasks_per_machine=4
        )
        densities = [0.0] * len(platform)
        for i, j in enumerate(inst.witness):
            t = inst.taskset[i]
            densities[j] += t.wcet / t.deadline
        for j, machine in enumerate(platform):
            assert densities[j] == pytest.approx(0.85 * machine.speed)

    def test_witness_machines_are_qpa_feasible_at_speed_one(self, rng):
        from repro.core.dbf import qpa_edf_feasible

        platform = geometric_platform(3, 4.0)
        inst = constrained_feasible_instance(rng, platform, load=1.0)
        for j, machine in enumerate(platform):
            tasks = [
                inst.taskset[i]
                for i, owner in enumerate(inst.witness)
                if owner == j
            ]
            assert qpa_edf_feasible(tasks, machine.speed)

    def test_deadlines_constrained_within_ratio_band(self, rng):
        platform = geometric_platform(2, 2.0)
        inst = constrained_feasible_instance(
            rng, platform, dr_min=0.4, dr_max=0.7, tasks_per_machine=6
        )
        for t in inst.taskset:
            assert 0.4 * t.period - 1e-9 <= t.deadline <= 0.7 * t.period + 1e-9

    def test_invalid_args(self, rng):
        platform = geometric_platform(2, 2.0)
        with pytest.raises(ValueError):
            constrained_feasible_instance(rng, platform, load=0.0)
        with pytest.raises(ValueError):
            constrained_feasible_instance(rng, platform, tasks_per_machine=0)
        with pytest.raises(ValueError):
            # the density certificate needs d <= p
            constrained_feasible_instance(rng, platform, dr_max=1.5)


class TestLPFeasibleInstance:
    def test_certified_feasible(self, rng):
        platform = geometric_platform(3, 4.0)
        ts = lp_feasible_instance(rng, platform, 8, stress=0.9)
        assert lp_feasible(ts, platform)
        assert ts.total_utilization == pytest.approx(0.9 * platform.total_speed)

    def test_invalid_stress(self, rng):
        platform = geometric_platform(2, 2.0)
        with pytest.raises(ValueError):
            lp_feasible_instance(rng, platform, 5, stress=1.5)


class TestCampaign:
    def test_grid_points(self):
        c = Campaign(name="t", grid={"a": [1, 2], "b": ["x"]}, replications=3)
        assert len(c.points()) == 2
        assert len(c) == 6

    def test_trials_deterministic(self):
        c = Campaign(name="t", grid={"a": [1, 2]}, replications=2)
        seeds1 = [t.seed for t in c]
        seeds2 = [t.seed for t in c]
        assert seeds1 == seeds2
        assert len(set(seeds1)) == len(seeds1)  # all distinct

    def test_trial_rng_reproducible(self):
        c = Campaign(name="t", grid={"a": [1]}, replications=1)
        trial = next(iter(c))
        assert trial.rng().random() == trial.rng().random()

    def test_invalid(self):
        with pytest.raises(ValueError):
            Campaign(name="t", grid={}, replications=1)
        with pytest.raises(ValueError):
            Campaign(name="t", grid={"a": [1]}, replications=0)

    def test_trial_seed_pinned(self):
        """Regression: trial seeds derive from a *stable* name digest.

        The values below were computed once and pinned; they must never
        change across interpreter launches, platforms, or PYTHONHASHSEED
        settings (the old ``hash(self.name)`` derivation broke all three).
        """
        c = Campaign(name="pinned", grid={"x": (0.5,)}, replications=2, base_seed=2016)
        assert [t.seed for t in c] == [3826787813, 1786818490]
        assert c._trial_seed(1, 3) == 3295661129

    def test_trial_seed_hash_seed_independent(self):
        """Seeds are identical under different PYTHONHASHSEED values."""
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json, sys\n"
            "from repro.workloads.campaigns import Campaign\n"
            "c = Campaign(name='hs', grid={'x': (1, 2)}, replications=2)\n"
            "json.dump([t.seed for t in c], sys.stdout)\n"
        )
        seeds = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            seeds.append(json.loads(out.stdout))
        assert seeds[0] == seeds[1]

    def test_campaign_seed_normalization(self):
        assert campaign_seed(7) == 7
        assert campaign_seed(np.int64(7)) == 7
        g1, g2 = np.random.default_rng(3), np.random.default_rng(3)
        assert campaign_seed(g1) == campaign_seed(g2)  # deterministic draw
        with pytest.raises(TypeError):
            campaign_seed("not a seed")

    def test_utilization_grid(self):
        g = utilization_grid(0.1, 1.0, 10)
        assert len(g) == 10
        assert g[0] == pytest.approx(0.1)
        assert g[-1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            utilization_grid(0.5, 0.4)
        with pytest.raises(ValueError):
            utilization_grid(steps=1)
