"""Tests for sensitivity analysis and breakdown utilization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.acceptance import ff_tester
from repro.analysis.breakdown import breakdown_utilizations
from repro.analysis.sensitivity import (
    critical_tasks,
    ff_acceptance,
    per_task_slack,
    system_scaling_margin,
)
from repro.core.model import Platform, Task, TaskSet
from repro.workloads.platforms import geometric_platform


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestSystemScalingMargin:
    def test_single_machine_closed_form(self):
        # single unit machine at U=0.5: margin exactly 2.0
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        margin = system_scaling_margin(ts(0.25, 0.25), accept, tol=1e-5)
        assert margin == pytest.approx(2.0, abs=1e-4)

    def test_no_margin_at_capacity(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        margin = system_scaling_margin(ts(0.5, 0.5), accept, tol=1e-5)
        assert margin == pytest.approx(1.0, abs=1e-4)

    def test_rejected_base_raises(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        with pytest.raises(ValueError):
            system_scaling_margin(ts(0.8, 0.8), accept)

    def test_empty_taskset_raises(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        with pytest.raises(ValueError):
            system_scaling_margin(TaskSet([]), accept)

    def test_margin_point_verified(self, rng):
        platform = geometric_platform(3, 4.0)
        accept = ff_acceptance(platform)
        for _ in range(10):
            utils = rng.uniform(0.05, 0.4, size=6)
            taskset = ts(*utils)
            margin = system_scaling_margin(taskset, accept, tol=1e-4)
            assert accept(taskset.scaled(margin))
            assert not accept(taskset.scaled(margin + 1e-2))

    def test_rms_margin_below_edf(self, rng):
        platform = geometric_platform(3, 4.0)
        edf = ff_acceptance(platform, "edf")
        rms = ff_acceptance(platform, "rms-ll")
        for _ in range(10):
            utils = rng.uniform(0.05, 0.25, size=6)
            taskset = ts(*utils)
            m_edf = system_scaling_margin(taskset, edf)
            m_rms = system_scaling_margin(taskset, rms)
            # scaling the whole set: LL acceptance implies EDF acceptance
            # per machine, so the margin cannot be larger
            assert m_rms <= m_edf + 1e-3


class TestPerTaskSlack:
    def test_single_task_slack(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        slack = per_task_slack(ts(0.25, 0.25), 0, accept, tol=1e-5)
        # task 0 can grow from 0.25 to 0.75: factor 3
        assert slack == pytest.approx(3.0, abs=1e-3)

    def test_index_validation(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        with pytest.raises(IndexError):
            per_task_slack(ts(0.5), 3, accept)

    def test_critical_tasks_sorted(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        # the big task has the least room to grow
        result = critical_tasks(ts(0.6, 0.1), accept)
        assert result[0].index == 0
        assert result[0].slack < result[1].slack

    def test_names_carried(self):
        accept = ff_acceptance(Platform.from_speeds([1.0]))
        taskset = TaskSet([Task(1, 10, name="hot"), Task(1, 10, name="cold")])
        result = critical_tasks(taskset, accept)
        assert {r.name for r in result} == {"hot", "cold"}


class TestBreakdown:
    def test_ordering_across_tests(self, rng):
        platform = geometric_platform(3, 4.0)
        study = breakdown_utilizations(
            rng,
            platform,
            {
                "edf": ff_tester("edf"),
                "ll": ff_tester("rms-ll"),
            },
            n_tasks=8,
            samples=10,
        )
        for e, l in zip(study.samples["edf"], study.samples["ll"]):
            assert l <= e + 1e-6

    def test_values_in_unit_range(self, rng):
        platform = geometric_platform(2, 2.0)
        study = breakdown_utilizations(
            rng, platform, {"edf": ff_tester("edf")}, n_tasks=6, samples=8
        )
        for v in study.samples["edf"]:
            assert 0.0 < v <= 1.0 + 1e-6

    def test_summary(self, rng):
        platform = geometric_platform(2, 2.0)
        study = breakdown_utilizations(
            rng, platform, {"edf": ff_tester("edf")}, n_tasks=6, samples=8
        )
        s = study.summary("edf")
        assert s.n == 8

    def test_invalid_args(self, rng):
        platform = geometric_platform(2, 2.0)
        with pytest.raises(ValueError):
            breakdown_utilizations(
                rng, platform, {"edf": ff_tester("edf")}, base_fraction=1.5
            )
        with pytest.raises(ValueError):
            breakdown_utilizations(
                rng, platform, {"edf": ff_tester("edf")}, samples=0
            )
