"""Unit tests for repro.core.model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import EPS, Machine, Platform, Task, TaskSet, close, geq, leq


class TestTolerantComparisons:
    def test_leq_exact(self):
        assert leq(1.0, 1.0)
        assert leq(0.5, 1.0)
        assert not leq(1.1, 1.0)

    def test_leq_boundary_noise(self):
        # a hair above, within tolerance: still <=
        assert leq(1.0 + 1e-12, 1.0)
        assert not leq(1.0 + 1e-6, 1.0)

    def test_leq_scales_with_magnitude(self):
        big = 1e12
        assert leq(big * (1 + 1e-12), big)

    def test_geq_mirrors_leq(self):
        assert geq(1.0, 1.0 + 1e-12)
        assert not geq(1.0, 1.0 + 1e-6)

    def test_close(self):
        assert close(1.0, 1.0 + 1e-12)
        assert not close(1.0, 1.001)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_leq_reflexive(self, x):
        assert leq(x, x)
        assert geq(x, x)


class TestTask:
    def test_basic_properties(self):
        t = Task(wcet=2.0, period=10.0, name="t")
        assert t.utilization == pytest.approx(0.2)
        assert t.deadline == 10.0
        assert t.name == "t"

    def test_from_utilization(self):
        t = Task.from_utilization(0.25, 8.0)
        assert t.wcet == pytest.approx(2.0)
        assert t.utilization == pytest.approx(0.25)

    def test_scaled(self):
        t = Task(wcet=2.0, period=10.0).scaled(1.5)
        assert t.wcet == pytest.approx(3.0)
        assert t.period == 10.0

    @pytest.mark.parametrize("wcet", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_wcet(self, wcet):
        with pytest.raises(ValueError):
            Task(wcet=wcet, period=1.0)

    @pytest.mark.parametrize("period", [0.0, -2.0, math.inf, math.nan])
    def test_invalid_period(self, period):
        with pytest.raises(ValueError):
            Task(wcet=1.0, period=period)

    def test_frozen(self):
        t = Task(1, 2)
        with pytest.raises(AttributeError):
            t.wcet = 5  # type: ignore[misc]

    def test_utilization_can_exceed_one(self):
        # legal on fast machines
        assert Task(wcet=3, period=2).utilization == pytest.approx(1.5)


class TestTaskSet:
    def test_sequence_protocol(self, small_taskset):
        assert len(small_taskset) == 3
        assert small_taskset[0].name == "a"
        assert [t.name for t in small_taskset] == ["a", "b", "c"]
        assert isinstance(small_taskset[0:2], TaskSet)
        assert len(small_taskset[0:2]) == 2

    def test_total_utilization(self, small_taskset):
        assert small_taskset.total_utilization == pytest.approx(0.2 + 0.75 + 0.75)

    def test_max_utilization(self, small_taskset):
        assert small_taskset.max_utilization == pytest.approx(0.75)

    def test_empty_aggregates(self):
        ts = TaskSet([])
        assert ts.total_utilization == 0.0
        assert ts.max_utilization == 0.0

    def test_sorted_by_utilization_descending(self, small_taskset):
        s = small_taskset.sorted_by_utilization()
        utils = [t.utilization for t in s]
        assert utils == sorted(utils, reverse=True)

    def test_sort_stability_on_ties(self):
        ts = TaskSet([Task(1, 2, "x"), Task(2, 4, "y"), Task(3, 6, "z")])
        s = ts.sorted_by_utilization()
        assert [t.name for t in s] == ["x", "y", "z"]

    def test_order_by_utilization_ascending(self, small_taskset):
        order = small_taskset.order_by_utilization(descending=False)
        utils = [small_taskset[i].utilization for i in order]
        assert utils == sorted(utils)

    def test_scaled(self, small_taskset):
        s = small_taskset.scaled(2.0)
        assert s.total_utilization == pytest.approx(
            2 * small_taskset.total_utilization
        )
        assert s.periods == small_taskset.periods

    def test_subset_and_without(self, small_taskset):
        sub = small_taskset.subset([2, 0])
        assert [t.name for t in sub] == ["c", "a"]
        rem = small_taskset.without(1)
        assert [t.name for t in rem] == ["a", "c"]

    def test_without_out_of_range(self, small_taskset):
        with pytest.raises(IndexError):
            small_taskset.without(3)

    def test_extended(self, small_taskset):
        bigger = small_taskset.extended([Task(1, 2, "d")])
        assert len(bigger) == 4
        assert bigger[3].name == "d"

    def test_equality_and_hash(self, small_taskset):
        clone = TaskSet(list(small_taskset))
        assert clone == small_taskset
        assert hash(clone) == hash(small_taskset)

    def test_rejects_non_tasks(self):
        with pytest.raises(TypeError):
            TaskSet([1, 2])  # type: ignore[list-item]


class TestMachine:
    def test_valid(self):
        m = Machine(2.0, "fast")
        assert m.speed == 2.0

    @pytest.mark.parametrize("speed", [0.0, -1.0, math.inf])
    def test_invalid_speed(self, speed):
        with pytest.raises(ValueError):
            Machine(speed)


class TestPlatform:
    def test_sorted_on_construction(self):
        p = Platform.from_speeds([3.0, 1.0, 2.0])
        assert p.speeds == (1.0, 2.0, 3.0)

    def test_aggregates(self):
        p = Platform.from_speeds([1.0, 2.0, 4.0])
        assert p.total_speed == pytest.approx(7.0)
        assert p.fastest_speed == 4.0
        assert p.slowest_speed == 1.0
        assert p.heterogeneity_ratio == pytest.approx(4.0)

    def test_identical(self):
        p = Platform.identical(3, 2.0)
        assert p.speeds == (2.0, 2.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Platform([])

    def test_identical_zero_rejected(self):
        with pytest.raises(ValueError):
            Platform.identical(0)

    def test_scaled(self):
        p = Platform.from_speeds([1.0, 2.0]).scaled(3.0)
        assert p.speeds == (3.0, 6.0)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            Platform.from_speeds([1.0]).scaled(0.0)

    def test_slice_returns_platform(self):
        p = Platform.from_speeds([1.0, 2.0, 3.0])
        assert isinstance(p[0:2], Platform)

    def test_rejects_non_machines(self):
        with pytest.raises(TypeError):
            Platform([1.0])  # type: ignore[list-item]

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10
        )
    )
    def test_total_speed_invariant_under_input_order(self, speeds):
        a = Platform.from_speeds(speeds)
        b = Platform.from_speeds(list(reversed(speeds)))
        assert a.total_speed == pytest.approx(b.total_speed)
        assert a.speeds == b.speeds
