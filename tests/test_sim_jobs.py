"""Tests for job sources and policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import Task
from repro.sim.jobs import PeriodicSource, SporadicSource
from repro.sim.policies import EDFPolicy, RMSPolicy, policy_by_name


class TestPeriodicSource:
    def test_release_times(self):
        src = PeriodicSource(Task(1, 5), 0)
        jobs = [src.pop() for _ in range(4)]
        assert [j.release for j in jobs] == [0.0, 5.0, 10.0, 15.0]
        assert [j.job_id for j in jobs] == [0, 1, 2, 3]

    def test_offset(self):
        src = PeriodicSource(Task(1, 5), 0, offset=2.0)
        assert src.pop().release == 2.0
        assert src.peek() == 7.0

    def test_deadline_and_work(self):
        src = PeriodicSource(Task(3, 8), 2)
        job = src.pop()
        assert job.task_index == 2
        assert job.deadline == 8.0
        assert job.work == 3.0
        assert job.remaining == 3.0
        assert not job.completed

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSource(Task(1, 5), 0, offset=-1.0)


class TestSporadicSource:
    def test_gaps_at_least_period(self):
        rng = np.random.default_rng(3)
        src = SporadicSource(Task(1, 5), 0, rng, jitter=0.5)
        releases = [src.pop().release for _ in range(50)]
        gaps = np.diff(releases)
        assert (gaps >= 5.0 - 1e-12).all()
        assert gaps.max() > 5.0  # jitter actually adds something

    def test_zero_jitter_is_periodic(self):
        rng = np.random.default_rng(3)
        src = SporadicSource(Task(1, 5), 0, rng, jitter=0.0)
        releases = [src.pop().release for _ in range(5)]
        assert releases == [0.0, 5.0, 10.0, 15.0, 20.0]

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            SporadicSource(Task(1, 5), 0, np.random.default_rng(0), jitter=-1.0)


class TestPolicies:
    def test_edf_orders_by_deadline(self):
        tasks = [Task(1, 10), Task(1, 5)]
        p = EDFPolicy()
        src0 = PeriodicSource(tasks[0], 0)
        src1 = PeriodicSource(tasks[1], 1)
        j0, j1 = src0.pop(), src1.pop()
        assert p.key(j1, tasks) < p.key(j0, tasks)  # deadline 5 < 10

    def test_rms_static_priority(self):
        tasks = [Task(1, 10), Task(1, 5)]
        p = RMSPolicy()
        # a later job of the short-period task still beats the long one
        src0 = PeriodicSource(tasks[0], 0)
        src1 = PeriodicSource(tasks[1], 1)
        j0 = src0.pop()
        src1.pop()
        j1_second = src1.pop()  # release 5, deadline 10 == j0's deadline
        assert p.key(j1_second, tasks) < p.key(j0, tasks)

    def test_lookup(self):
        assert policy_by_name("edf").name == "edf"
        assert policy_by_name("rms").name == "rms"
        with pytest.raises(KeyError):
            policy_by_name("fifo")
