"""Unit and property tests for repro.core.bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    ADMISSION_TESTS,
    EDFUtilizationTest,
    RMSHyperbolicTest,
    RMSLiuLaylandTest,
    RMSResponseTimeTest,
    admission_test,
    edf_utilization_feasible,
    liu_layland_bound,
    rms_hyperbolic_feasible,
    rms_liu_layland_feasible,
    rms_rta_feasible,
)
from repro.core.model import Task

LN2 = math.log(2)


def tasks_from_utils(utils, period=10.0):
    return [Task.from_utilization(u, period * (i + 1)) for i, u in enumerate(utils)]


class TestLiuLaylandBound:
    def test_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2**0.5 - 1))
        assert liu_layland_bound(3) == pytest.approx(3 * (2 ** (1 / 3) - 1))

    def test_zero_tasks(self):
        assert liu_layland_bound(0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            liu_layland_bound(-1)

    def test_monotone_decreasing_to_ln2(self):
        prev = liu_layland_bound(1)
        for n in range(2, 200):
            cur = liu_layland_bound(n)
            assert cur < prev
            prev = cur
        assert prev > LN2
        assert prev == pytest.approx(LN2, abs=5e-3)


class TestEDFUtilizationFeasible:
    def test_under_capacity(self):
        assert edf_utilization_feasible(tasks_from_utils([0.4, 0.5]), 1.0)

    def test_exactly_at_capacity(self):
        assert edf_utilization_feasible(tasks_from_utils([0.5, 0.5]), 1.0)

    def test_over_capacity(self):
        assert not edf_utilization_feasible(tasks_from_utils([0.6, 0.5]), 1.0)

    def test_scales_with_speed(self):
        tasks = tasks_from_utils([0.9, 0.9])
        assert not edf_utilization_feasible(tasks, 1.0)
        assert edf_utilization_feasible(tasks, 2.0)

    def test_empty(self):
        assert edf_utilization_feasible([], 0.5)


class TestRMSLiuLayland:
    def test_single_task_full_machine(self):
        assert rms_liu_layland_feasible(tasks_from_utils([1.0]), 1.0)

    def test_two_tasks_bound(self):
        bound2 = 2 * (2**0.5 - 1)  # ~0.828
        assert rms_liu_layland_feasible(tasks_from_utils([bound2 / 2, bound2 / 2]), 1.0)
        assert not rms_liu_layland_feasible(tasks_from_utils([0.45, 0.45]), 1.0)

    def test_empty(self):
        assert rms_liu_layland_feasible([], 1.0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.3), min_size=1, max_size=8),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_ll_implies_edf(self, utils, speed):
        # LL bound <= 1, so LL acceptance implies EDF acceptance
        tasks = tasks_from_utils(utils)
        if rms_liu_layland_feasible(tasks, speed):
            assert edf_utilization_feasible(tasks, speed)


class TestRMSHyperbolic:
    def test_dominates_liu_layland(self, rng):
        # every LL-accepted set is hyperbolic-accepted
        for _ in range(200):
            n = int(rng.integers(1, 7))
            utils = rng.uniform(0.02, 0.5, size=n)
            tasks = tasks_from_utils(utils)
            speed = float(rng.uniform(0.5, 2.0))
            if rms_liu_layland_feasible(tasks, speed):
                assert rms_hyperbolic_feasible(tasks, speed)

    def test_accepts_beyond_ll(self):
        # above the LL bound but within hyperbolic
        tasks = tasks_from_utils([0.5, 0.4])  # sum=0.9 > 0.828; prod=1.5*1.4=2.1>2 no
        assert not rms_hyperbolic_feasible(tasks, 1.0)
        # asymmetric pair: prod = 1.6 * 1.25 = 2.0 exactly, sum = 0.85 > 0.828
        tasks = tasks_from_utils([0.6, 0.25])
        assert rms_hyperbolic_feasible(tasks, 1.0)
        assert not rms_liu_layland_feasible(tasks, 1.0)

    def test_early_exit_on_large_products(self):
        tasks = tasks_from_utils([5.0, 5.0, 5.0])
        assert not rms_hyperbolic_feasible(tasks, 1.0)


class TestRMSRTA:
    def test_classic_feasible_trio(self):
        # Liu & Layland's style example: U=0.725 < objectively schedulable
        tasks = [Task(1, 4), Task(2, 8), Task(1.5, 12)]
        assert rms_rta_feasible(tasks, 1.0)

    def test_dominates_hyperbolic(self, rng):
        for _ in range(150):
            n = int(rng.integers(1, 6))
            utils = rng.uniform(0.05, 0.6, size=n)
            tasks = tasks_from_utils(utils)
            if rms_hyperbolic_feasible(tasks, 1.0):
                assert rms_rta_feasible(tasks, 1.0)

    def test_harmonic_full_utilization(self):
        # harmonic periods: RMS achieves U = 1.0, RTA must accept
        tasks = [Task(2, 4), Task(2, 8), Task(2, 8)]  # U = .5+.25+.25
        assert rms_rta_feasible(tasks, 1.0)
        assert not rms_liu_layland_feasible(tasks, 1.0)

    def test_infeasible_overload(self):
        assert not rms_rta_feasible([Task(3, 4), Task(2, 5)], 1.0)


class TestAdmissionStates:
    @pytest.mark.parametrize("name", sorted(ADMISSION_TESTS))
    def test_incremental_matches_oneshot(self, name, rng):
        """admits()/add() must agree with the one-shot set test."""
        test = admission_test(name)
        for _ in range(60):
            speed = float(rng.uniform(0.5, 3.0))
            state = test.open(speed)
            accepted: list[Task] = []
            for _ in range(int(rng.integers(1, 8))):
                t = Task.from_utilization(
                    float(rng.uniform(0.05, 0.8)), float(rng.uniform(2, 50))
                )
                if state.admits(t):
                    state.add(t)
                    accepted.append(t)
                    assert test.feasible(accepted, speed), (
                        f"{name}: incremental accepted a set the one-shot "
                        f"test rejects"
                    )
            assert state.count == len(accepted)
            assert state.load == pytest.approx(
                sum(t.utilization for t in accepted)
            )

    @pytest.mark.parametrize("name", sorted(ADMISSION_TESTS))
    def test_admits_does_not_mutate(self, name):
        test = admission_test(name)
        state = test.open(1.0)
        t = Task.from_utilization(0.3, 10)
        state.admits(t)
        assert state.count == 0
        assert state.load == 0.0

    def test_open_invalid_speed(self):
        with pytest.raises(ValueError):
            EDFUtilizationTest().open(0.0)

    def test_registry_lookup(self):
        assert isinstance(admission_test("edf"), EDFUtilizationTest)
        assert isinstance(admission_test("rms-ll"), RMSLiuLaylandTest)
        assert isinstance(admission_test("rms-hyperbolic"), RMSHyperbolicTest)
        assert isinstance(admission_test("rms-rta"), RMSResponseTimeTest)
        with pytest.raises(KeyError):
            admission_test("nope")

    def test_edf_state_boundary(self):
        state = EDFUtilizationTest().open(1.0)
        state.add(Task.from_utilization(0.5, 10))
        assert state.admits(Task.from_utilization(0.5, 10))
        assert not state.admits(Task.from_utilization(0.5001, 10))

    def test_rms_ll_state_count_dependence(self):
        state = RMSLiuLaylandTest().open(1.0)
        # first task: bound is 1.0
        assert state.admits(Task.from_utilization(0.99, 10))
        state.add(Task.from_utilization(0.5, 10))
        # second task: bound 2(sqrt2-1) ~ 0.828 -> 0.5 + 0.33 > bound
        assert not state.admits(Task.from_utilization(0.33, 10))
        assert state.admits(Task.from_utilization(0.32, 10))


class TestBoundaryAgreement:
    """Regression for the incremental-vs-one-shot float-drift bug.

    Before the compensated-accumulation fix, the incremental states
    summed utilizations with plain ``+=`` while the one-shot set tests
    used ``math.fsum``; on instances engineered *onto* an admission
    threshold the two paths could disagree.  These sweeps pin the
    contract ``state.admits(t) == test.feasible(accepted + [t], speed)``
    exactly, for all four admission tests, on every side of the
    tolerance window.
    """

    #: relative nudges: exact threshold, inside the EPS window, outside
    NUDGES = (0.0, -5e-10, 5e-10, -2e-9, 2e-9, -8e-9, 8e-9)

    @staticmethod
    def _assert_paths_agree(test, tasks, speed):
        state = test.open(speed)
        accepted = []
        for i, task in enumerate(tasks):
            incremental = state.admits(task)
            oneshot = test.feasible(accepted + [task], speed)
            assert incremental == oneshot, (
                f"{test.name} at speed {speed}: admits(task {i}) = "
                f"{incremental} but one-shot = {oneshot} "
                f"(utils so far {[t.utilization for t in accepted]}, "
                f"candidate {task.utilization})"
            )
            if incremental:
                state.add(task)
                accepted.append(task)
        total = math.fsum(t.utilization for t in accepted)
        assert state.load == pytest.approx(total, rel=0, abs=1e-12 + 1e-9 * total)

    @staticmethod
    def _utils_totalling(target, n):
        """n decreasing utilizations summing (via fsum-compatible floats)
        to ~target, then exactly rescaled."""
        raw = [2.0 ** (-i) for i in range(n)]
        scale = target / math.fsum(raw)
        return [u * scale for u in raw]

    @pytest.mark.parametrize("name", sorted(ADMISSION_TESTS))
    @pytest.mark.parametrize("nudge", NUDGES)
    @pytest.mark.parametrize("speed", (1.0, 0.75))
    def test_threshold_nudged_sets(self, name, nudge, speed):
        test = ADMISSION_TESTS[name]
        for n in (1, 3, 6):
            # onto the EDF capacity
            utils = self._utils_totalling(speed * (1.0 + nudge), n)
            self._assert_paths_agree(test, tasks_from_utils(utils), speed)
            # onto the Liu-Layland bound
            target = liu_layland_bound(n) * speed * (1.0 + nudge)
            utils = self._utils_totalling(target, n)
            self._assert_paths_agree(test, tasks_from_utils(utils), speed)
            # onto the hyperbolic product = 2 (equal utilizations)
            u = speed * ((2.0 * (1.0 + nudge)) ** (1.0 / n) - 1.0)
            self._assert_paths_agree(test, tasks_from_utils([u] * n), speed)

    def test_hyperbolic_early_exit_window(self):
        """Pinned instance from the historical early-exit bug: the
        product lands at 2 + 1.5e-9 — beyond the old absolute-EPS early
        exit but inside the relative ``leq`` window the final comparison
        uses.  Both evaluation paths must accept."""
        u = math.sqrt(2.0 + 1.5e-9) - 1.0
        tasks = [Task(wcet=u * 8.0, period=8.0), Task(wcet=u * 16.0, period=16.0)]
        prod = 1.0
        for t in tasks:
            prod *= t.utilization + 1.0
        assert 2.0 + 1e-9 < prod <= 2.0 + 2e-9  # genuinely in the gap
        assert rms_hyperbolic_feasible(tasks, 1.0)
        test = RMSHyperbolicTest()
        state = test.open(1.0)
        assert state.admits(tasks[0])
        state.add(tasks[0])
        assert state.admits(tasks[1])
        self._assert_paths_agree(test, tasks, 1.0)

    def test_compensated_accumulation_beats_plain_sum(self):
        """One unit task followed by 500 tiny ones: plain ``+=`` absorbs
        every 1e-16 increment into 1.0; the Neumaier state must track the
        true total (and thus match the one-shot fsum path)."""
        state = EDFUtilizationTest().open(2.0)
        state.add(Task.from_utilization(1.0, 10))
        tiny = Task.from_utilization(1e-16, 10)
        naive = 1.0
        for _ in range(500):
            state.add(tiny)
            naive += 1e-16  # stays exactly 1.0
        assert naive == 1.0
        expected = math.fsum([1.0] + [1e-16] * 500)
        assert expected >= 1.0 + 4.9e-14
        assert state.load == pytest.approx(expected, rel=1e-12)
        assert state.load > 1.0

    def test_all_tests_agree_on_random_boundary_rationals(self):
        """Dyadic-rational utilization grids (exactly representable)
        summed onto the capacity from both sides."""
        for name, test in sorted(ADMISSION_TESTS.items()):
            for utils in (
                [0.5, 0.25, 0.125, 0.125],  # sums to exactly 1.0
                [0.5, 0.25, 0.125, 0.0625, 0.0625],  # exactly 1.0, n=5
                [0.5, 0.5, 2.0 ** -52],  # one ulp over
            ):
                self._assert_paths_agree(test, tasks_from_utils(utils), 1.0)


class TestLintDrivenAccumulationFixes:
    """Regressions for the REP001/REP004 findings `repro lint` flagged.

    Each test pins one fix: the DFS backtracking accumulators in the
    exact baselines, the incremental load state of the demand-bound
    admission tests, the fsum'd RTA interference sum, the multiplicative
    demand-point grid, and the LP feasibility predicate routed through
    ``tol_leq``.  Where possible the instance is engineered so the
    pre-fix code gives a *different* float, not just an uglier one.
    """

    def test_neumaier_backtracking_roundtrip(self):
        """DFS-style add/remove cycles must not walk the total away.

        ``1.0 + 1e-16`` absorbs (rounds back to 1.0) but ``1.0 - 1e-16``
        does not, so a plain ``+=``/``-=`` pair drifts the load down one
        ulp per probe; 1000 probes move it ~1e-13 — far beyond EPS of a
        boundary admission check.  The compensated accumulator the exact
        baselines now use must return to exactly 1.0.
        """
        from repro.core.bounds import _NeumaierSum

        naive = 1.0
        acc = _NeumaierSum()
        acc.add(1.0)
        for _ in range(1000):
            acc.add(1e-16)
            acc.add(-1e-16)
            naive += 1e-16  # absorbed: stays 1.0
            naive -= 1e-16  # not absorbed: lands one ulp below 1.0
        assert naive != 1.0  # the bug this guards against
        assert acc.total == 1.0

    @pytest.mark.parametrize("name", ["edf-dbf", "edf-dbf-approx"])
    def test_dbf_state_compensated_load(self, name):
        """The demand-bound states' load tracking mirrors the fsum total
        (they admitted via QPA but still tracked load with plain +=)."""
        test = ADMISSION_TESTS[name]
        state = test.open(2.0)
        state.add(Task.from_utilization(1.0, 16.0))
        tiny = Task.from_utilization(1e-16, 16.0)
        for _ in range(500):
            state.add(tiny)
        expected = math.fsum([1.0] + [1e-16] * 500)
        assert expected > 1.0  # plain += would report exactly 1.0
        assert state.load == pytest.approx(expected, rel=1e-12)
        assert state.load > 1.0

    def test_exact_backtracking_boundary_instance(self):
        """A dyadic instance solvable only in the exact packing: every
        machine must be filled to precisely its speed, after the DFS has
        probed (and backtracked from) the wrong arrangements first."""
        from repro.baselines.exact import exact_partitioned_edf_feasible
        from repro.core.model import Platform, TaskSet

        tasks = tasks_from_utils([0.75, 0.5, 0.25, 0.25, 0.125, 0.125])
        platform = Platform.from_speeds([1.0, 1.0])
        assert exact_partitioned_edf_feasible(TaskSet(tasks), platform) is True
        over = tasks_from_utils([0.75, 0.5, 0.25, 0.25, 0.125, 0.125 + 2**-20])
        assert exact_partitioned_edf_feasible(TaskSet(over), platform) is False

    def test_rta_interference_fsum(self):
        """200 tiny higher-priority contributions of 1e-18 each: plain
        ``+=`` absorbs all of them into the base response time 1.0; the
        fsum'd interference sum must surface the collective 2e-16."""
        from repro.core.rta import rms_response_times

        tasks = [Task(wcet=1e-18, period=1.0) for _ in range(200)]
        tasks.append(Task(wcet=1.0, period=10.0))
        rt = rms_response_times(tasks, 1.0)
        assert rt is not None
        expected = math.fsum([1.0] + [1e-18] * 200)
        assert expected > 1.0
        assert rt[-1] == pytest.approx(expected, rel=1e-12)
        assert rt[-1] > 1.0

    def test_demand_points_exact_grid(self):
        """Step points are generated as ``d + k*p`` directly; the old
        additive walk (``t += p``) accretes one rounding per step and
        drifts off the true grid for non-representable periods."""
        from repro.core.dbf import demand_points

        p = 0.1  # not exactly representable in binary
        pts = demand_points([Task(wcet=0.01, period=p, deadline=p)], 1000.0)
        drifted = 0
        t = p
        for k, point in enumerate(pts):
            assert point == p + k * p  # exact, no tolerance
            if point != t:
                drifted += 1
            t += p
        assert drifted > 0  # the additive walk really does leave the grid

    def test_lp_feasible_routes_through_tol_leq(self):
        """stress == 1 + tol/2 is feasible, 1 + 3*tol is not, and the
        verdict is a plain bool (numpy scalars must not leak out)."""
        from repro.core.lp import LP_TOL, LPSolution

        onto = LPSolution(u=None, stress=1.0 + 0.5 * LP_TOL)
        over = LPSolution(u=None, stress=1.0 + 3.0 * LP_TOL)
        assert onto.feasible is True
        assert over.feasible is False
