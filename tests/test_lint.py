"""Tests for :mod:`repro.lint` — rules, noqa, baseline, reporters, CLI.

Layers covered:

* fixture snippets under ``tests/fixtures/lint/`` with expected finding
  lists declared in a ``# lint-expect:`` header, linted under a virtual
  path inside each rule's default scope;
* the fault-injection self-test (one planted violation per rule, caught
  at the right file/line);
* the meta-test: ``repro lint src/`` on this very repository is clean
  modulo the committed baseline;
* unit tests for suppressions, baseline fingerprint matching, the three
  reporters (including SARIF 2.1.0 shape), selection, and the CLI.
"""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
    run_self_test,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.engine import LintResult
from repro.lint.findings import Finding
from repro.lint.noqa import NoqaScanner
from repro.lint.registry import resolve_selection
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.selftest import PLANTED_CASES

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

_EXPECT_RE = re.compile(r"(REP\d{3})@(\d+)")
_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")


def _fixture_cases():
    for path in sorted(FIXTURES.glob("*.py")):
        source = path.read_text()
        header = source.splitlines()[:2]
        vpath = _PATH_RE.search(header[0]).group(1)
        expect = sorted(
            (rule, int(line)) for rule, line in _EXPECT_RE.findall(header[1])
        )
        yield pytest.param(source, vpath, expect, id=path.stem)


class TestFixtures:
    """Every fixture produces exactly its declared finding list."""

    @pytest.mark.parametrize("source,vpath,expect", list(_fixture_cases()))
    def test_fixture(self, source, vpath, expect):
        findings = lint_source(source, vpath, LintConfig())
        got = sorted((f.rule, f.line) for f in findings)
        assert got == expect

    def test_fixture_dir_is_nonempty(self):
        # one fixture per rule plus the noqa and clean modules
        assert len(list(FIXTURES.glob("*.py"))) >= len(all_rules()) + 2


class TestSelfTest:
    """Fault injection: plant one violation per rule, expect detection."""

    def test_all_planted_violations_detected(self):
        result = run_self_test()
        assert result.ok, result.summary()

    def test_every_rule_has_a_planted_case(self):
        assert {c.rule for c in PLANTED_CASES} == set(all_rules())

    def test_detects_a_silently_broken_rule(self):
        """If a rule stops firing, the self-test must fail — that is its
        entire reason to exist."""
        case = next(c for c in PLANTED_CASES if c.rule == "REP004")
        # "fix" the planted module: the violation disappears, so a run
        # against this source must NOT satisfy the expectation
        fixed = case.source.replace("load += u", "load = load + u")
        findings = lint_source(fixed, case.path, LintConfig())
        assert not any(
            f.rule == case.rule and f.line == case.line for f in findings
        )


class TestMetaLint:
    """This repository holds itself to the discipline it ships."""

    def test_src_is_clean_modulo_committed_baseline(self):
        config = LintConfig(
            root=REPO_ROOT,
            baseline_path=REPO_ROOT / "lint-baseline.json",
        )
        result = lint_paths([REPO_ROOT / "src"], config)
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        assert result.stale_baseline == [], "\n".join(
            e.render() for e in result.stale_baseline
        )

    def test_no_unused_suppressions_in_src(self):
        config = LintConfig(root=REPO_ROOT)
        result = lint_paths([REPO_ROOT / "src"], config)
        assert result.unused_suppressions == [], "\n".join(
            s.render() for s in result.unused_suppressions
        )


class TestNoqa:
    def test_line_suppression_scoped_to_code(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa[REP001]\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_bare_noqa_suppresses_all_rules(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa[REP002]\n"
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_file_level_pragma(self):
        src = (
            "# repro: noqa-file[REP001]\n"
            "def f(a: float, b: float):\n"
            "    return a <= b\n"
            "def g(a: float, b: float):\n"
            "    return a >= b\n"
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_docstring_mention_is_not_a_suppression(self):
        src = (
            '"""Docs may say: use `# repro: noqa[REP001]` to silence."""\n'
            "def f(a: float, b: float):\n"
            "    return a <= b\n"
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_unused_suppression_reported(self):
        scanner = NoqaScanner("x.py", "a = 1  # repro: noqa[REP001]\n")
        assert scanner.filter([]) == []
        assert len(scanner.unused) == 1
        assert scanner.unused[0].codes == ("REP001",)

    def test_used_suppression_not_reported(self):
        scanner = NoqaScanner("x.py", "a = b <= c  # repro: noqa[REP001]\n")
        finding = Finding(
            path="x.py", line=1, col=5, rule="REP001", message="m", snippet="s"
        )
        assert scanner.filter([finding]) == []
        assert scanner.unused == []


class TestBaseline:
    def _finding(self, path="src/repro/core/x.py", line=3, rule="REP001",
                 snippet="return a <= b"):
        return Finding(
            path=path, line=line, col=5, rule=rule, message="m", snippet=snippet
        )

    def test_fingerprint_survives_line_drift(self):
        baseline = Baseline([BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )])
        moved = self._finding(line=40)  # same code, different line
        assert baseline.absorb([moved]) == []
        assert baseline.stale == []

    def test_changed_line_resurfaces(self):
        baseline = Baseline([BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )])
        changed = self._finding(snippet="return a <= b * 2.0")
        assert baseline.absorb([changed]) == [changed]
        assert len(baseline.stale) == 1

    def test_multiset_matching(self):
        entry = BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )
        baseline = Baseline([entry, entry])
        f = self._finding()
        # two entries absorb two findings; the third stays active
        assert baseline.absorb([f, f, f]) == [f]

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([self._finding()])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert [e.fingerprint for e in loaded.entries] == [
            e.fingerprint for e in baseline.entries
        ]

    def test_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestSelection:
    def test_select_restricts(self):
        src = (
            "import random\n"
            "def f(a: float, b: float):\n"
            "    random.random()\n"
            "    return a <= b\n"
        )
        cfg = LintConfig(select=("REP002",))
        findings = lint_source(src, "src/repro/core/x.py", cfg)
        assert [f.rule for f in findings] == ["REP002"]

    def test_ignore_drops(self):
        src = "def f(a: float, b: float):\n    return a <= b\n"
        cfg = LintConfig(ignore=("REP001",))
        assert lint_source(src, "src/repro/core/x.py", cfg) == []

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="REP999"):
            resolve_selection(("REP999",), None)

    def test_rules_skip_tests_paths(self):
        src = "def f(a: float, b: float):\n    return a <= b\n"
        assert lint_source(src, "tests/test_x.py") == []

    def test_path_scoping(self):
        # REP001 is scoped to core/ and baselines/: the same source in
        # the service package is out of scope
        src = "def f(a: float, b: float):\n    return a <= b\n"
        assert lint_source(src, "src/repro/service/x.py") == []


class TestReporters:
    def _result(self):
        result = LintResult(files=2)
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=5, rule="REP001",
            message="bare float comparison", snippet="return a <= b",
        )]
        return result

    def test_text_format(self):
        out = render_text(self._result())
        assert "src/repro/core/x.py:3:5: REP001" in out
        assert "1 finding(s) in 2 file(s)" in out

    def test_json_format(self):
        data = json.loads(render_json(self._result()))
        assert data["files"] == 2
        assert data["findings"][0]["rule"] == "REP001"
        assert data["findings"][0]["line"] == 3

    def test_sarif_shape(self):
        """The SARIF 2.1.0 skeleton GitHub code scanning requires."""
        doc = json.loads(render_sarif(self._result()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {r["id"] for r in driver["rules"]} == set(all_rules())
        for rule_meta in driver["rules"]:
            assert rule_meta["shortDescription"]["text"]
            assert rule_meta["fullDescription"]["text"]
        (res,) = run["results"]
        assert res["ruleId"] == "REP001"
        assert res["ruleIndex"] == 0
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"
        assert loc["region"]["startLine"] == 3
        assert loc["region"]["startColumn"] >= 1

    def test_sarif_rule_index_consistent(self):
        doc = json.loads(render_sarif(self._result()))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        res = run["results"][0]
        assert rules[res["ruleIndex"]]["id"] == res["ruleId"]


class TestCLI:
    def _write_violation(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(a: float, b: float):\n    return a <= b\n"
        )
        return tmp_path

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        code = main([
            "lint", str(root / "src"), "--root", str(root), "--no-baseline",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        code = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
        assert code == 0

    def test_write_then_use_baseline(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        baseline = root / "lint-baseline.json"
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--write-baseline", str(baseline),
        ]) == 0
        data = json.loads(baseline.read_text())
        assert data["version"] == 1
        assert len(data["findings"]) == 1
        # grandfathered: the same tree now lints clean
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline),
        ]) == 0

    def test_stale_baseline_fails_with_show_unused(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        baseline = root / "lint-baseline.json"
        main([
            "lint", str(root / "src"), "--root", str(root),
            "--write-baseline", str(baseline),
        ])
        (root / "src" / "repro" / "core" / "bad.py").write_text("x = 1\n")
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline),
        ]) == 0
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline), "--show-unused-noqa",
        ]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_unused_noqa_reported_via_flag(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1  # repro: noqa[REP001]\n")
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        ]) == 0
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--show-unused-noqa",
        ]) == 1
        assert "unused noqa" in capsys.readouterr().out

    def test_sarif_output_parses(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        main([
            "lint", str(root / "src"), "--root", str(root), "--no-baseline",
            "--format", "sarif",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_self_test_flag(self, capsys):
        assert main(["lint", "--self-test"]) == 0
        assert "self-test OK" in capsys.readouterr().out

    def test_unknown_rule_exit_two(self, tmp_path, capsys):
        assert main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--select", "REP999",
        ]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def f(:\n")
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        ]) == 1
        assert "parse error" in capsys.readouterr().out


class TestRuleEdgeCases:
    """Targeted cases beyond the fixture files."""

    def test_rep001_assert_exempt(self):
        src = textwrap.dedent(
            """\
            def f(a: float, b: float):
                assert a <= b
                return a
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_rep002_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src, "src/repro/workloads/x.py") == []

    def test_rep002_applies_everywhere_outside_tests(self):
        src = "import random\nrandom.seed(0)\n"
        findings = lint_source(src, "src/repro/analysis/x.py")
        assert [f.rule for f in findings] == ["REP002"]

    def test_rep003_perf_counter_allowed(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert lint_source(src, "src/repro/experiments/x.py") == []

    def test_rep004_nested_function_not_loop(self):
        # a += inside a function defined inside a loop body is its own
        # scope; the accumulation heuristic must not cross the boundary
        src = textwrap.dedent(
            """\
            def outer(items):
                for item in items:
                    def inner(base: float, delta: float) -> float:
                        base += delta
                        return base
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_rep005_sorted_generator_ok(self):
        src = "def f(s: set):\n    return sorted(x for x in s)\n"
        assert lint_source(src, "src/repro/io_/x.py") == []

    def test_rep006_lock_wrapped_ok(self):
        src = textwrap.dedent(
            """\
            class Cache:
                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """
        )
        assert lint_source(src, "src/repro/service/x.py") == []

    def test_rep006_scoped_to_service(self):
        src = textwrap.dedent(
            """\
            class State:
                def bump(self):
                    self._count = 1
            """
        )
        assert lint_source(src, "src/repro/runner/x.py") == []
