"""Tests for :mod:`repro.lint` — rules, noqa, baseline, reporters, CLI.

Layers covered:

* fixture snippets under ``tests/fixtures/lint/`` with expected finding
  lists declared in a ``# lint-expect:`` header, linted under a virtual
  path inside each rule's default scope;
* the fault-injection self-test (one planted violation per rule, caught
  at the right file/line);
* the meta-test: ``repro lint src/`` on this very repository is clean
  modulo the committed baseline;
* unit tests for suppressions, baseline fingerprint matching, the
  reporters (text, JSON, SARIF 2.1.0, GitHub workflow commands),
  selection, and the CLI.
"""

from __future__ import annotations

import ast
import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    LintConfig,
    all_rules,
    lint_changed,
    lint_paths,
    lint_source,
    lint_sources,
    run_self_test,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.callgraph import IMPURE_TAGS, ProjectGraph
from repro.lint.engine import LintResult, attach_parents
from repro.lint.findings import Finding
from repro.lint.noqa import NoqaScanner
from repro.lint.registry import FileContext, ProgramRule, resolve_selection
from repro.lint.reporters import (
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.selftest import PLANTED_CASES, PLANTED_PROGRAMS
from repro.lint.summaries import build_module_summary

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
PROGRAM_FIXTURES = FIXTURES / "programs"

_EXPECT_RE = re.compile(r"(REP\d{3})@(\d+)")
_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")


def _fixture_cases():
    for path in sorted(FIXTURES.glob("*.py")):
        source = path.read_text()
        header = source.splitlines()[:2]
        vpath = _PATH_RE.search(header[0]).group(1)
        expect = sorted(
            (rule, int(line)) for rule, line in _EXPECT_RE.findall(header[1])
        )
        yield pytest.param(source, vpath, expect, id=path.stem)


def _program_fixture_cases():
    """Each subdirectory of ``programs/`` is one multi-module program."""
    for case_dir in sorted(p for p in PROGRAM_FIXTURES.iterdir() if p.is_dir()):
        files: dict[str, str] = {}
        expect: list[tuple[str, str, int]] = []
        for path in sorted(case_dir.glob("*.py")):
            source = path.read_text()
            header = source.splitlines()[:2]
            vpath = _PATH_RE.search(header[0]).group(1)
            files[vpath] = source
            expect.extend(
                (rule, vpath, int(line))
                for rule, line in _EXPECT_RE.findall(header[1])
            )
        yield pytest.param(files, sorted(expect), id=case_dir.name)


class TestFixtures:
    """Every fixture produces exactly its declared finding list."""

    @pytest.mark.parametrize("source,vpath,expect", list(_fixture_cases()))
    def test_fixture(self, source, vpath, expect):
        findings = lint_source(source, vpath, LintConfig())
        got = sorted((f.rule, f.line) for f in findings)
        assert got == expect

    def test_fixture_dir_is_nonempty(self):
        file_rules = [
            r for r in all_rules().values() if not isinstance(r, ProgramRule)
        ]
        program_rules = [
            r for r in all_rules().values() if isinstance(r, ProgramRule)
        ]
        # one single-file fixture per per-file rule plus the noqa and
        # clean modules ...
        assert len(list(FIXTURES.glob("*.py"))) >= len(file_rules) + 2
        # ... and at least one multi-module program per program rule
        assert len(list(PROGRAM_FIXTURES.iterdir())) >= len(program_rules)


class TestProgramFixtures:
    """Multi-module programs produce exactly their declared findings."""

    @pytest.mark.parametrize("files,expect", list(_program_fixture_cases()))
    def test_program_fixture(self, files, expect):
        findings = lint_sources(files, LintConfig())
        got = sorted((f.rule, f.path, f.line) for f in findings)
        assert got == expect

    def test_single_module_alone_misses_the_program_finding(self):
        """The REP007 fixture's violation is undetectable per-file — the
        proof that the rule is genuinely interprocedural."""
        case_dir = PROGRAM_FIXTURES / "tolerance_escape"
        source = (case_dir / "chk.py").read_text()
        findings = lint_source(source, "src/repro/core/chk.py", LintConfig())
        assert [f for f in findings if f.rule == "REP007"] == []


class TestSelfTest:
    """Fault injection: plant one violation per rule, expect detection."""

    def test_all_planted_violations_detected(self):
        result = run_self_test()
        assert result.ok, result.summary()

    def test_every_rule_has_a_planted_case(self):
        planted = {c.rule for c in PLANTED_CASES}
        planted |= {p.rule for p in PLANTED_PROGRAMS}
        assert planted == set(all_rules())

    def test_program_cases_span_at_least_two_modules(self):
        for program in PLANTED_PROGRAMS:
            assert len(program.files) >= 2, program.rule

    def test_detects_a_silently_broken_rule(self):
        """If a rule stops firing, the self-test must fail — that is its
        entire reason to exist."""
        case = next(c for c in PLANTED_CASES if c.rule == "REP004")
        # "fix" the planted module: the violation disappears, so a run
        # against this source must NOT satisfy the expectation
        fixed = case.source.replace("load += u", "load = load + u")
        findings = lint_source(fixed, case.path, LintConfig())
        assert not any(
            f.rule == case.rule and f.line == case.line for f in findings
        )


class TestMetaLint:
    """This repository holds itself to the discipline it ships."""

    def test_src_is_clean_modulo_committed_baseline(self):
        config = LintConfig(
            root=REPO_ROOT,
            baseline_path=REPO_ROOT / "lint-baseline.json",
        )
        result = lint_paths([REPO_ROOT / "src"], config)
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        assert result.stale_baseline == [], "\n".join(
            e.render() for e in result.stale_baseline
        )

    def test_no_unused_suppressions_in_src(self):
        config = LintConfig(root=REPO_ROOT)
        result = lint_paths([REPO_ROOT / "src"], config)
        assert result.unused_suppressions == [], "\n".join(
            s.render() for s in result.unused_suppressions
        )

    def test_committed_baseline_is_empty(self):
        """Every accepted exception must be an inline ``noqa`` with a
        justification comment, never a baseline entry: the committed
        baseline stays empty so new debt can't hide in it."""
        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data["findings"] == []


class TestNoqa:
    def test_line_suppression_scoped_to_code(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa[REP001]\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_bare_noqa_suppresses_all_rules(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = "def f(a: float, b: float):\n    return a <= b  # repro: noqa[REP002]\n"
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_file_level_pragma(self):
        src = (
            "# repro: noqa-file[REP001]\n"
            "def f(a: float, b: float):\n"
            "    return a <= b\n"
            "def g(a: float, b: float):\n"
            "    return a >= b\n"
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_docstring_mention_is_not_a_suppression(self):
        src = (
            '"""Docs may say: use `# repro: noqa[REP001]` to silence."""\n'
            "def f(a: float, b: float):\n"
            "    return a <= b\n"
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_unused_suppression_reported(self):
        scanner = NoqaScanner("x.py", "a = 1  # repro: noqa[REP001]\n")
        assert scanner.filter([]) == []
        assert len(scanner.unused) == 1
        assert scanner.unused[0].codes == ("REP001",)

    def test_used_suppression_not_reported(self):
        scanner = NoqaScanner("x.py", "a = b <= c  # repro: noqa[REP001]\n")
        finding = Finding(
            path="x.py", line=1, col=5, rule="REP001", message="m", snippet="s"
        )
        assert scanner.filter([finding]) == []
        assert scanner.unused == []


class TestBaseline:
    def _finding(self, path="src/repro/core/x.py", line=3, rule="REP001",
                 snippet="return a <= b"):
        return Finding(
            path=path, line=line, col=5, rule=rule, message="m", snippet=snippet
        )

    def test_fingerprint_survives_line_drift(self):
        baseline = Baseline([BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )])
        moved = self._finding(line=40)  # same code, different line
        assert baseline.absorb([moved]) == []
        assert baseline.stale == []

    def test_changed_line_resurfaces(self):
        baseline = Baseline([BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )])
        changed = self._finding(snippet="return a <= b * 2.0")
        assert baseline.absorb([changed]) == [changed]
        assert len(baseline.stale) == 1

    def test_multiset_matching(self):
        entry = BaselineEntry(
            path="src/repro/core/x.py", rule="REP001",
            snippet="return a <= b", line=3,
        )
        baseline = Baseline([entry, entry])
        f = self._finding()
        # two entries absorb two findings; the third stays active
        assert baseline.absorb([f, f, f]) == [f]

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([self._finding()])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert [e.fingerprint for e in loaded.entries] == [
            e.fingerprint for e in baseline.entries
        ]

    def test_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestSelection:
    def test_select_restricts(self):
        src = (
            "import random\n"
            "def f(a: float, b: float):\n"
            "    random.random()\n"
            "    return a <= b\n"
        )
        cfg = LintConfig(select=("REP002",))
        findings = lint_source(src, "src/repro/core/x.py", cfg)
        assert [f.rule for f in findings] == ["REP002"]

    def test_ignore_drops(self):
        src = "def f(a: float, b: float):\n    return a <= b\n"
        cfg = LintConfig(ignore=("REP001",))
        assert lint_source(src, "src/repro/core/x.py", cfg) == []

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="REP999"):
            resolve_selection(("REP999",), None)

    def test_rules_skip_tests_paths(self):
        src = "def f(a: float, b: float):\n    return a <= b\n"
        assert lint_source(src, "tests/test_x.py") == []

    def test_path_scoping(self):
        # REP001 is scoped to core/ and baselines/: the same source in
        # the service package is out of scope
        src = "def f(a: float, b: float):\n    return a <= b\n"
        assert lint_source(src, "src/repro/service/x.py") == []


class TestReporters:
    def _result(self):
        result = LintResult(files=2)
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=5, rule="REP001",
            message="bare float comparison", snippet="return a <= b",
        )]
        return result

    def test_text_format(self):
        out = render_text(self._result())
        assert "src/repro/core/x.py:3:5: REP001" in out
        assert "1 finding(s) in 2 file(s)" in out

    def test_json_format(self):
        data = json.loads(render_json(self._result()))
        assert data["files"] == 2
        assert data["findings"][0]["rule"] == "REP001"
        assert data["findings"][0]["line"] == 3

    def test_sarif_shape(self):
        """The SARIF 2.1.0 skeleton GitHub code scanning requires."""
        doc = json.loads(render_sarif(self._result()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {r["id"] for r in driver["rules"]} == set(all_rules())
        for rule_meta in driver["rules"]:
            assert rule_meta["shortDescription"]["text"]
            assert rule_meta["fullDescription"]["text"]
        (res,) = run["results"]
        assert res["ruleId"] == "REP001"
        assert res["ruleIndex"] == 0
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"
        assert loc["region"]["startLine"] == 3
        # Finding.col is 1-based already; SARIF must carry it verbatim
        assert loc["region"]["startColumn"] == 5

    def test_sarif_columns_stay_one_based(self):
        """A finding in column 1 must report startColumn 1 (not 2): the
        1-based column contract, pinned."""
        result = LintResult(files=1)
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=1, rule="REP001",
            message="m", snippet="s",
        )]
        doc = json.loads(render_sarif(result))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startColumn"] == 1

    def test_sarif_partial_fingerprints_survive_line_drift(self):
        """partialFingerprints reuse the baseline's snippet identity, so
        the same finding on a different line keeps its fingerprint and
        GitHub code scanning does not re-open it."""
        def doc_for(line):
            result = LintResult(files=1)
            result.findings = [Finding(
                path="src/repro/core/x.py", line=line, col=5, rule="REP001",
                message="m", snippet="return a <= b",
            )]
            return json.loads(render_sarif(result))

        def fp(doc):
            return doc["runs"][0]["results"][0]["partialFingerprints"]

        drifted = fp(doc_for(40))
        assert fp(doc_for(3)) == drifted
        assert list(drifted) == ["reproLintFingerprint/v1"]
        assert len(drifted["reproLintFingerprint/v1"]) == 20

    def test_sarif_fingerprint_changes_with_snippet(self):
        result = LintResult(files=1)
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=5, rule="REP001",
            message="m", snippet="return a <= b * 2.0",
        )]
        doc = json.loads(render_sarif(result))
        changed = doc["runs"][0]["results"][0]["partialFingerprints"]
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=5, rule="REP001",
            message="m", snippet="return a <= b",
        )]
        original = json.loads(render_sarif(result))
        assert changed != original["runs"][0]["results"][0][
            "partialFingerprints"]

    def test_github_format(self):
        out = render_github(self._result())
        lines = out.splitlines()
        assert lines[0] == (
            "::error file=src/repro/core/x.py,line=3,endLine=3,col=5,"
            "title=REP001::[REP001] bare float comparison"
        )
        assert lines[-1] == "1 finding(s) in 2 file(s)"

    def test_github_format_escapes_workflow_metacharacters(self):
        result = LintResult(files=1)
        result.findings = [Finding(
            path="src/repro/core/x.py", line=3, col=1, rule="REP001",
            message="50% slower\r\nthan `x`", snippet="s",
        )]
        first = render_github(result).splitlines()[0]
        # %, CR and LF must travel as %25 / %0D / %0A or the workflow
        # command is cut short at the first raw newline
        assert "[REP001] 50%25 slower%0D%0Athan `x`" in first

    def test_sarif_rule_index_consistent(self):
        doc = json.loads(render_sarif(self._result()))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        res = run["results"][0]
        assert rules[res["ruleIndex"]]["id"] == res["ruleId"]


class TestCLI:
    def _write_violation(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(a: float, b: float):\n    return a <= b\n"
        )
        return tmp_path

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        code = main([
            "lint", str(root / "src"), "--root", str(root), "--no-baseline",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        code = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
        assert code == 0

    def test_write_then_use_baseline(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        baseline = root / "lint-baseline.json"
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--write-baseline", str(baseline),
        ]) == 0
        data = json.loads(baseline.read_text())
        assert data["version"] == 1
        assert len(data["findings"]) == 1
        # grandfathered: the same tree now lints clean
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline),
        ]) == 0

    def test_stale_baseline_fails_with_show_unused(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        baseline = root / "lint-baseline.json"
        main([
            "lint", str(root / "src"), "--root", str(root),
            "--write-baseline", str(baseline),
        ])
        (root / "src" / "repro" / "core" / "bad.py").write_text("x = 1\n")
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline),
        ]) == 0
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--baseline", str(baseline), "--show-unused-noqa",
        ]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_prune_baseline_drops_only_stale(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        keep = pkg / "keep.py"
        gone = pkg / "gone.py"
        keep.write_text("def f(a: float, b: float):\n    return a <= b\n")
        gone.write_text("def g(a: float, b: float):\n    return a >= b\n")
        baseline = tmp_path / "lint-baseline.json"
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--write-baseline", str(baseline),
        ]) == 0
        assert len(json.loads(baseline.read_text())["findings"]) == 2
        gone.write_text("x = 1\n")  # one entry is now stale
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--baseline", str(baseline), "--prune-baseline",
        ]) == 0
        assert "pruned 1 stale" in capsys.readouterr().out
        data = json.loads(baseline.read_text())
        assert [e["path"] for e in data["findings"]] == [
            "src/repro/core/keep.py"
        ]
        # the pruned baseline still absorbs the live finding — and no
        # longer trips the stale-entry failure mode
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--baseline", str(baseline), "--show-unused-noqa",
        ]) == 0

    def test_prune_baseline_requires_baseline(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--prune-baseline",
        ]) == 2
        assert "needs a baseline" in capsys.readouterr().err

    def test_github_format_via_cli(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        code = main([
            "lint", str(root / "src"), "--root", str(root), "--no-baseline",
            "--format", "github",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=src/repro/core/bad.py,line=2," in out
        assert "[REP001]" in out

    def test_unused_noqa_reported_via_flag(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1  # repro: noqa[REP001]\n")
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        ]) == 0
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
            "--show-unused-noqa",
        ]) == 1
        assert "unused noqa" in capsys.readouterr().out

    def test_stats_phase2_line(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        main([
            "lint", str(root / "src"), "--root", str(root),
            "--no-baseline", "--stats",
        ])
        out = capsys.readouterr().out
        phase2 = [ln for ln in out.splitlines() if ln.startswith("phase2:")]
        assert len(phase2) == 1
        assert re.search(
            r"\d+ effect-fixpoint \+ \d+ unit-fixpoint iteration", phase2[0]
        )
        # per-rule timings ride on the same line, keyed by rule id
        assert re.search(r"REP\d{3}=\d+\.\d+ms", phase2[0])

    def test_sarif_output_parses(self, tmp_path, capsys):
        root = self._write_violation(tmp_path)
        main([
            "lint", str(root / "src"), "--root", str(root), "--no-baseline",
            "--format", "sarif",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_self_test_flag(self, capsys):
        assert main(["lint", "--self-test"]) == 0
        assert "self-test OK" in capsys.readouterr().out

    def test_unknown_rule_exit_two(self, tmp_path, capsys):
        assert main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--select", "REP999",
        ]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def f(:\n")
        assert main([
            "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        ]) == 1
        assert "parse error" in capsys.readouterr().out

    def _clean_tree_with_cache(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        for k in range(4):
            (pkg / f"ok{k}.py").write_text(f"x = {k}\n")
        return tmp_path, tmp_path / ".lint-cache"

    def test_min_cache_hit_rate_passes_on_warm_cache(self, tmp_path, capsys):
        root, cache = self._clean_tree_with_cache(tmp_path)
        argv = [
            "lint", str(root / "src"), "--root", str(root),
            "--cache", str(cache),
        ]
        assert main(argv) == 0  # cold run populates the cache
        assert main(argv + ["--min-cache-hit-rate", "0.99"]) == 0

    def test_min_cache_hit_rate_fails_on_cold_cache(self, tmp_path, capsys):
        root, cache = self._clean_tree_with_cache(tmp_path)
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--cache", str(cache), "--min-cache-hit-rate", "0.5",
        ]) == 1
        err = capsys.readouterr().err
        assert "cache hit rate" in err
        assert "busted" in err

    def test_min_cache_hit_rate_requires_cache(self, tmp_path, capsys):
        root, cache = self._clean_tree_with_cache(tmp_path)
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--min-cache-hit-rate", "0.5",
        ]) == 2
        assert "requires --cache" in capsys.readouterr().err
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--cache", str(cache), "--no-cache",
            "--min-cache-hit-rate", "0.5",
        ]) == 2

    def test_min_cache_hit_rate_rejects_out_of_range(self, tmp_path, capsys):
        root, cache = self._clean_tree_with_cache(tmp_path)
        assert main([
            "lint", str(root / "src"), "--root", str(root),
            "--cache", str(cache), "--min-cache-hit-rate", "1.5",
        ]) == 2
        assert "[0, 1]" in capsys.readouterr().err


class TestRuleEdgeCases:
    """Targeted cases beyond the fixture files."""

    def test_rep001_assert_exempt(self):
        src = textwrap.dedent(
            """\
            def f(a: float, b: float):
                assert a <= b
                return a
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_rep002_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src, "src/repro/workloads/x.py") == []

    def test_rep002_applies_everywhere_outside_tests(self):
        src = "import random\nrandom.seed(0)\n"
        findings = lint_source(src, "src/repro/analysis/x.py")
        assert [f.rule for f in findings] == ["REP002"]

    def test_rep003_perf_counter_allowed(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert lint_source(src, "src/repro/experiments/x.py") == []

    def test_rep004_nested_function_not_loop(self):
        # a += inside a function defined inside a loop body is its own
        # scope; the accumulation heuristic must not cross the boundary
        src = textwrap.dedent(
            """\
            def outer(items):
                for item in items:
                    def inner(base: float, delta: float) -> float:
                        base += delta
                        return base
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_rep005_sorted_generator_ok(self):
        src = "def f(s: set):\n    return sorted(x for x in s)\n"
        assert lint_source(src, "src/repro/io_/x.py") == []

    def test_rep006_lock_wrapped_ok(self):
        src = textwrap.dedent(
            """\
            class Cache:
                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """
        )
        assert lint_source(src, "src/repro/service/x.py") == []

    def test_rep006_scoped_to_service(self):
        src = textwrap.dedent(
            """\
            class State:
                def bump(self):
                    self._count = 1
            """
        )
        assert lint_source(src, "src/repro/runner/x.py") == []


def _make_project(tmp_path):
    """A small three-module project with one cross-module REP007 and one
    local REP001 violation."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "alpha.py").write_text(
        "def weight(n) -> float:\n    return n / 2\n"
    )
    (pkg / "beta.py").write_text(
        "from repro.core.alpha import weight\n"
        "\n"
        "\n"
        "def heavy(n, cap: float) -> bool:\n"
        "    return weight(n) <= cap\n"
    )
    (pkg / "gamma.py").write_text(
        "def g(a: float, b: float):\n    return a <= b\n"
    )
    return tmp_path


class TestCacheAndParallel:
    """The incremental cache and the parallel phase-1 fan-out must be
    invisible in the output: bit-identical findings, observable only
    through the engine stats."""

    def _config(self, root, **kw):
        return LintConfig(root=root, **kw)

    def test_cold_then_warm_identical_and_warm_skips(self, tmp_path):
        root = _make_project(tmp_path)
        cache = tmp_path / "lint-cache.pickle"
        config = self._config(root, cache_path=cache)
        cold = lint_paths(["src"], config)
        assert cold.stats.analyzed == cold.stats.files > 0
        assert cold.stats.cache_hits == 0
        assert {f.rule for f in cold.findings} == {"REP001", "REP007"}

        warm = lint_paths(["src"], self._config(root, cache_path=cache))
        # warm-cache skip is asserted via engine stats, not timing
        assert warm.stats.cache_hits == warm.stats.files
        assert warm.stats.analyzed == 0
        assert render_text(warm) == render_text(cold)
        assert warm.exit_code() == cold.exit_code()

    def test_transitive_invalidation_via_import_graph(self, tmp_path):
        root = _make_project(tmp_path)
        cache = tmp_path / "lint-cache.pickle"
        lint_paths(["src"], self._config(root, cache_path=cache))

        # edit alpha: beta (imports alpha) must be re-analyzed too, even
        # though beta's own content is unchanged
        alpha = root / "src" / "repro" / "core" / "alpha.py"
        alpha.write_text("def weight(n) -> float:\n    return n / 4\n")
        result = lint_paths(["src"], self._config(root, cache_path=cache))
        assert result.stats.analyzed == 2  # alpha (edited) + beta (dep)
        assert result.stats.cache_invalidated == 1  # beta, by imports
        assert result.stats.cache_hits == result.stats.files - 2
        # the interprocedural finding is still there
        assert "REP007" in {f.rule for f in result.findings}

    def test_effect_facts_invalidate_through_import_graph(self, tmp_path):
        """Phase-2 effect facts must track *transitive* edits: making a
        helper impure resurfaces REP011 at an unchanged memoized caller
        in another module on the next warm run."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        helper = pkg / "helper.py"
        helper.write_text("def weigh(n):\n    return n * 2\n")
        (pkg / "consume.py").write_text(
            "from functools import lru_cache\n"
            "\n"
            "from repro.core.helper import weigh\n"
            "\n"
            "\n"
            "@lru_cache(maxsize=None)\n"
            "def cached_weigh(n):\n"
            "    return weigh(n)\n"
        )
        cache = tmp_path / "lint-cache.pickle"
        clean = lint_paths(
            ["src"], self._config(tmp_path, cache_path=cache)
        )
        assert clean.findings == []

        # helper turns impure; consume.py is byte-identical but its
        # cached analysis must be invalidated via the import graph and
        # the recomputed fixpoint must carry the new effect into REP011
        helper.write_text(
            "import time\n"
            "\n"
            "\n"
            "def weigh(n):\n"
            "    return n * time.time()\n"
        )
        result = lint_paths(
            ["src"], self._config(tmp_path, cache_path=cache)
        )
        assert result.stats.cache_invalidated == 1  # consume.py, by imports
        rep011 = [f for f in result.findings if f.rule == "REP011"]
        assert [(f.path, f.line) for f in rep011] == [
            ("src/repro/core/consume.py", 7)
        ]
        assert "wall-clock" in rep011[0].message

    def test_fixpoint_iterations_surface_in_stats(self, tmp_path):
        root = _make_project(tmp_path)
        result = lint_paths(["src"], self._config(root))
        # REP011 queries effects for every function, so the fixpoint ran
        assert result.stats.fixpoint_iterations >= 1
        stats_json = json.loads(render_json(result))["stats"]
        assert (
            stats_json["fixpoint_iterations"]
            == result.stats.fixpoint_iterations
        )
        # wall-clock timings would break bit-identity across runs
        assert "rule_timings" not in stats_json

    def test_cache_discarded_on_rule_selection_change(self, tmp_path):
        root = _make_project(tmp_path)
        cache = tmp_path / "lint-cache.pickle"
        lint_paths(["src"], self._config(root, cache_path=cache))
        narrowed = self._config(
            root, cache_path=cache, select=("REP001",)
        )
        result = lint_paths(["src"], narrowed)
        # different selection: the cache must not replay old findings
        assert result.stats.cache_hits == 0
        assert {f.rule for f in result.findings} == {"REP001"}

    def test_corrupt_cache_degrades_to_cold_start(self, tmp_path):
        root = _make_project(tmp_path)
        cache = tmp_path / "lint-cache.pickle"
        config = self._config(root, cache_path=cache)
        expected = render_text(lint_paths(["src"], config))
        cache.write_bytes(b"\x80\x04 definitely not a cache")
        result = lint_paths(["src"], config)
        assert result.stats.cache_hits == 0
        assert render_text(result) == expected

    def test_parallel_jobs_bit_identical(self, tmp_path):
        root = _make_project(tmp_path)
        serial = lint_paths(["src"], self._config(root))
        parallel = lint_paths(["src"], self._config(root, jobs=2))
        assert parallel.stats.jobs == 2
        assert render_text(parallel) == render_text(serial)
        # JSON differs only in the stats block, by design
        par_json = json.loads(render_json(parallel))
        ser_json = json.loads(render_json(serial))
        par_json.pop("stats")
        ser_json.pop("stats")
        assert par_json == ser_json

    def test_jobs_and_warm_cache_identical_on_real_src(self, tmp_path):
        """The acceptance criterion, verbatim: ``repro lint src/`` with
        ``--jobs 4`` and with a warm cache are byte-identical to the
        cold serial run, and the warm run demonstrably skips every
        unchanged module (via stats, not timing)."""
        serial = lint_paths([REPO_ROOT / "src"], LintConfig(root=REPO_ROOT))
        cache = tmp_path / "lint-cache.pickle"
        cold_parallel = lint_paths(
            [REPO_ROOT / "src"],
            LintConfig(root=REPO_ROOT, jobs=4, cache_path=cache),
        )
        warm = lint_paths(
            [REPO_ROOT / "src"],
            LintConfig(root=REPO_ROOT, jobs=4, cache_path=cache),
        )
        assert render_text(cold_parallel) == render_text(serial)
        assert render_text(warm) == render_text(serial)
        assert cold_parallel.exit_code() == serial.exit_code()
        assert warm.exit_code() == serial.exit_code()
        assert warm.stats.cache_hits == warm.stats.files == serial.files
        assert warm.stats.analyzed == 0


class TestLintChanged:
    """Pre-commit mode: change-scoped reporting with a whole-program
    fallback when the import graph says the change is non-local."""

    def test_local_change_scopes_the_report(self, tmp_path):
        root = _make_project(tmp_path)
        config = LintConfig(root=root)
        # gamma is imported by nothing and is in no registry package
        result, fallback = lint_changed(
            ["src/repro/core/gamma.py"], config, search_paths=["src"]
        )
        assert fallback is None
        assert {f.path for f in result.findings} == {
            "src/repro/core/gamma.py"
        }
        assert [f.rule for f in result.findings] == ["REP001"]

    def test_imported_module_falls_back_to_whole_program(self, tmp_path):
        root = _make_project(tmp_path)
        config = LintConfig(root=root)
        # alpha is imported by beta: the change is non-local
        result, fallback = lint_changed(
            ["src/repro/core/alpha.py"], config, search_paths=["src"]
        )
        assert fallback is not None and "non-local" in fallback
        # full report: beta's REP007 and gamma's REP001 both present
        assert {f.rule for f in result.findings} == {"REP001", "REP007"}

    def test_registry_package_change_falls_back(self, tmp_path):
        root = _make_project(tmp_path)
        exp = root / "src" / "repro" / "experiments"
        exp.mkdir(parents=True)
        (exp / "__init__.py").write_text("from . import e01_demo\n")
        (exp / "e01_demo.py").write_text("REGISTERED = True\n")
        config = LintConfig(root=root)
        result, fallback = lint_changed(
            ["src/repro/experiments/e01_demo.py"], config, search_paths=["src"]
        )
        assert fallback is not None and "registry" in fallback

    def test_changed_mode_via_cli(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        code = main([
            "lint", "src/repro/core/gamma.py", "--root", str(root),
            "--changed", "--no-baseline",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "gamma.py" in out and "REP007" not in out


class TestNoqaSpans:
    """Suppressions match anywhere in the statement's lineno-end_lineno
    span, not just the finding's anchor line."""

    _MULTILINE = textwrap.dedent(
        """\
        def f(a: float, b: float):
            return (a
                    <= b){noqa}
        """
    )

    def test_suppression_on_anchor_line(self):
        src = textwrap.dedent(
            """\
            def f(a: float, b: float):
                return (a  # repro: noqa[REP001]
                        <= b)
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_suppression_on_closing_line(self):
        src = self._MULTILINE.format(noqa="  # repro: noqa[REP001]")
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_without_suppression_still_fires(self):
        src = self._MULTILINE.format(noqa="")
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]
        (finding,) = findings
        assert finding.last_line > finding.line  # the span is real

    def test_span_suppression_counts_as_used(self):
        src = self._MULTILINE.format(noqa="  # repro: noqa[REP001]")
        scanner = NoqaScanner("src/repro/core/x.py", src)
        raw = lint_source(src, "src/repro/core/x.py", apply_noqa=False)
        assert scanner.filter(raw) == []
        assert scanner.unused == []

    def test_noqa_outside_span_is_unused(self):
        src = textwrap.dedent(
            """\
            def f(a: float, b: float):
                return (a
                        <= b)


            x = 1  # repro: noqa[REP001]
            """
        )
        scanner = NoqaScanner("src/repro/core/x.py", src)
        raw = lint_source(src, "src/repro/core/x.py", apply_noqa=False)
        assert len(scanner.filter(raw)) == 1  # finding not suppressed
        assert len(scanner.unused) == 1  # and the noqa matched nothing

    def test_loop_body_noqa_does_not_silence_header_finding(self):
        """A block statement's span covers its header only: a noqa on a
        body line must not reach a finding anchored on the ``for``."""
        src = textwrap.dedent(
            """\
            def digest(task_ids: set):
                out = []
                for tid in task_ids:
                    out.append(tid)  # repro: noqa[REP005]
                return out
            """
        )
        findings = lint_source(src, "src/repro/io_/x.py")
        assert [f.rule for f in findings] == ["REP005"]


class TestTypeInferEdgeCases:
    """Walrus, augmented assignment, comprehension scopes, ternaries,
    and functools.reduce all propagate float kinds (exercised through
    REP001, which only fires when both operands infer as float)."""

    def test_walrus_target_infers_float(self):
        src = textwrap.dedent(
            """\
            def f(b: float):
                x = (y := b / 2.0)
                return y <= b
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_walrus_expression_kind_is_value_kind(self):
        src = textwrap.dedent(
            """\
            def f(b: float):
                return (x := b / 2.0) <= b
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_augassign_div_forces_float(self):
        src = textwrap.dedent(
            """\
            def f(total, n, cap: float):
                total /= n
                return total <= cap
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_augassign_propagates_float_operand(self):
        src = textwrap.dedent(
            """\
            def f(total, delta: float, cap: float):
                total += delta
                return total <= cap
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert "REP001" in [f.rule for f in findings]

    def test_augassign_int_stays_unknown(self):
        src = textwrap.dedent(
            """\
            def f(count, cap: float):
                count += 1
                return count <= cap
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_comprehension_target_bound_from_float_seq(self):
        src = textwrap.dedent(
            """\
            def f(loads: list[float], cap: float):
                return [x <= cap for x in loads]
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_comprehension_target_unknown_iter_stays_unknown(self):
        src = textwrap.dedent(
            """\
            def f(items, cap: float):
                return [x <= cap for x in items]
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_ternary_propagates_float(self):
        src = textwrap.dedent(
            """\
            def f(a: float, b: float, flip):
                val = a if flip else b
                return val <= b
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_bare_reduce_over_float_seq(self):
        src = textwrap.dedent(
            """\
            from functools import reduce


            def f(xs: list[float], cap: float):
                total = reduce(lambda p, q: p + q, xs)
                return total <= cap
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_functools_reduce_with_float_initial(self):
        src = textwrap.dedent(
            """\
            import functools


            def f(xs, cap: float):
                total = functools.reduce(lambda p, q: p + q, xs, 0.0)
                return total <= cap
            """
        )
        findings = lint_source(src, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_reduce_over_unknown_seq_stays_unknown(self):
        src = textwrap.dedent(
            """\
            from functools import reduce


            def f(xs, cap: float):
                total = reduce(lambda p, q: p + q, xs)
                return total <= cap
            """
        )
        assert lint_source(src, "src/repro/core/x.py") == []


def _effect_graph(files: dict[str, str]) -> ProjectGraph:
    """Build a :class:`ProjectGraph` straight from module summaries —
    the raw substrate the REP010-013 rules query."""
    summaries = []
    for path, source in files.items():
        tree = ast.parse(source)
        attach_parents(tree)
        summaries.append(build_module_summary(FileContext(path, source, tree)))
    return ProjectGraph(summaries)


class TestEffectEdgeCases:
    """Corner cases of effect extraction and propagation: async
    generators, ``functools.partial``, decorated functions, contextmanager
    lock helpers, and re-exported callables (the mirror image of the
    typeinfer edge-case suite above)."""

    def test_async_generator_keeps_blocking_effect(self):
        src = textwrap.dedent(
            """\
            import time


            async def stream(xs):
                for x in xs:
                    time.sleep(0.01)
                    yield x
            """
        )
        graph = _effect_graph({"src/repro/service/agen.py": src})
        effects = graph.effects("repro.service.agen", "stream")
        assert "blocking" in effects
        # and REP012 reports it at the call site inside the generator
        findings = lint_sources({"src/repro/service/agen.py": src})
        assert [(f.rule, f.line) for f in findings] == [("REP012", 6)]

    def test_partial_binding_resolves_to_wrapped_callable(self):
        src = textwrap.dedent(
            """\
            from functools import partial

            _TALLY = []


            def record(x):
                _TALLY.append(x)


            def driver(xs):
                rec = partial(record)
                for x in xs:
                    rec(x)
            """
        )
        graph = _effect_graph({"src/repro/core/part.py": src})
        effects = graph.effects("repro.core.part", "driver")
        assert "mutates-global" in effects
        detail, chain = effects["mutates-global"]
        assert chain == ("repro.core.part.record",)

    def test_decorator_does_not_swallow_effects(self):
        src = textwrap.dedent(
            """\
            import functools

            _N = 0


            def logged(fn):
                @functools.wraps(fn)
                def inner(*args, **kwargs):
                    return fn(*args, **kwargs)

                return inner


            @logged
            def touch():
                global _N
                _N += 1


            def caller():
                touch()
            """
        )
        graph = _effect_graph({"src/repro/core/deco.py": src})
        # the decorated definition keeps its own effects...
        assert "mutates-global" in graph.effects("repro.core.deco", "touch")
        # ...and they propagate through calls to the decorated name
        effects = graph.effects("repro.core.deco", "caller")
        assert "mutates-global" in effects
        assert effects["mutates-global"][1] == ("repro.core.deco.touch",)

    def test_contextmanager_lock_helper_discharges_rep010(self):
        helper = textwrap.dedent(
            """\
            import threading
            from contextlib import contextmanager

            _LOCK = threading.Lock()
            _STATE = {}


            @contextmanager
            def guard():
                with _LOCK:
                    yield


            def set_item(key, value):
                with guard():
                    _STATE[key] = value
            """
        )
        path = "src/repro/service/cmlock.py"
        graph = _effect_graph({path: helper})
        # the helper-wrapped block still counts as lock-holding
        assert "lock" in graph.effects("repro.service.cmlock", "set_item")
        assert lint_sources({path: helper}) == []

        # the same mutation behind a *non*-contextmanager helper is not
        # proven locked: REP010 fires
        unguarded = helper.replace("@contextmanager\n", "")
        findings = lint_sources({path: unguarded})
        assert [f.rule for f in findings] == ["REP010"]

    def test_reexported_callable_resolves_to_definition(self):
        files = {
            "src/repro/core/impl.py": textwrap.dedent(
                """\
                import time


                def stamp():
                    return time.time()
                """
            ),
            "src/repro/core/__init__.py": (
                "from repro.core.impl import stamp\n"
            ),
            "src/repro/analysis/use.py": textwrap.dedent(
                """\
                from functools import lru_cache

                from repro.core import stamp


                @lru_cache(maxsize=None)
                def cached_stamp():
                    return stamp()
                """
            ),
        }
        graph = _effect_graph(files)
        # effects flow through the package __init__ re-export
        effects = graph.effects("repro.analysis.use", "cached_stamp")
        assert "wall-clock" in effects
        assert effects["wall-clock"][1] == ("repro.core.impl.stamp",)
        rep011 = [f for f in lint_sources(files) if f.rule == "REP011"]
        assert [(f.path, f.line) for f in rep011] == [
            ("src/repro/analysis/use.py", 7)
        ]

    def test_impure_tags_exclude_lock_and_memo_write(self):
        # pinned: holding a lock or writing a cache is not value-impurity
        assert "lock" not in IMPURE_TAGS
        assert "memo-write" not in IMPURE_TAGS


_UNIT_HELPERS = textwrap.dedent(
    """\
    def total_utilization(tasks):
        return sum(t.utilization for t in tasks)


    def total_demand(tasks):
        return sum(t.wcet for t in tasks)


    def busy_window(tasks):
        return max(t.deadline for t in tasks)


    def admit(utilization, speed):
        return utilization <= speed
    """
)

#: one caller per unit rule; the violation is always on line 5 and a
#: ``{noqa}`` placeholder rides on that line for the suppression tests
_UNIT_VIOLATIONS = {
    "REP014": (
        "from repro.core.helpers import total_utilization\n"
        "\n"
        "\n"
        "def slack(tasks, deadline):\n"
        "    return deadline - total_utilization(tasks){noqa}\n"
    ),
    "REP015": (
        "from repro.core.helpers import busy_window\n"
        "\n"
        "\n"
        "def within(tasks, x):\n"
        "    return x < busy_window(tasks) - 1e-9{noqa}\n"
    ),
    "REP016": (
        "from repro.core.helpers import admit\n"
        "\n"
        "\n"
        "def check(task):\n"
        "    return admit(task.period, 1.0){noqa}\n"
    ),
    "REP017": (
        "from repro.core.helpers import total_demand\n"
        "\n"
        "\n"
        "def fits(tasks, t):\n"
        "    return total_demand(tasks) < t{noqa}\n"
    ),
}


class TestUnitRules:
    """REP014–REP017 end-to-end: suppression, cache invalidation, and
    determinism of the interprocedural unit fixpoint."""

    def _project(self, tmp_path, rule, noqa):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "helpers.py").write_text(_UNIT_HELPERS)
        (pkg / "caller.py").write_text(
            _UNIT_VIOLATIONS[rule].format(noqa=noqa)
        )
        return tmp_path

    @pytest.mark.parametrize("rule", sorted(_UNIT_VIOLATIONS))
    def test_fires_without_noqa(self, tmp_path, rule):
        root = self._project(tmp_path, rule, "")
        result = lint_paths(["src"], LintConfig(root=root))
        assert [(f.rule, f.path, f.line) for f in result.findings] == [
            (rule, "src/repro/core/caller.py", 5)
        ]

    @pytest.mark.parametrize("rule", sorted(_UNIT_VIOLATIONS))
    def test_noqa_suppresses_and_counts_used(self, tmp_path, rule):
        root = self._project(
            tmp_path, rule, f"  # repro: noqa[{rule}]"
        )
        result = lint_paths(
            ["src"], LintConfig(root=root, show_unused_noqa=True)
        )
        assert result.findings == []
        assert result.suppressed == 1
        assert result.unused_suppressions == []

    def test_noqa_on_clean_line_is_unused(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "helpers.py").write_text(_UNIT_HELPERS)
        (pkg / "caller.py").write_text(
            "from repro.core.helpers import total_demand\n"
            "\n"
            "\n"
            "def fits(tasks, t, speed):\n"
            "    return total_demand(tasks) / speed < t"
            "  # repro: noqa[REP017]\n"
        )
        result = lint_paths(
            ["src"], LintConfig(root=tmp_path, show_unused_noqa=True)
        )
        # work / speed is a time: dimensionally clean, so the
        # suppression matched nothing and must be reported
        assert result.findings == []
        assert [(u.path, u.line) for u in result.unused_suppressions] == [
            ("src/repro/core/caller.py", 5)
        ]

    def test_unit_facts_invalidate_through_import_graph(self, tmp_path):
        """Pinned: phase-2 unit facts track *transitive* edits.  Giving
        a helper a work-dimensioned return resurfaces REP017 at a
        byte-identical caller in another module on the next warm run."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        helper = pkg / "helper.py"
        helper.write_text(
            "def total_demand(tasks):\n"
            "    return len(tasks) * 1.0\n"
        )
        (pkg / "consume.py").write_text(
            "from repro.core.helper import total_demand\n"
            "\n"
            "\n"
            "def fits(tasks, t):\n"
            "    return total_demand(tasks) < t\n"
        )
        cache = tmp_path / "lint-cache.pickle"
        clean = lint_paths(
            ["src"], LintConfig(root=tmp_path, cache_path=cache)
        )
        assert clean.findings == []

        # the helper now returns a work-dimensioned demand; consume.py
        # is unchanged, but its recorded comparison must be re-judged
        # against the new return dimension
        helper.write_text(
            "def total_demand(tasks):\n"
            "    return sum(t.wcet for t in tasks)\n"
        )
        result = lint_paths(
            ["src"], LintConfig(root=tmp_path, cache_path=cache)
        )
        assert result.stats.cache_invalidated == 1  # consume.py, via imports
        assert [(f.rule, f.path, f.line) for f in result.findings] == [
            ("REP017", "src/repro/core/consume.py", 5)
        ]
        assert "normalize by the machine speed" in result.findings[0].message

    def test_unit_rules_bit_identical_across_jobs_and_cache(self, tmp_path):
        """The acceptance criterion: REP014–REP017 JSON is bit-identical
        across ``--jobs 1``/``--jobs 4`` and cold/warm cache (stats
        aside), and the unit fixpoint converges in the same number of
        rounds every run."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "helpers.py").write_text(_UNIT_HELPERS)
        for rule, src in _UNIT_VIOLATIONS.items():
            (pkg / f"use_{rule.lower()}.py").write_text(src.format(noqa=""))
        cache = tmp_path / "lint-cache.pickle"
        serial = lint_paths(["src"], LintConfig(root=tmp_path))
        cold = lint_paths(
            ["src"], LintConfig(root=tmp_path, jobs=4, cache_path=cache)
        )
        warm = lint_paths(
            ["src"], LintConfig(root=tmp_path, jobs=4, cache_path=cache)
        )
        assert warm.stats.cache_hits == warm.stats.files
        assert {f.rule for f in serial.findings} == set(_UNIT_VIOLATIONS)
        payloads = []
        for run in (serial, cold, warm):
            data = json.loads(render_json(run))
            assert (
                data["stats"]["unit_fixpoint_iterations"]
                == serial.stats.unit_fixpoint_iterations
            )
            data.pop("stats")
            payloads.append(json.dumps(data, sort_keys=True))
        assert payloads[0] == payloads[1] == payloads[2]

    def test_unit_fixpoint_iterations_surface_in_stats(self, tmp_path):
        root = self._project(tmp_path, "REP017", "")
        result = lint_paths(["src"], LintConfig(root=root))
        assert result.stats.unit_fixpoint_iterations >= 1
        stats_json = json.loads(render_json(result))["stats"]
        assert (
            stats_json["unit_fixpoint_iterations"]
            == result.stats.unit_fixpoint_iterations
        )
