"""The validators must catch corrupted traces (negative tests)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.model import Task
from repro.sim.trace import JobRecord, Segment, Trace
from repro.sim.uniprocessor import simulate_taskset_on_machine
from repro.sim.validators import (
    validate_all,
    validate_policy_compliance,
    validate_trace,
)

TASKS = [Task(2, 6), Task(2, 8)]


@pytest.fixture
def clean_trace():
    return simulate_taskset_on_machine(TASKS, 1.0, "edf", horizon=24)


def _replace_segments(trace: Trace, segments) -> Trace:
    return dataclasses.replace(trace, segments=tuple(segments))


def _replace_jobs(trace: Trace, jobs) -> Trace:
    return dataclasses.replace(trace, jobs=tuple(jobs))


class TestValidateTrace:
    def test_clean_trace_passes(self, clean_trace):
        assert validate_trace(clean_trace, TASKS) == []
        assert validate_policy_compliance(clean_trace, TASKS) == []

    def test_detects_overlapping_segments(self, clean_trace):
        segs = list(clean_trace.segments)
        bad = Segment(
            start=segs[0].start,
            end=segs[0].end + 0.5,
            task_index=segs[0].task_index,
            job_id=segs[0].job_id,
        )
        corrupted = _replace_segments(clean_trace, [bad] + segs[1:])
        assert any("overlap" in e for e in validate_trace(corrupted, TASKS))

    def test_detects_execution_before_release(self, clean_trace):
        jobs = [
            dataclasses.replace(j, release=j.release + 1.0)
            if j.job_id == 0 and j.task_index == 0
            else j
            for j in clean_trace.jobs
        ]
        corrupted = _replace_jobs(clean_trace, jobs)
        errors = validate_trace(corrupted, TASKS)
        assert any("before release" in e for e in errors)

    def test_detects_wrong_executed_amount(self, clean_trace):
        # shrink one segment: completed job no longer accounts for its work
        segs = list(clean_trace.segments)
        segs[0] = Segment(
            start=segs[0].start,
            end=segs[0].end - 0.5,
            task_index=segs[0].task_index,
            job_id=segs[0].job_id,
        )
        corrupted = _replace_segments(clean_trace, segs)
        errors = validate_trace(corrupted, TASKS)
        assert errors  # either work mismatch or completion mismatch

    def test_detects_inconsistent_miss_flag(self, clean_trace):
        jobs = [
            dataclasses.replace(j, missed=True) for j in clean_trace.jobs
        ]
        corrupted = _replace_jobs(clean_trace, jobs)
        errors = validate_trace(corrupted, TASKS)
        assert any("missed flag" in e for e in errors)

    def test_detects_phantom_segment(self, clean_trace):
        phantom = Segment(start=20.0, end=21.0, task_index=9, job_id=0)
        corrupted = _replace_segments(
            clean_trace, list(clean_trace.segments) + [phantom]
        )
        errors = validate_trace(corrupted, TASKS)
        assert any("no job record" in e for e in errors)


class TestPolicyCompliance:
    def test_detects_priority_inversion(self):
        # hand-built trace: the long-deadline job runs while a
        # short-deadline job is ready
        tasks = [Task(2, 10), Task(2, 4)]
        segments = (
            Segment(start=0.0, end=2.0, task_index=0, job_id=0),  # wrong: t1 ready
            Segment(start=2.0, end=4.0, task_index=1, job_id=0),
        )
        jobs = (
            JobRecord(0, 0, 0.0, 10.0, 2.0, 2.0, False),
            JobRecord(1, 0, 0.0, 4.0, 2.0, 4.0, False),
        )
        trace = Trace(
            machine_speed=1.0,
            horizon=10.0,
            policy_name="edf",
            segments=segments,
            jobs=jobs,
        )
        errors = validate_policy_compliance(trace, tasks)
        assert any("higher-priority" in e for e in errors)

    def test_detects_non_work_conserving_idle(self):
        tasks = [Task(2, 10)]
        segments = (Segment(start=3.0, end=5.0, task_index=0, job_id=0),)
        jobs = (JobRecord(0, 0, 0.0, 10.0, 2.0, 5.0, False),)
        trace = Trace(
            machine_speed=1.0,
            horizon=10.0,
            policy_name="edf",
            segments=segments,
            jobs=jobs,
        )
        errors = validate_policy_compliance(trace, tasks)
        assert any("idle gap" in e for e in errors)

    def test_detects_missed_preemption(self):
        # job released mid-segment with higher priority, not preempted
        tasks = [Task(4, 20), Task(1, 3)]
        segments = (
            Segment(start=0.0, end=4.0, task_index=0, job_id=0),
            Segment(start=4.0, end=5.0, task_index=1, job_id=0),
        )
        jobs = (
            JobRecord(0, 0, 0.0, 20.0, 4.0, 4.0, False),
            JobRecord(1, 0, 1.0, 4.0, 1.0, 5.0, True),
        )
        trace = Trace(
            machine_speed=1.0,
            horizon=20.0,
            policy_name="edf",
            segments=segments,
            jobs=jobs,
        )
        errors = validate_policy_compliance(trace, tasks)
        assert any("did not preempt" in e for e in errors)

    def test_validate_all_aggregates(self, clean_trace):
        assert validate_all(clean_trace, TASKS) == []
