"""Tests for the k-step approximate demand bound test."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import admission_test
from repro.core.dbf import dbf, qpa_edf_feasible
from repro.core.dbf_approx import (
    EDFApproxDemandTest,
    approx_dbf,
    edf_approx_demand_feasible,
)
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition, verify_partition

constrained_task = st.builds(
    lambda c, p, frac: Task(
        wcet=float(c),
        period=float(p),
        deadline=max(float(c), round(frac * p, 3)),
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=5, max_value=30),
    st.floats(min_value=0.3, max_value=1.0),
)


class TestApproxDBFFunction:
    def test_exact_in_first_k_steps(self):
        t = Task(2, 10, deadline=4)
        for x in (3.9, 4.0, 13.9, 14.0, 23.9):
            assert approx_dbf(t, x, k=3) == dbf(t, x)

    def test_linear_beyond_k_steps(self):
        t = Task(2, 10, deadline=4)
        # linear region starts at d + (k-1)p = 24 for k=3
        assert approx_dbf(t, 24.0, k=3) == pytest.approx(6.0)
        assert approx_dbf(t, 29.0, k=3) == pytest.approx(6.0 + 5 * 0.2)

    def test_equality_at_step_points_everywhere(self):
        t = Task(3, 7, deadline=5)
        for j in range(10):
            point = 5 + 7 * j
            assert approx_dbf(t, point, k=2) == pytest.approx(dbf(t, point))

    @given(constrained_task, st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_upper_bounds_exact_dbf(self, task, k):
        for x in np.linspace(0, 8 * task.period, 60):
            assert approx_dbf(task, float(x), k) >= dbf(task, float(x)) - 1e-9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            approx_dbf(Task(1, 2), 1.0, k=0)


class TestApproxFeasibility:
    def test_empty_and_validation(self):
        assert edf_approx_demand_feasible([], 1.0)
        with pytest.raises(ValueError):
            edf_approx_demand_feasible([Task(1, 2)], 0.0)

    @given(
        st.lists(constrained_task, min_size=1, max_size=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_soundness_accept_implies_exact_feasible(self, tasks, k):
        """dbf* >= dbf, so approximate acceptance is a feasibility proof."""
        for speed in (0.8, 1.0, 1.5):
            if edf_approx_demand_feasible(tasks, speed, k=k):
                assert qpa_edf_feasible(tasks, speed)

    @given(st.lists(constrained_task, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_k_and_convergent(self, tasks):
        """Larger k only accepts more; at large k the verdict approaches
        the exact test up to the provable (1+1/k) augmentation.

        Exact equality at k=64 is *not* guaranteed: for instances whose
        total utilization sits exactly at the speed (dbf(t) == t at
        infinitely many step points) the linear tail strictly
        over-estimates between steps at every finite k, so the
        approximation must over-reject.  The provable statement is
        one-sided soundness plus [7]'s augmentation recovery.
        """
        verdicts = [
            edf_approx_demand_feasible(tasks, 1.0, k=k) for k in (1, 2, 4, 8, 64)
        ]
        for a, b in zip(verdicts, verdicts[1:]):
            if a:
                assert b  # acceptance is monotone in k
        exact = qpa_edf_feasible(tasks, 1.0)
        if verdicts[-1]:
            assert exact  # soundness: approximate acceptance is a proof
        elif exact:
            # over-rejection disappears with (1 + 1/k) extra speed
            assert edf_approx_demand_feasible(tasks, 1.0 + 1.0 / 64, k=64)

    def test_small_k_over_rejects_bursty_sets(self):
        # feasible set (dbf exactly meets t at 2 and 4) that k=1's linear
        # tail over-estimates (approx at t=4: 2.4 + 2 > 4) but k=3 accepts
        tasks = [Task(2, 10, deadline=2), Task(2, 10, deadline=4)]
        assert qpa_edf_feasible(tasks, 1.0)
        assert not edf_approx_demand_feasible(tasks, 1.0, k=1)
        assert edf_approx_demand_feasible(tasks, 1.0, k=3)

    def test_augmentation_recovery(self, rng):
        """[7]-style bound: a k-rejection disappears with (1+1/k) speed
        whenever the exact test accepts."""
        k = 3
        for _ in range(200):
            n = int(rng.integers(1, 5))
            tasks = []
            for _ in range(n):
                p = float(rng.integers(5, 25))
                c = float(rng.integers(1, 5))
                d = float(rng.integers(max(1, int(c)), int(p) + 1))
                tasks.append(Task(c, p, deadline=d))
            if qpa_edf_feasible(tasks, 1.0) and not edf_approx_demand_feasible(
                tasks, 1.0, k=k
            ):
                assert edf_approx_demand_feasible(tasks, 1.0 + 1.0 / k, k=k)


class TestApproxAdmission:
    def test_registered(self):
        t = admission_test("edf-dbf-approx")
        assert isinstance(t, EDFApproxDemandTest)
        assert t.k == 4

    def test_custom_k_name(self):
        assert EDFApproxDemandTest(k=2).name == "edf-dbf-approx(k=2)"
        with pytest.raises(ValueError):
            EDFApproxDemandTest(k=0)

    def test_partition_with_approx_admission(self):
        ts = TaskSet(
            [
                Task(2, 10, deadline=4),
                Task(3, 12, deadline=9),
                Task(1, 4, deadline=3),
            ]
        )
        pf = Platform.from_speeds([1.0, 1.0])
        r = first_fit_partition(ts, pf, "edf-dbf-approx")
        assert r.success
        # the approximate admission's partitions are exactly feasible
        assert verify_partition(r, ts, pf, test="edf-dbf")

    def test_incremental_matches_oneshot(self, rng):
        test = EDFApproxDemandTest(k=3)
        for _ in range(20):
            speed = float(rng.uniform(0.5, 2.0))
            state = test.open(speed)
            accepted = []
            for _ in range(4):
                p = float(rng.integers(5, 20))
                c = float(rng.integers(1, 4))
                d = float(rng.integers(max(1, int(c)), int(p) + 1))
                task = Task(c, p, deadline=d)
                if state.admits(task):
                    state.add(task)
                    accepted.append(task)
                    assert test.feasible(accepted, speed)
