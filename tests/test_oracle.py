"""Tests for the differential oracle (repro.oracle).

The heart is the property sweep: for every admission test, ≥500 seeded
instances — randomized plus boundary-adversarial — must uphold the
per-test slice of the invariant lattice.  On top: the full cross-oracle
lattice on a smaller budget, the shrinker's contracts, replay of the
persisted fixtures, and the injected-bug self-test that proves the
harness can actually catch a broken test.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.bounds import ADMISSION_TESTS
from repro.core.model import Platform, Task, TaskSet
from repro.oracle import (
    CHECKS,
    COUNTEREXAMPLE_SCHEMA,
    PER_TEST_CHECKS,
    PROFILES,
    OracleConfig,
    Violation,
    boundary_nudges,
    check_instance,
    draw_instance,
    replay_counterexample,
    run_fuzz,
    self_test,
    shrink_instance,
)
from repro.oracle.fuzz import _BrokenLLTest
from repro.oracle.generators import scale_hyperbolic_to, scale_total_to

FIXTURES = Path(__file__).parent / "fixtures" / "counterexamples"

#: the cheap per-test lattice slice (no exact adversaries / LP / service)
_CHEAP_CHECKS = (
    "single-machine-lattice",
    "incremental-vs-oneshot",
    "verify-partition",
)


def _sweep(name: str, n_instances: int, checks: tuple[str, ...]) -> None:
    config = OracleConfig(tests=(name,), checks=checks)
    profiles = tuple(PROFILES)
    rng = np.random.default_rng(0xBADBEEF ^ zlib.crc32(name.encode()))
    violations: list[Violation] = []
    for k in range(n_instances):
        taskset, platform = draw_instance(rng, profiles[k % len(profiles)])
        violations.extend(check_instance(taskset, platform, config))
        if violations:
            break
    assert not violations, (
        f"{name}: lattice violated on instance {k}: "
        f"{[v.as_dict() for v in violations]}"
    )


class TestGenerators:
    def test_all_profiles_draw_valid_instances(self, rng):
        for profile in PROFILES:
            for _ in range(10):
                taskset, platform = draw_instance(rng, profile)
                assert len(taskset) >= 1
                assert len(platform) >= 1
                assert taskset.total_utilization > 0
                if profile in ("constrained", "boundary-qpa"):
                    # the constrained family stays in the d <= p model
                    assert all(t.deadline <= t.period for t in taskset)
                else:
                    assert taskset.is_implicit

    def test_constrained_profiles_exercise_the_deadline_axis(self, rng):
        for profile in ("constrained", "boundary-qpa"):
            seen_constrained = False
            for _ in range(20):
                taskset, _ = draw_instance(rng, profile)
                if not taskset.is_implicit:
                    seen_constrained = True
            assert seen_constrained, profile

    def test_unknown_profile(self, rng):
        with pytest.raises(KeyError):
            draw_instance(rng, "nope")

    def test_scale_total_hits_target(self, rng):
        for _ in range(20):
            taskset, _ = draw_instance(rng, "uniform")
            target = float(rng.uniform(0.3, 3.0))
            scaled = scale_total_to(taskset, target)
            assert scaled.total_utilization == pytest.approx(
                target, rel=1e-12
            )

    def test_scale_hyperbolic_hits_target(self, rng):
        for _ in range(20):
            taskset, _ = draw_instance(rng, "uniform")
            speed = float(rng.uniform(0.5, 2.0))
            scaled = scale_hyperbolic_to(taskset, speed, target=2.0)
            prod = 1.0
            for t in scaled:
                prod *= t.utilization / speed + 1.0
            assert prod == pytest.approx(2.0, rel=1e-9)

    def test_nudges_cover_both_sides_of_eps(self):
        nudges = boundary_nudges()
        assert 0.0 in nudges
        assert any(0 < abs(x) < 1e-9 for x in nudges)  # inside the window
        assert any(abs(x) > 1e-9 for x in nudges)  # outside it


class TestPerTestLattice:
    """≥500 seeded instances per admission test through the per-test
    lattice slice (dominance chain, incremental-vs-oneshot agreement,
    partition verification)."""

    @pytest.mark.parametrize("name", sorted(ADMISSION_TESTS))
    def test_500_instances(self, name):
        _sweep(name, 500, _CHEAP_CHECKS)

    @pytest.mark.parametrize("name", ("edf", "rms-ll"))
    def test_theorem_speedups_sample(self, name):
        # exact adversaries + LP are pricier: smaller budget, full slice
        _sweep(name, 60, PER_TEST_CHECKS)


class TestFullLattice:
    def test_cross_oracle_checks(self, rng):
        """Every invariant — including LP dominance, certificates, and
        serialize/service round-trips — on a mixed-profile sample."""
        config = OracleConfig()  # all tests, all checks
        profiles = tuple(PROFILES)
        for k in range(60):
            taskset, platform = draw_instance(rng, profiles[k % len(profiles)])
            violations = check_instance(taskset, platform, config)
            assert not violations, [v.as_dict() for v in violations]

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError):
            check_instance(
                TaskSet([Task(1, 10)]),
                Platform.from_speeds([1.0]),
                OracleConfig(checks=("nope",)),
            )

    def test_per_test_checks_subset_of_registry(self):
        assert set(PER_TEST_CHECKS) <= set(CHECKS)


class TestShrinker:
    def test_requires_failing_start(self):
        ts = TaskSet([Task(1, 10)])
        pf = Platform.from_speeds([1.0])
        with pytest.raises(ValueError):
            shrink_instance(ts, pf, lambda t, p: False)

    def test_drops_irrelevant_tasks_and_machines(self):
        ts = TaskSet([Task(6, 10)] + [Task(1, 100, name=f"x{i}") for i in range(7)])
        pf = Platform.from_speeds([0.25, 0.5, 1.0])

        def predicate(t: TaskSet, p: Platform) -> bool:
            return any(task.utilization > 0.55 for task in t)

        result = shrink_instance(ts, pf, predicate)
        assert len(result.taskset) == 1
        assert len(result.platform) == 1
        assert result.taskset[0].utilization > 0.55

    def test_rescale_mutation_reaches_threshold_minimum(self):
        """Plain dropping lowers total utilization below a threshold
        predicate; the drop+rescale mutation must still reach n=1."""
        ts = TaskSet([Task(2, 10, name=f"t{i}") for i in range(6)])  # U=1.2
        pf = Platform.from_speeds([1.0])

        def predicate(t: TaskSet, p: Platform) -> bool:
            return t.total_utilization > 1.1  # dropping alone breaks this

        result = shrink_instance(ts, pf, predicate)
        assert len(result.taskset) == 1
        assert result.taskset[0].utilization > 1.1

    def test_rounding_produces_tidy_numbers(self):
        ts = TaskSet([Task(0.123456789, 9.87654321)])
        pf = Platform.from_speeds([1.0000001])

        def predicate(t: TaskSet, p: Platform) -> bool:
            return t.total_utilization > 0.001

        result = shrink_instance(ts, pf, predicate)
        assert result.taskset[0].wcet == pytest.approx(0.1, rel=0.5)
        assert result.platform.speeds[0] == 1.0

    def test_crashing_predicate_counts_as_not_reproduced(self):
        ts = TaskSet([Task(1, 10), Task(2, 10)])
        pf = Platform.from_speeds([1.0])

        def predicate(t: TaskSet, p: Platform) -> bool:
            if len(t) < 2:
                raise RuntimeError("boom")
            return True

        result = shrink_instance(ts, pf, predicate)
        assert len(result.taskset) == 2  # reductions that crash are rejected

    def test_respects_budget(self):
        # successful reductions 8->4->2->1 tasks spend exactly 3
        # evaluations; the budget then runs dry mid-platform-phase
        ts = TaskSet([Task(1, 10, name=f"t{i}") for i in range(8)])
        pf = Platform.from_speeds([1.0, 1.0])
        result = shrink_instance(ts, pf, lambda t, p: True, max_evaluations=3)
        assert result.evaluations == 3
        assert result.exhausted
        assert len(result.taskset) == 1
        assert len(result.platform) == 2  # budget died before machine drop


class TestFuzzCampaign:
    def test_clean_run(self, tmp_path):
        out_dir = tmp_path / "ce"
        report = run_fuzz(seed=7, budget=40, jobs=1, out_dir=out_dir)
        assert report.ok
        assert report.trials == 40
        assert sum(report.by_profile.values()) == 40
        assert not list(out_dir.glob("*.json")) if out_dir.exists() else True
        assert "no invariant violations" in report.summary()

    def test_deterministic_across_jobs(self, tmp_path):
        """Findings and summary are bit-identical at any --jobs."""
        a = run_fuzz(seed=3, budget=24, jobs=1, out_dir=None)
        b = run_fuzz(seed=3, budget=24, jobs=2, out_dir=None)
        assert a.summary() == b.summary()
        assert a.by_profile == b.by_profile

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            run_fuzz(seed=0, budget=0)
        with pytest.raises(KeyError):
            run_fuzz(seed=0, budget=1, profiles=["nope"])
        with pytest.raises(ValueError):
            run_fuzz(seed=0, budget=1, checks=["roundtrip"], config=OracleConfig())

    def test_violation_is_shrunk_and_persisted(self, tmp_path):
        """With the broken test injected, run_fuzz must find, shrink and
        persist a replayable counterexample."""
        config = OracleConfig(
            tests=("rms-ll",),
            overrides={"rms-ll": _BrokenLLTest()},
            checks=("theorem-speedup",),
        )
        report = run_fuzz(
            seed=0,
            budget=20,
            jobs=1,
            config=config,
            out_dir=tmp_path / "ce",
            campaign_name="oracle-self-test",
        )
        assert not report.ok
        assert report.counterexamples
        ce = report.counterexamples[0]
        assert ce.invariant == "theorem-speedup"
        assert ce.n_tasks <= 3
        assert ce.path is not None
        data = json.loads(Path(ce.path).read_text())
        assert data["schema"] == COUNTEREXAMPLE_SCHEMA
        assert data["config"]["overrides"] == ["rms-ll"]
        # replaying with the override injected reproduces the violation
        violations = replay_counterexample(ce.path, config=config)
        assert violations
        # replaying against the real (fixed) tests is clean
        assert replay_counterexample(ce.path) == []


class TestReplayFixtures:
    def test_fixture_directory_populated(self):
        assert sorted(p.name for p in FIXTURES.glob("*.json"))

    @pytest.mark.parametrize(
        "name",
        sorted(p.name for p in FIXTURES.glob("*.json")),
    )
    def test_fixtures_no_longer_reproduce(self, name):
        """Each fixture records a historical (or injected) bug; on the
        fixed code, replay must come back clean."""
        assert replay_counterexample(FIXTURES / name) == []

    def test_broken_ll_fixture_reproduces_under_injection(self):
        path = FIXTURES / "theorem-speedup-broken-ll.json"
        config = OracleConfig(
            tests=("rms-ll",),
            overrides={"rms-ll": _BrokenLLTest()},
            checks=("theorem-speedup",),
        )
        violations = replay_counterexample(path, config=config)
        assert violations
        assert violations[0].invariant == "theorem-speedup"

    def test_hyperbolic_fixture_sits_in_tolerance_window(self):
        """The early-exit fixture's product is genuinely between the old
        absolute cutoff and the relative-leq threshold."""
        data = json.loads(
            (FIXTURES / "incremental-vs-oneshot-hyperbolic-earlyexit.json").read_text()
        )
        prod = 1.0
        for t in data["taskset"]["tasks"]:
            prod *= t["wcet"] / t["period"] + 1.0
        assert 2.0 + 1e-9 < prod <= 2.0 + 2e-9

    def test_replay_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError):
            replay_counterexample(bad)


class TestSelfTest:
    def test_catches_and_shrinks_injected_bug(self):
        result = self_test(seed=0)
        assert result.caught
        assert result.invariant == "theorem-speedup"
        assert result.shrunk_tasks <= 3
        assert result.shrunk_machines == 1
        assert result.ok
        assert "self-test ok" in result.summary()

    def test_broken_ll_is_an_over_rejector(self):
        """Sanity: the injected bug rejects sets the real test accepts,
        never the other way round (so only accept-side invariants fire)."""
        broken = _BrokenLLTest()
        real = ADMISSION_TESTS["rms-ll"]
        tasks = [
            Task.from_utilization(0.2, 10),
            Task.from_utilization(0.2, 20),
            Task.from_utilization(0.2, 40),
        ]
        assert real.feasible(tasks, 1.0)
        assert not broken.feasible(tasks, 1.0)
        # one task: bounds coincide, both accept
        single = [Task.from_utilization(0.4, 10)]
        assert real.feasible(single, 1.0)
        assert broken.feasible(single, 1.0)
