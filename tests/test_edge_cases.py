"""Edge-path coverage: boundary and degenerate cases across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbf import demand_bound_horizon, qpa_edf_feasible
from repro.core.feasibility import rms_test_vs_partitioned
from repro.core.model import EPS, Platform, Task, TaskSet
from repro.sim.gantt import render_gantt
from repro.sim.uniprocessor import simulate_taskset_on_machine


class TestRMSCertificatePath:
    def test_rms_rejection_carries_certifying_certificate(self):
        """Theorem I.2's rejection certificate: at alpha = 1+sqrt2, every
        rejection proves no capacity-respecting partition exists."""
        # one slow machine; tasks too heavy to ever coexist
        taskset = TaskSet(
            [Task.from_utilization(0.9, 10.0) for _ in range(3)]
        )
        platform = Platform.from_speeds([1.0])
        report = rms_test_vs_partitioned(taskset, platform)
        assert not report.accepted
        cert = report.certificate
        assert cert is not None
        assert cert.certifies
        # the certificate's numbers are reconstructible by hand:
        # prefix = everything placed + the failing task
        assert cert.prefix_utilization <= taskset.total_utilization + EPS
        assert cert.eligible_capacity == pytest.approx(1.0)

    def test_rms_random_rejections_all_certify(self, rng):
        from repro.workloads.builder import generate_taskset
        from repro.workloads.platforms import geometric_platform

        platform = geometric_platform(3, 4.0)
        found = 0
        for _ in range(300):
            stress = float(rng.uniform(2.0, 3.5))
            taskset = generate_taskset(
                rng, 8, stress * platform.total_speed,
                u_max=2.5 * platform.fastest_speed,
            )
            report = rms_test_vs_partitioned(taskset, platform)
            if not report.accepted:
                found += 1
                assert report.certificate is not None
                assert report.certificate.certifies
            if found >= 25:
                break
        assert found >= 10


class TestDBFHorizonDegenerates:
    def test_implicit_at_full_utilization_trivial_horizon(self):
        # B == 0 (all implicit): horizon collapses to d_max, test passes
        tasks = [Task(5, 10), Task(5, 10)]  # U = 1.0 exactly
        assert demand_bound_horizon(tasks, 1.0) == 10.0
        assert qpa_edf_feasible(tasks, 1.0)

    def test_constrained_at_full_utilization_uses_hyperperiod(self):
        # U == speed with constrained deadlines: La is unbounded, the
        # hyperperiod bound must kick in and the verdict stay exact
        tasks = [Task(2, 4, deadline=3), Task(2, 4, deadline=4)]  # U = 1.0
        h = demand_bound_horizon(tasks, 1.0)
        assert h is not None and h <= 8.0 + 1e-9
        verdict = qpa_edf_feasible(tasks, 1.0)
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=8.0)
        assert verdict == (not trace.any_miss)

    def test_overload_is_none(self):
        assert demand_bound_horizon([Task(3, 2)], 1.0) is None

    def test_huge_coprime_periods_at_full_utilization(self):
        # U == speed, constrained, hyperperiod beyond cap: conservative None
        tasks = [
            Task(9973 / 2, 9973, deadline=5000),
            Task(9967 / 2, 9967, deadline=5000),
        ]
        # U = 1.0; lcm(9973, 9967) ~ 1e8 > default cap in the module? the
        # rationalized lcm is ~9.94e7, above the 1e7 cap -> None
        assert demand_bound_horizon(tasks, 1.0) is None
        assert not qpa_edf_feasible(tasks, 1.0)  # conservative rejection


class TestGanttOptions:
    def test_custom_characters(self):
        tasks = [Task(2, 4)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=8)
        art = render_gantt(
            trace, tasks, width=16, run_char="=", idle_char="_"
        )
        assert "=" in art and "_" in art and "#" not in art

    def test_unnamed_tasks_get_indices(self):
        tasks = [Task(1, 4), Task(1, 6)]
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=12)
        art = render_gantt(trace, tasks, width=12)
        assert "t0" in art and "t1" in art


class TestCLIMachineFilter:
    def test_gantt_single_machine(self, tmp_path, capsys):
        from repro.cli import main

        inst = tmp_path / "i.json"
        main(
            [
                "generate", str(inst), "--tasks", "4", "--machines", "2",
                "--stress", "0.5", "--seed", "9",
            ]
        )
        capsys.readouterr()
        code = main(
            ["gantt", str(inst), "--alpha", "2.0", "--machine", "1",
             "--horizon", "40"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "machine 1" in out
        assert "machine 0" not in out


class TestTaskSetBoundaries:
    def test_taskset_density_vs_utilization(self):
        ts = TaskSet([Task(2, 10, deadline=4), Task(2, 10)])
        assert ts.total_utilization == pytest.approx(0.4)
        assert ts.total_density == pytest.approx(0.5 + 0.2)
        assert not ts.is_implicit

    def test_scaled_preserves_deadline(self):
        t = Task(2, 10, deadline=4).scaled(2.0)
        assert t.deadline == 4.0
        assert t.wcet == 4.0

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            Task(1, 10, deadline=0.0)
        with pytest.raises(ValueError):
            Task(1, 10, deadline=float("inf"))

    def test_arbitrary_deadline_beyond_period_allowed(self):
        t = Task(1, 4, deadline=10)
        assert t.density == pytest.approx(0.25)  # min(d, p) = p
        assert not t.is_implicit
