"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Pin hash randomization for every subprocess the suite spawns (runner
# workers, CLI invocations): campaign seeding is digest-based and hash-
# independent by design, and this keeps the determinism tests honest —
# a regression back to hash() would fail under any fixed PYTHONHASHSEED
# rather than flake across interpreter launches.
os.environ.setdefault("PYTHONHASHSEED", "0")

from repro.core.model import Platform, Task, TaskSet
from repro.workloads.platforms import (
    big_little_platform,
    geometric_platform,
    identical_platform,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_taskset() -> TaskSet:
    """Three tasks with utilizations 0.2, 0.75, 0.75."""
    return TaskSet(
        [
            Task(wcet=2, period=10, name="a"),
            Task(wcet=6, period=8, name="b"),
            Task(wcet=3, period=4, name="c"),
        ]
    )


@pytest.fixture
def unit_machine_platform() -> Platform:
    return identical_platform(1, 1.0)


@pytest.fixture
def hetero_platform() -> Platform:
    """Four machines, speeds 1 .. 8 geometric."""
    return geometric_platform(4, 8.0)


@pytest.fixture
def biglittle() -> Platform:
    return big_little_platform(2, 4, big_speed=3.0, little_speed=1.0)
