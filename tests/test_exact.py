"""Tests for the exact partitioned adversaries (branch-and-bound)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_feasible,
    exact_partitioned_rms_feasible,
)
from repro.core.bounds import rms_rta_feasible
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0 + i) for i, u in enumerate(utils))


class TestExactEDF:
    def test_empty(self):
        assert exact_partitioned_edf_feasible(TaskSet([]), Platform.from_speeds([1.0]))

    def test_trivial_yes(self):
        assert exact_partitioned_edf_feasible(ts(0.5), Platform.from_speeds([1.0]))

    def test_trivial_no_capacity(self):
        assert (
            exact_partitioned_edf_feasible(ts(0.9, 0.9), Platform.from_speeds([1.0]))
            is False
        )

    def test_no_single_machine_fits_biggest(self):
        assert (
            exact_partitioned_edf_feasible(ts(1.2), Platform.from_speeds([1.0, 1.0]))
            is False
        )

    def test_requires_search_beyond_first_fit(self):
        # 0.6, 0.6, 0.4, 0.4 on two unit machines: FFD pairs 0.6+0.4 twice.
        # But 0.5,0.5,0.5,0.3,0.2 on [1,1]: FFD: .5+.5 ->m0, .5+.3+.2 -> m1. ok
        # A case where first-fit fails but exact succeeds:
        # machines [1, 1]; tasks .7, .5, .45, .35 -> FFD: .7->m0, .5->m1,
        # .45->m1 (.95), .35 fails (m0 at .7+.35=1.05, m1 at 1.3).
        # Exact: {.7, .3?} no... {.7,.35}? 1.05>1. Try tasks .7,.55,.45,.3:
        # FFD: .7->m0; .55->m1; .45->m1(1.0); .3: m0=1.0 ✓. hmm succeeds.
        # Use .6,.6,.5,.3 on [1,1]: FFD: .6->m0,.6->m1,.5 fails? m0 1.1,m1 1.1 -> fail
        # exact: {.6,.3}=0.9, {.6,.5}=1.1 no; {.5,.3}=.8 & {.6,.6}=1.2 no -> infeasible. bad.
        # Classic: .55,.55,.45,.45 on [1,1]: FFD: .55->m0, .55->m1, .45->m0(1.0), .45->m1(1.0) ok.
        # Use three machines [1,1,1], tasks .5,.5,.5,.5,.4,.4,.2:
        # FFD: .5.5->m0, .5.5->m1, .4.4.2->m2 = 1.0 OK. fine — construct direct:
        taskset = ts(0.7, 0.5, 0.45, 0.35)
        platform = Platform.from_speeds([1.0, 1.0])
        ff = first_fit_partition(taskset, platform, "edf")
        exact = exact_partitioned_edf_feasible(taskset, platform)
        assert not ff.success
        # exact: {0.7, 0.3?}, pairs: .7+.35=1.05 no; .7 alone + .5+.45=0.95:
        # then .35 left over -> really infeasible? total = 2.0 = capacity:
        # partitions: {.7,.35}|{.5,.45,.35?} -- only 4 tasks: {.7}{.5,.45,.35=1.3} no;
        # {.7,.5=1.2} no. So infeasible; FF agreed for the right reason.
        assert exact is False

    def test_exact_beats_first_fit(self):
        # first-fit-decreasing failure with a feasible partition:
        # machines [1, 1]; tasks .46, .46, .3, .3, .24, .24
        # FFD: .46,.46->m0 (.92); .3->m1... let me use a known FFD-failing set:
        # sizes .44,.44,.28,.28,.28,.28 bins of 1.0 x2: FFD: .44+.44=.88+.28? 1.16 no
        # -> m0: .44,.44; m1: .28,.28,.28 = .84; last .28 -> m0? 1.16 no, m1 1.12 no -> FAIL
        # exact: {.44,.28,.28}=1.0 and {.44,.28,.28}=1.0 -> feasible!
        taskset = ts(0.44, 0.44, 0.28, 0.28, 0.28, 0.28)
        platform = Platform.from_speeds([1.0, 1.0])
        assert not first_fit_partition(taskset, platform, "edf").success
        assert exact_partitioned_edf_feasible(taskset, platform) is True

    def test_heterogeneous_exact(self):
        taskset = ts(1.5, 0.9, 0.5)
        platform = Platform.from_speeds([1.0, 2.0])
        # {1.5}|{0.9,0.5}? 1.4 > 1.0 no; {1.5,0.5}=2.0 on fast, {0.9} on slow ✓
        assert exact_partitioned_edf_feasible(taskset, platform) is True

    def test_node_limit_returns_none(self):
        # a packable but search-heavy instance with a 1-node budget
        taskset = ts(*([0.3] * 12))
        platform = Platform.from_speeds([1.0, 1.0, 1.0, 0.9])
        verdict = exact_partitioned_edf_feasible(taskset, platform, node_limit=1)
        assert verdict in (None, True)  # True if found on the first path

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=9),
        st.lists(st.floats(min_value=0.3, max_value=2.0), min_size=1, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_first_fit_success_implies_exact_feasible(self, utils, speeds):
        """FF at alpha=1 success is a constructive witness."""
        taskset = TaskSet(Task.from_utilization(u, 10.0) for u in utils)
        platform = Platform.from_speeds(speeds)
        if first_fit_partition(taskset, platform, "edf").success:
            assert exact_partitioned_edf_feasible(taskset, platform) is True


class TestExactRMS:
    def test_empty(self):
        assert exact_partitioned_rms_feasible(TaskSet([]), Platform.from_speeds([1.0]))

    def test_single_machine_equals_rta(self, rng):
        platform = Platform.from_speeds([1.0])
        for _ in range(30):
            n = int(rng.integers(1, 5))
            tasks = [
                Task(float(rng.integers(1, 4)), float(rng.integers(4, 20)))
                for _ in range(n)
            ]
            taskset = TaskSet(tasks)
            expect = rms_rta_feasible(list(taskset), 1.0)
            assert exact_partitioned_rms_feasible(taskset, platform) is expect

    def test_rms_stricter_than_edf(self, rng):
        """RMS-partitioned feasible => EDF-partitioned feasible."""
        for _ in range(40):
            n = int(rng.integers(2, 7))
            utils = rng.uniform(0.1, 0.8, size=n)
            taskset = TaskSet(
                Task.from_utilization(float(u), float(rng.integers(4, 40)))
                for u in utils
            )
            platform = Platform.from_speeds(rng.uniform(0.5, 1.5, size=2).tolist())
            if exact_partitioned_rms_feasible(taskset, platform) is True:
                assert exact_partitioned_edf_feasible(taskset, platform) is True

    def test_harmonic_beats_ll(self):
        # full-utilization harmonic set: RMS-RTA partition exists
        taskset = TaskSet([Task(2, 4), Task(2, 8), Task(2, 8)])
        platform = Platform.from_speeds([1.0])
        assert exact_partitioned_rms_feasible(taskset, platform) is True


class TestDispatch:
    def test_dispatch_edf(self):
        assert exact_partitioned_feasible(
            ts(0.5), Platform.from_speeds([1.0]), admission="edf"
        )

    def test_dispatch_rms(self):
        assert exact_partitioned_feasible(
            ts(0.5), Platform.from_speeds([1.0]), admission="rms-rta"
        )

    def test_dispatch_unknown(self):
        with pytest.raises(ValueError):
            exact_partitioned_feasible(
                ts(0.5), Platform.from_speeds([1.0]), admission="x"  # type: ignore[arg-type]
            )
