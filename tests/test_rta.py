"""Unit and property tests for repro.core.rta (response-time analysis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Task
from repro.core.rta import (
    rms_priority_order,
    rms_response_times,
    rms_rta_schedulable,
)
from repro.sim.uniprocessor import simulate_taskset_on_machine


class TestPriorityOrder:
    def test_shorter_period_first(self):
        tasks = [Task(1, 10), Task(1, 5), Task(1, 20)]
        assert rms_priority_order(tasks) == [1, 0, 2]

    def test_tie_break_by_position(self):
        tasks = [Task(1, 5, "a"), Task(1, 5, "b")]
        assert rms_priority_order(tasks) == [0, 1]

    def test_empty(self):
        assert rms_priority_order([]) == []


class TestResponseTimes:
    def test_single_task(self):
        rt = rms_response_times([Task(3, 10)], 1.0)
        assert rt == [pytest.approx(3.0)]

    def test_single_task_speed(self):
        rt = rms_response_times([Task(3, 10)], 2.0)
        assert rt == [pytest.approx(1.5)]

    def test_textbook_example(self):
        # classic: C=(1,2,3), T=(4,6,10): R1=1, R2=1+2=3, R3=...
        tasks = [Task(1, 4), Task(2, 6), Task(3, 10)]
        rt = rms_response_times(tasks, 1.0)
        assert rt is not None
        assert rt[0] == pytest.approx(1.0)
        assert rt[1] == pytest.approx(3.0)
        # R3: 3 + ceil(R/4)*1 + ceil(R/6)*2; fixed point at 10
        assert rt[2] == pytest.approx(10.0)

    def test_unschedulable(self):
        assert rms_response_times([Task(3, 4), Task(2, 5)], 1.0) is None

    def test_order_of_result_matches_input(self):
        tasks = [Task(3, 10), Task(1, 4)]  # input order: low prio first
        rt = rms_response_times(tasks, 1.0)
        assert rt is not None
        assert rt[1] == pytest.approx(1.0)  # high-priority task
        assert rt[0] > rt[1]

    def test_empty(self):
        assert rms_response_times([], 1.0) == []

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            rms_response_times([Task(1, 2)], 0.0)

    def test_boundary_exact_deadline(self):
        # response time exactly equals the deadline: schedulable
        tasks = [Task(2, 4), Task(2, 8)]  # R2 = 2 + ceil(.)*2 ... = 6 <= 8? R2: 2+2=4, 2+ceil(4/4)*2=4 -> 4... wait
        rt = rms_response_times(tasks, 1.0)
        assert rt is not None

    def test_full_harmonic_utilization(self):
        tasks = [Task(1, 2), Task(1, 4), Task(1, 4)]  # U = 1.0, harmonic
        assert rms_rta_schedulable(tasks, 1.0)


class TestRTAAgainstSimulation:
    """RTA is exact for synchronous periodic release: the simulator's
    worst observed response of the *first* job must match RTA, and
    schedulability verdicts must agree over the hyperperiod."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # wcet
                st.sampled_from([4, 5, 8, 10, 16, 20]),  # period
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_verdict_matches_simulation(self, spec):
        tasks = [Task(float(c), float(p)) for c, p in spec]
        if sum(t.utilization for t in tasks) > 1.0:
            return  # overloaded; RTA may diverge slowly — uninteresting here
        verdict = rms_rta_schedulable(tasks, 1.0)
        trace = simulate_taskset_on_machine(tasks, 1.0, "rms")
        assert verdict == (not trace.any_miss)

    def test_response_time_matches_first_job(self):
        tasks = [Task(1, 4), Task(2, 6), Task(3, 10)]
        rt = rms_response_times(tasks, 1.0)
        trace = simulate_taskset_on_machine(tasks, 1.0, "rms")
        assert rt is not None
        for i in range(len(tasks)):
            first = next(
                j for j in trace.jobs if j.task_index == i and j.job_id == 0
            )
            assert first.completion == pytest.approx(rt[i], abs=1e-6)
