"""Tests for serialization and table rendering."""

from __future__ import annotations

import pytest

from repro.core.feasibility import feasibility_test
from repro.core.model import Machine, Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.io_.serialize import (
    canonical_instance,
    canonical_task_order,
    certificate_from_dict,
    certificate_to_dict,
    instance_digest,
    load_json,
    partition_result_from_dict,
    partition_result_to_dict,
    platform_from_dict,
    platform_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.io_.tables import format_table, rows_to_csv, write_csv


class TestSerialization:
    def test_task_roundtrip(self):
        t = Task(wcet=2.5, period=10.0, name="x")
        assert task_from_dict(task_to_dict(t)) == t

    def test_taskset_roundtrip(self, small_taskset):
        assert taskset_from_dict(taskset_to_dict(small_taskset)) == small_taskset

    def test_platform_roundtrip(self, hetero_platform):
        assert platform_from_dict(platform_to_dict(hetero_platform)) == hetero_platform

    def test_exact_float_roundtrip(self):
        t = Task(wcet=1 / 3, period=0.1 + 0.2)
        rt = task_from_dict(task_to_dict(t))
        assert rt.wcet == t.wcet
        assert rt.period == t.period

    def test_json_file_roundtrip(self, tmp_path, small_taskset, hetero_platform):
        path = tmp_path / "instance.json"
        save_json(
            path,
            {
                "taskset": taskset_to_dict(small_taskset),
                "platform": platform_to_dict(hetero_platform),
            },
        )
        data = load_json(path)
        assert taskset_from_dict(data["taskset"]) == small_taskset
        assert platform_from_dict(data["platform"]) == hetero_platform

    def test_verdict_stability_after_roundtrip(
        self, tmp_path, small_taskset, hetero_platform
    ):
        """A reloaded instance produces the identical partition."""
        before = first_fit_partition(small_taskset, hetero_platform, "edf", alpha=2.0)
        path = tmp_path / "i.json"
        save_json(
            path,
            {
                "taskset": taskset_to_dict(small_taskset),
                "platform": platform_to_dict(hetero_platform),
            },
        )
        data = load_json(path)
        after = first_fit_partition(
            taskset_from_dict(data["taskset"]),
            platform_from_dict(data["platform"]),
            "edf",
            alpha=2.0,
        )
        assert before.assignment == after.assignment
        assert before.loads == after.loads

    def test_partition_result_export(self, small_taskset):
        platform = Platform.from_speeds([1.0, 2.0])
        r = first_fit_partition(small_taskset, platform, "edf", alpha=2.0)
        d = partition_result_to_dict(r)
        assert d["success"] == r.success
        assert d["alpha"] == 2.0
        assert d["test_name"] == "edf"
        assert len(d["assignment"]) == len(small_taskset)


class TestReportRoundtrip:
    """report_to_dict / report_from_dict — the one JSON schema shared by
    the CLI `test --json` output and every repro.service response."""

    REJECTED = (
        TaskSet([Task(wcet=9, period=10) for _ in range(5)]),
        Platform.from_speeds([1.0, 1.0]),
    )

    def test_accepted_report_roundtrip(self, small_taskset, hetero_platform):
        report = feasibility_test(small_taskset, hetero_platform)
        assert report.accepted
        assert report_from_dict(report_to_dict(report)) == report

    def test_rejected_report_roundtrip_with_certificate(self):
        taskset, platform = self.REJECTED
        for scheduler in ("edf", "rms"):
            report = feasibility_test(taskset, platform, scheduler)
            assert not report.accepted
            back = report_from_dict(report_to_dict(report))
            assert back == report
            assert back.certificate.certifies == report.certificate.certifies

    def test_json_text_roundtrip(self, small_taskset, hetero_platform):
        import json as json_module

        report = feasibility_test(small_taskset, hetero_platform, "rms", "any")
        text = json_module.dumps(report_to_dict(report))
        assert report_from_dict(json_module.loads(text)) == report

    def test_guarantee_text_is_exported(self, small_taskset, hetero_platform):
        report = feasibility_test(small_taskset, hetero_platform)
        assert report_to_dict(report)["guarantee"] == report.guarantee

    def test_certificate_roundtrip(self):
        taskset, platform = self.REJECTED
        cert = feasibility_test(taskset, platform).certificate
        d = certificate_to_dict(cert)
        assert d["certifies"] == cert.certifies
        assert certificate_from_dict(d) == cert

    def test_partition_result_roundtrip(self, small_taskset, hetero_platform):
        for alpha in (1.0, 2.0):
            r = first_fit_partition(
                small_taskset, hetero_platform, "edf", alpha=alpha
            )
            assert partition_result_from_dict(partition_result_to_dict(r)) == r

    def test_partition_result_reconstructs_machine_tasks(self, small_taskset):
        platform = Platform.from_speeds([1.0, 2.0])
        r = first_fit_partition(small_taskset, platform, "edf", alpha=2.0)
        d = partition_result_to_dict(r)
        del d["machine_tasks"]  # archives from before the field was exported
        assert partition_result_from_dict(d) == r


class TestCanonicalDigest:
    """The service's cache key: order/name-invariant, parameter-sensitive,
    stable across interpreter runs."""

    TASKS = TaskSet(
        [Task(wcet=2, period=10), Task(wcet=6, period=8), Task(wcet=3, period=4)]
    )
    SPEEDS = [1.0, 2.0, 4.0]
    #: sha256 of the canonical JSON — pinned so a silent change to the
    #: canonicalization (which would orphan every cached verdict and any
    #: externally stored digest) fails loudly.
    PINNED = "2a00eb53554f9b2b641c2e0e3368d00c2ec646306430234d5438de08b73e75c9"
    PINNED_QUERY = "465f01de192fd5ffb559d296be84c05d1260572f9c016d3df5962c0392220dbc"

    def _platform(self, speeds=None):
        return Platform.from_speeds(speeds or self.SPEEDS)

    def test_pinned_digest_stable_across_runs(self):
        assert instance_digest(self.TASKS, self._platform()) == self.PINNED

    def test_pinned_digest_with_query(self):
        digest = instance_digest(
            self.TASKS,
            self._platform(),
            query={
                "kind": "test",
                "scheduler": "edf",
                "adversary": "partitioned",
                "alpha": 2.0,
            },
        )
        assert digest == self.PINNED_QUERY

    def test_task_permutation_invariant(self):
        import itertools

        platform = self._platform()
        digests = {
            instance_digest(self.TASKS.subset(perm), platform)
            for perm in itertools.permutations(range(len(self.TASKS)))
        }
        assert digests == {self.PINNED}

    def test_machine_permutation_invariant(self):
        for speeds in ([4.0, 1.0, 2.0], [2.0, 4.0, 1.0]):
            assert (
                instance_digest(self.TASKS, self._platform(speeds)) == self.PINNED
            )

    def test_names_do_not_matter(self):
        named = TaskSet(
            Task(wcet=t.wcet, period=t.period, name=f"task-{i}")
            for i, t in enumerate(self.TASKS)
        )
        platform = Platform(
            Machine(speed=s, name=f"node-{j}") for j, s in enumerate(self.SPEEDS)
        )
        assert instance_digest(named, platform) == self.PINNED

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda t: Task(wcet=t.wcet + 1e-9, period=t.period, deadline=t.deadline),
            lambda t: Task(wcet=t.wcet, period=t.period + 1e-9, deadline=None),
            lambda t: Task(wcet=t.wcet, period=t.period, deadline=t.period / 2),
        ],
    )
    def test_changing_any_task_parameter_changes_digest(self, mutate):
        platform = self._platform()
        for i in range(len(self.TASKS)):
            tasks = list(self.TASKS)
            tasks[i] = mutate(tasks[i])
            assert instance_digest(TaskSet(tasks), platform) != self.PINNED

    def test_changing_any_speed_changes_digest(self):
        for j in range(len(self.SPEEDS)):
            speeds = list(self.SPEEDS)
            speeds[j] += 1e-9
            assert (
                instance_digest(self.TASKS, self._platform(speeds)) != self.PINNED
            )

    def test_query_params_change_digest(self):
        base = instance_digest(self.TASKS, self._platform())
        with_query = instance_digest(
            self.TASKS, self._platform(), query={"kind": "partition"}
        )
        assert base != with_query

    def test_canonical_order_is_utilization_descending(self):
        order = canonical_task_order(self.TASKS)
        utils = [self.TASKS[i].utilization for i in order]
        assert utils == sorted(utils, reverse=True)

    def test_canonical_ties_broken_by_parameters_not_position(self):
        # same utilization, different periods: order must not depend on
        # submission order
        a = Task(wcet=1, period=2)
        b = Task(wcet=2, period=4)
        platform = self._platform()
        d1 = instance_digest(TaskSet([a, b]), platform)
        d2 = instance_digest(TaskSet([b, a]), platform)
        assert d1 == d2
        forward = canonical_task_order(TaskSet([a, b]))
        backward = canonical_task_order(TaskSet([b, a]))
        assert [(
            TaskSet([a, b])[i].period) for i in forward
        ] == [(TaskSet([b, a])[i].period) for i in backward]

    def test_canonical_instance_shape(self):
        canon = canonical_instance(self.TASKS, self._platform())
        assert set(canon) == {"tasks", "speeds"}
        assert canon["speeds"] == sorted(self.SPEEDS)
        assert all(len(triple) == 3 for triple in canon["tasks"])


class TestConstrainedDigest:
    """Deadline-axis coverage for the cache key (satellite of the
    constrained-deadline family): a deadline-only edit must re-key, and
    the invariances must survive non-trivial deadlines."""

    TASKS = TaskSet(
        [
            Task(wcet=2.0, period=10.0, deadline=6.0),
            Task(wcet=6.0, period=8.0, deadline=8.0),
            Task(wcet=3.0, period=4.0, deadline=3.5),
        ]
    )
    SPEEDS = [1.0, 2.0, 4.0]
    #: pinned like TestCanonicalDigest.PINNED — a silent change to how
    #: deadlines enter the canonical form would orphan cached verdicts
    #: for every constrained instance
    PINNED = "f73e304a0607845d96e270ddb8f0de205c3418ac427893d5c23bb6b90cf6585b"

    def _platform(self):
        return Platform.from_speeds(self.SPEEDS)

    def test_pinned_constrained_digest(self):
        assert instance_digest(self.TASKS, self._platform()) == self.PINNED

    def test_deadline_only_change_rekeys(self):
        # same wcet/period/speeds, one deadline nudged: these instances
        # have different feasibility regions, so sharing a cache entry
        # would serve a wrong verdict
        for i in range(len(self.TASKS)):
            tasks = list(self.TASKS)
            t = tasks[i]
            nudged = (
                0.5 * (t.deadline + t.period)
                if t.deadline < t.period
                else t.deadline - 1.0
            )
            tasks[i] = Task(wcet=t.wcet, period=t.period, deadline=nudged)
            mutated = instance_digest(TaskSet(tasks), self._platform())
            assert mutated != self.PINNED, i

    def test_permutation_invariant_with_deadlines(self):
        import itertools

        platform = self._platform()
        digests = {
            instance_digest(self.TASKS.subset(perm), platform)
            for perm in itertools.permutations(range(len(self.TASKS)))
        }
        assert digests == {self.PINNED}

    def test_explicit_implicit_deadline_is_digest_neutral(self):
        # writing deadline = period explicitly is the same instance;
        # exact float identity (10.0 vs 10.0), not a tolerance
        implicit = TaskSet([Task(2.0, 10.0), Task(6.0, 8.0), Task(3.0, 4.0)])
        explicit = TaskSet(
            [
                Task(2.0, 10.0, deadline=10.0),
                Task(6.0, 8.0, deadline=8.0),
                Task(3.0, 4.0, deadline=4.0),
            ]
        )
        platform = self._platform()
        assert instance_digest(implicit, platform) == instance_digest(
            explicit, platform
        )

    def test_canonical_triples_carry_the_deadline(self):
        canon = canonical_instance(self.TASKS, self._platform())
        deadlines = sorted(triple[2] for triple in canon["tasks"])
        assert deadlines == [3.5, 6.0, 8.0]


class TestTables:
    ROWS = [
        {"name": "a", "value": 1.23456, "flag": True},
        {"name": "bb", "value": 2.0, "flag": False},
    ]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="T", precision=2)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text and "yes" in text and "no" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_csv_roundtrip_shape(self):
        csv_text = rows_to_csv(self.ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value,flag"
        assert len(lines) == 3

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, self.ROWS)
        assert path.read_text().startswith("name,value,flag")
