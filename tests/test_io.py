"""Tests for serialization and table rendering."""

from __future__ import annotations

import pytest

from repro.core.model import Machine, Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.io_.serialize import (
    load_json,
    partition_result_to_dict,
    platform_from_dict,
    platform_to_dict,
    save_json,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.io_.tables import format_table, rows_to_csv, write_csv


class TestSerialization:
    def test_task_roundtrip(self):
        t = Task(wcet=2.5, period=10.0, name="x")
        assert task_from_dict(task_to_dict(t)) == t

    def test_taskset_roundtrip(self, small_taskset):
        assert taskset_from_dict(taskset_to_dict(small_taskset)) == small_taskset

    def test_platform_roundtrip(self, hetero_platform):
        assert platform_from_dict(platform_to_dict(hetero_platform)) == hetero_platform

    def test_exact_float_roundtrip(self):
        t = Task(wcet=1 / 3, period=0.1 + 0.2)
        rt = task_from_dict(task_to_dict(t))
        assert rt.wcet == t.wcet
        assert rt.period == t.period

    def test_json_file_roundtrip(self, tmp_path, small_taskset, hetero_platform):
        path = tmp_path / "instance.json"
        save_json(
            path,
            {
                "taskset": taskset_to_dict(small_taskset),
                "platform": platform_to_dict(hetero_platform),
            },
        )
        data = load_json(path)
        assert taskset_from_dict(data["taskset"]) == small_taskset
        assert platform_from_dict(data["platform"]) == hetero_platform

    def test_verdict_stability_after_roundtrip(
        self, tmp_path, small_taskset, hetero_platform
    ):
        """A reloaded instance produces the identical partition."""
        before = first_fit_partition(small_taskset, hetero_platform, "edf", alpha=2.0)
        path = tmp_path / "i.json"
        save_json(
            path,
            {
                "taskset": taskset_to_dict(small_taskset),
                "platform": platform_to_dict(hetero_platform),
            },
        )
        data = load_json(path)
        after = first_fit_partition(
            taskset_from_dict(data["taskset"]),
            platform_from_dict(data["platform"]),
            "edf",
            alpha=2.0,
        )
        assert before.assignment == after.assignment
        assert before.loads == after.loads

    def test_partition_result_export(self, small_taskset):
        platform = Platform.from_speeds([1.0, 2.0])
        r = first_fit_partition(small_taskset, platform, "edf", alpha=2.0)
        d = partition_result_to_dict(r)
        assert d["success"] == r.success
        assert d["alpha"] == 2.0
        assert d["test_name"] == "edf"
        assert len(d["assignment"]) == len(small_taskset)


class TestTables:
    ROWS = [
        {"name": "a", "value": 1.23456, "flag": True},
        {"name": "bb", "value": 2.0, "flag": False},
    ]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="T", precision=2)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text and "yes" in text and "no" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_csv_roundtrip_shape(self):
        csv_text = rows_to_csv(self.ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value,flag"
        assert len(lines) == 3

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, self.ROWS)
        assert path.read_text().startswith("name,value,flag")
