"""Tests for demand bound functions and the QPA exact EDF test."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import admission_test, edf_utilization_feasible
from repro.core.dbf import (
    EDFDemandBoundTest,
    dbf,
    dbf_taskset,
    demand_bound_horizon,
    demand_points,
    edf_demand_feasible,
    qpa_edf_feasible,
)
from repro.core.model import Platform, Task, TaskSet
from repro.core.partition import first_fit_partition, verify_partition
from repro.sim.uniprocessor import simulate_taskset_on_machine

constrained_task = st.builds(
    lambda c, p, frac: Task(
        wcet=float(c),
        period=float(p),
        deadline=max(float(c), round(frac * p, 3)),
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=5, max_value=30),
    st.floats(min_value=0.3, max_value=1.0),
)


class TestDBFValues:
    def test_zero_before_deadline(self):
        t = Task(2, 10, deadline=4)
        assert dbf(t, 3.9) == 0.0

    def test_one_job_at_deadline(self):
        t = Task(2, 10, deadline=4)
        assert dbf(t, 4.0) == 2.0
        assert dbf(t, 13.9) == 2.0

    def test_second_job_at_deadline_plus_period(self):
        t = Task(2, 10, deadline=4)
        assert dbf(t, 14.0) == 4.0
        assert dbf(t, 24.0) == 6.0

    def test_implicit_deadline_matches_utilization_rate(self):
        t = Task(2, 10)
        # dbf(k*p) = k*c exactly
        for k in (1, 2, 7):
            assert dbf(t, k * 10.0) == k * 2.0

    def test_taskset_sum(self):
        tasks = [Task(1, 4), Task(2, 10, deadline=5)]
        # t=5: the period-4 task has one job due (deadline 4; next is 8),
        # the constrained task has one job due (deadline 5)
        assert dbf_taskset(tasks, 5.0) == pytest.approx(1 + 2)
        # t=8 adds the period-4 task's second job
        assert dbf_taskset(tasks, 8.0) == pytest.approx(2 + 2)

    def test_monotone_in_t(self):
        t = Task(3, 7, deadline=5)
        values = [dbf(t, x / 2) for x in range(0, 100)]
        assert values == sorted(values)


class TestHorizonAndPoints:
    def test_horizon_none_when_overloaded(self):
        assert demand_bound_horizon([Task(6, 5)], 1.0) is None

    def test_horizon_at_least_max_deadline(self):
        tasks = [Task(1, 10, deadline=9), Task(1, 8)]
        h = demand_bound_horizon(tasks, 1.0)
        assert h is not None and h >= 9

    def test_points_sorted_and_in_range(self):
        tasks = [Task(1, 4, deadline=3), Task(1, 6)]
        pts = demand_points(tasks, 20.0)
        assert pts == sorted(pts)
        assert all(0 < p <= 20.0 + 1e-9 for p in pts)
        assert 3.0 in pts and 7.0 in pts and 6.0 in pts

    def test_points_budget(self):
        with pytest.raises(RuntimeError):
            demand_points([Task(1, 1, deadline=0.5)], 1e7, max_points=100)


class TestExactTests:
    def test_empty(self):
        assert qpa_edf_feasible([], 1.0)
        assert edf_demand_feasible([], 1.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            qpa_edf_feasible([Task(1, 2)], 0.0)
        with pytest.raises(ValueError):
            edf_demand_feasible([Task(1, 2)], -1.0)

    def test_constrained_stricter_than_implicit(self):
        # U = 0.9 fits as implicit; squeezing the deadline breaks it
        implicit = [Task(4.5, 10), Task(4.5, 10)]
        assert qpa_edf_feasible(implicit, 1.0)
        squeezed = [Task(4.5, 10, deadline=5), Task(4.5, 10, deadline=5)]
        assert not qpa_edf_feasible(squeezed, 1.0)

    def test_known_feasible_constrained(self):
        tasks = [Task(1, 4, deadline=2), Task(2, 8, deadline=6)]
        # dbf: t=2 ->1 <=2; t=6 ->1+1+2=... points 2,6,10: t=6: jobs of t1 due by 6: d+kp=2,6 ->2 jobs=2; t2: 1 job=2 -> 4 <= 6 ok
        assert qpa_edf_feasible(tasks, 1.0)
        assert edf_demand_feasible(tasks, 1.0)

    @given(st.lists(constrained_task, min_size=1, max_size=5))
    @settings(max_examples=150, deadline=None)
    def test_qpa_equals_exhaustive(self, tasks):
        for speed in (0.7, 1.0, 1.6):
            assert qpa_edf_feasible(tasks, speed) == edf_demand_feasible(
                tasks, speed
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.sampled_from([4, 6, 8, 10, 12]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_implicit_case_equals_utilization_test(self, spec):
        """On the paper's model the DBF test must coincide with Thm II.2."""
        tasks = [Task(float(c), float(p)) for c, p in spec]
        for speed in (0.8, 1.0, 1.5):
            assert qpa_edf_feasible(tasks, speed) == edf_utilization_feasible(
                tasks, speed
            )

    @given(st.lists(constrained_task, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_verdict_matches_simulation(self, tasks):
        """Exact test <=> no misses under synchronous periodic release.

        (Synchronous release is the worst case for constrained-deadline
        EDF too; we simulate to the hyperperiod.)
        """
        hp = math.lcm(*(int(t.period) for t in tasks))
        if hp > 4000:
            return
        verdict = qpa_edf_feasible(tasks, 1.0)
        trace = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=float(hp))
        assert verdict == (not trace.any_miss)


class TestBoundaryRegressions:
    """Pins for the scale-aware boundary discipline in ``dbf``.

    The pre-fix code compared with *absolute* ``EPS`` (gate) and floored
    ``(t - d)/p + EPS`` directly.  At large magnitudes the float error of
    the division exceeds 1e-9 absolute, so exact step points ``t = d +
    k*p`` could lose a whole job, and deadlines ~1e12 mis-gated inside
    their relative tolerance window.  These instances are pinned at the
    exact crossovers (cases found by search; any regression flips a
    whole ``wcet``, not a rounding digit).
    """

    def test_exact_step_point_at_large_k(self):
        # (t - d)/p computes to ~1.5e-8 *below* the integer k here: an
        # absolute-EPS floor drops job k+1, the relative tol_floor keeps it.
        p, d, k = 943.5758967723415, 78.6294028066052, 75_648_842
        task = Task(wcet=50.0, period=p, deadline=d)
        t = d + k * p
        assert (t - d) / p < k  # the float hazard this test pins
        assert dbf(task, t) == (k + 1) * 50.0

    def test_more_step_points_at_large_k(self):
        cases = [
            (767.1809133850472, 341.74801562556036, 747_144_855),
            (223.27346066864607, 6.95148700668352, 696_328_470),
            (306.4559816712126, 23.51973702419199, 921_822_829),
        ]
        for p, d, k in cases:
            task = Task(wcet=1.0, period=p, deadline=d)
            t = d + k * p
            assert dbf(task, t) == (k + 1) * 1.0, (p, d, k)

    def test_gate_is_scale_aware_at_large_deadlines(self):
        # deadline 1e12: the tolerance window is EPS-relative (~1000
        # absolute), not 1e-9 absolute.  Inside the window the closed
        # side (demand counted) wins; outside it the gate holds.
        task = Task(wcet=1.0, period=2e12, deadline=1e12)
        assert dbf(task, 1e12 - 500.0) == 1.0  # inside the window
        assert dbf(task, 1e12 - 5000.0) == 0.0  # beyond it
        assert dbf(task, 1e12) == 1.0

    def test_qpa_agrees_with_reference_at_step_points(self):
        # the same crossover arithmetic drives QPA's downward walk; the
        # reference evaluator and QPA must agree on a set engineered so
        # the critical point sits at a large-k step
        tasks = [
            Task(wcet=50.0, period=943.5758967723415, deadline=78.6294028066052),
            Task(wcet=1.0, period=7.3, deadline=3.1),
        ]
        for speed in (0.15, 0.2, 0.25, 0.5):
            assert qpa_edf_feasible(tasks, speed) == edf_demand_feasible(
                tasks, speed
            ), speed


class TestDBFAdmission:
    def test_registered_by_name(self):
        assert isinstance(admission_test("edf-dbf"), EDFDemandBoundTest)

    def test_partitions_constrained_sets(self):
        ts = TaskSet(
            [
                Task(2, 10, deadline=3),
                Task(4, 8, deadline=8),
                Task(1, 4, deadline=2),
                Task(3, 12, deadline=6),
            ]
        )
        pf = Platform.from_speeds([1.0, 2.0])
        r = first_fit_partition(ts, pf, "edf-dbf")
        assert r.success
        assert verify_partition(r, ts, pf)

    def test_incremental_matches_oneshot(self, rng):
        test = admission_test("edf-dbf")
        for _ in range(25):
            speed = float(rng.uniform(0.5, 2.0))
            state = test.open(speed)
            accepted = []
            for _ in range(4):
                p = float(rng.integers(5, 20))
                c = float(rng.integers(1, 5))
                d = float(rng.integers(max(1, int(c)), int(p) + 1))
                t = Task(c, p, deadline=d)
                if state.admits(t):
                    state.add(t)
                    accepted.append(t)
                    assert test.feasible(accepted, speed)

    def test_theorem_tests_reject_constrained_sets(self):
        from repro.core.feasibility import edf_test_vs_partitioned

        ts = TaskSet([Task(1, 10, deadline=5)])
        with pytest.raises(ValueError, match="implicit"):
            edf_test_vs_partitioned(ts, Platform.from_speeds([1.0]))
