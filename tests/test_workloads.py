"""Tests for the workload generators (utilizations, periods, platforms)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.periods import (
    choice_periods,
    deadline_ratios,
    harmonic_periods,
    log_uniform_periods,
)
from repro.workloads.platforms import (
    big_little_platform,
    geometric_platform,
    identical_platform,
    normalized,
    random_platform,
)
from repro.workloads.randfixedsum import randfixedsum
from repro.workloads.uunifast import uunifast, uunifast_discard


class TestUUniFast:
    def test_sums_to_target(self, rng):
        for n in (1, 2, 5, 20):
            u = uunifast(rng, n, 3.0)
            assert u.sum() == pytest.approx(3.0)
            assert (u >= 0).all()
            assert len(u) == n

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            uunifast(rng, 0, 1.0)
        with pytest.raises(ValueError):
            uunifast(rng, 3, 0.0)

    def test_distribution_mean(self, rng):
        """Each coordinate's marginal mean on the simplex is U/n."""
        draws = np.array([uunifast(rng, 4, 2.0) for _ in range(3000)])
        assert draws.mean(axis=0) == pytest.approx([0.5] * 4, abs=0.03)

    def test_deterministic_for_seed(self):
        a = uunifast(np.random.default_rng(5), 6, 1.0)
        b = uunifast(np.random.default_rng(5), 6, 1.0)
        assert np.array_equal(a, b)


class TestUUniFastDiscard:
    def test_respects_cap(self, rng):
        for _ in range(50):
            u = uunifast_discard(rng, 6, 3.0, u_max=0.8)
            assert (u <= 0.8 + 1e-12).all()
            assert u.sum() == pytest.approx(3.0)

    def test_impossible_target(self, rng):
        with pytest.raises(ValueError):
            uunifast_discard(rng, 3, 4.0, u_max=1.0)

    def test_invalid_umax(self, rng):
        with pytest.raises(ValueError):
            uunifast_discard(rng, 3, 1.0, u_max=0.0)


class TestRandFixedSum:
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_and_bounds(self, n, frac):
        rng = np.random.default_rng(n * 1000 + int(frac * 100))
        total = frac * n
        x = randfixedsum(rng, n, total, low=0.0, high=1.0)
        assert x.shape == (1, n)
        assert x.sum() == pytest.approx(total, abs=1e-9)
        assert (x >= -1e-12).all() and (x <= 1 + 1e-12).all()

    def test_custom_bounds(self, rng):
        x = randfixedsum(rng, 5, 2.0, low=0.1, high=0.8, nsets=20)
        assert x.shape == (20, 5)
        assert np.allclose(x.sum(axis=1), 2.0)
        assert (x >= 0.1 - 1e-12).all() and (x <= 0.8 + 1e-12).all()

    def test_single_value(self, rng):
        x = randfixedsum(rng, 1, 0.7)
        assert x[0, 0] == pytest.approx(0.7)

    def test_empty_polytope(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(rng, 3, 5.0, low=0.0, high=1.0)
        with pytest.raises(ValueError):
            randfixedsum(rng, 3, 0.1, low=0.2, high=1.0)

    def test_degenerate_bounds(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(rng, 3, 1.0, low=0.5, high=0.5)

    def test_invalid_counts(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(rng, 0, 1.0)
        with pytest.raises(ValueError):
            randfixedsum(rng, 2, 1.0, nsets=0)

    def test_marginal_mean(self, rng):
        """Uniformity sanity: coordinates should average total/n."""
        x = randfixedsum(rng, 4, 2.0, low=0.0, high=1.0, nsets=4000)
        assert x.mean(axis=0) == pytest.approx([0.5] * 4, abs=0.03)

    def test_tight_constraint_no_rejection(self, rng):
        """The case rejection sampling cannot handle: high total with a
        low per-task cap."""
        x = randfixedsum(rng, 30, 12.0, low=0.1, high=0.9, nsets=5)
        assert np.allclose(x.sum(axis=1), 12.0)
        assert (x >= 0.1 - 1e-9).all() and (x <= 0.9 + 1e-9).all()


class TestPeriods:
    def test_log_uniform_range(self, rng):
        p = log_uniform_periods(rng, 500, p_min=10, p_max=1000)
        assert (p >= 10).all() and (p <= 1000).all()
        # log-uniform: median near geometric mean ~ 100
        assert 60 < np.median(p) < 170

    def test_granularity_rounds_up(self, rng):
        p = log_uniform_periods(rng, 100, p_min=3, p_max=50, granularity=1.0)
        assert np.allclose(p, np.round(p))
        assert (p >= 3).all()

    def test_invalid_ranges(self, rng):
        with pytest.raises(ValueError):
            log_uniform_periods(rng, 5, p_min=100, p_max=10)
        with pytest.raises(ValueError):
            log_uniform_periods(rng, 0)
        with pytest.raises(ValueError):
            log_uniform_periods(rng, 5, granularity=-1.0)

    def test_harmonic_divisibility(self, rng):
        p = harmonic_periods(rng, 50, base=10, levels=4)
        for a in p:
            for b in p:
                big, small = max(a, b), min(a, b)
                assert big % small == pytest.approx(0.0)

    def test_harmonic_invalid(self, rng):
        with pytest.raises(ValueError):
            harmonic_periods(rng, 0)
        with pytest.raises(ValueError):
            harmonic_periods(rng, 5, levels=0)
        with pytest.raises(ValueError):
            harmonic_periods(rng, 5, base=-1)

    def test_choice_periods(self, rng):
        p = choice_periods(rng, 100, [5.0, 10.0])
        assert set(np.unique(p)) <= {5.0, 10.0}

    def test_choice_invalid(self, rng):
        with pytest.raises(ValueError):
            choice_periods(rng, 5, [])
        with pytest.raises(ValueError):
            choice_periods(rng, 5, [1.0, -2.0])


class TestDeadlineRatios:
    def test_uniform_range(self, rng):
        r = deadline_ratios(rng, 500, dr_min=0.4, dr_max=0.9)
        assert r.shape == (500,)
        assert np.all((r >= 0.4) & (r <= 0.9))

    def test_loguniform_range_and_bias(self, rng):
        r = deadline_ratios(
            rng, 4000, distribution="loguniform", dr_min=0.1, dr_max=1.0
        )
        assert np.all((r >= 0.1) & (r <= 1.0))
        # equal mass per decade-fraction: the geometric midpoint splits
        # the draws evenly, so well under half sit above the arithmetic
        # midpoint 0.55 (a uniform draw would put half there)
        assert np.mean(r > 0.55) < 0.45

    def test_degenerate_interval_is_constant(self, rng):
        r = deadline_ratios(rng, 10, dr_min=0.7, dr_max=0.7)
        assert np.allclose(r, 0.7)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            deadline_ratios(rng, 0)
        with pytest.raises(ValueError):
            deadline_ratios(rng, 5, dr_min=0.0)
        with pytest.raises(ValueError):
            deadline_ratios(rng, 5, dr_min=0.9, dr_max=0.5)
        with pytest.raises(ValueError):
            deadline_ratios(rng, 5, distribution="gaussian")


class TestPlatforms:
    def test_identical(self):
        p = identical_platform(3, 2.0)
        assert p.speeds == (2.0, 2.0, 2.0)

    def test_geometric_ratio(self):
        p = geometric_platform(5, 16.0)
        assert p.heterogeneity_ratio == pytest.approx(16.0)
        # consecutive ratios equal
        ratios = [p.speeds[i + 1] / p.speeds[i] for i in range(4)]
        assert max(ratios) == pytest.approx(min(ratios))

    def test_geometric_single_machine(self):
        p = geometric_platform(1, 8.0, slowest=2.0)
        assert p.speeds == (2.0,)

    def test_geometric_invalid(self):
        with pytest.raises(ValueError):
            geometric_platform(0, 2.0)
        with pytest.raises(ValueError):
            geometric_platform(3, 0.5)

    def test_big_little(self):
        p = big_little_platform(2, 3, big_speed=4.0, little_speed=1.0)
        assert len(p) == 5
        assert p.speeds == (1.0, 1.0, 1.0, 4.0, 4.0)

    def test_big_little_invalid(self):
        with pytest.raises(ValueError):
            big_little_platform(0, 0)

    def test_random_platform_bounds(self, rng):
        for log_scale in (True, False):
            p = random_platform(
                rng, 20, min_speed=0.5, max_speed=3.0, log_scale=log_scale
            )
            assert all(0.5 <= s <= 3.0 for s in p.speeds)

    def test_random_platform_invalid(self, rng):
        with pytest.raises(ValueError):
            random_platform(rng, 0)
        with pytest.raises(ValueError):
            random_platform(rng, 3, min_speed=2.0, max_speed=1.0)

    def test_normalized(self):
        p = normalized(geometric_platform(4, 8.0), 10.0)
        assert p.total_speed == pytest.approx(10.0)
        assert p.heterogeneity_ratio == pytest.approx(8.0)

    def test_normalized_invalid(self):
        with pytest.raises(ValueError):
            normalized(identical_platform(2), 0.0)
