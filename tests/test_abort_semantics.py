"""Tests for firm-deadline (abort-on-miss) simulation semantics."""

from __future__ import annotations

import pytest

from repro.core.model import Task
from repro.sim.uniprocessor import simulate_taskset_on_machine
from repro.sim.validators import validate_all


class TestAbortOnMiss:
    def test_schedulable_sets_unaffected(self):
        tasks = [Task(2, 6), Task(2, 8)]
        cont = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=24)
        abort = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=24, on_miss="abort"
        )
        assert cont.segments == abort.segments
        assert cont.jobs == abort.jobs

    def test_aborted_job_is_incomplete_and_missed(self):
        # two jobs due at 4 needing 6 total: one is cut at its deadline
        tasks = [Task(3, 4), Task(3, 4)]
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=4, on_miss="abort"
        )
        missed = [j for j in trace.jobs if j.missed]
        assert len(missed) == 1
        assert missed[0].completion is None

    def test_abort_frees_capacity_for_later_jobs(self):
        """In continue mode an overrunning job steals from successors;
        abort mode contains the damage to the offending job."""
        tasks = [Task(5, 4, deadline=4)]  # each job needs 5 in a window of 4
        cont = simulate_taskset_on_machine(tasks, 1.0, "edf", horizon=20)
        abort = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=20, on_miss="abort"
        )
        # continue: backlog snowballs, everything released late misses
        assert all(j.missed for j in cont.jobs if j.deadline <= 20)
        # abort: every job gets its own window; all still miss (5 > 4) but
        # each executes exactly 4 units then dies at its deadline
        for job in abort.jobs:
            if job.deadline <= 20:
                assert job.missed and job.completion is None
        # executed work per aborted job is its full window
        per_job = {}
        for seg in abort.segments:
            per_job.setdefault(seg.job_id, 0.0)
            per_job[seg.job_id] += seg.duration
        assert all(v == pytest.approx(4.0) for v in per_job.values())

    def test_abort_rescues_followers(self):
        # an infeasible heavy job would (in continue mode) delay a light
        # task past its deadline; aborting it saves the light task
        from repro.sim.jobs import PeriodicSource
        from repro.sim.uniprocessor import simulate_uniprocessor

        tasks = [Task(6, 100, deadline=5, name="doomed"), Task(2, 8, name="light")]
        src = lambda: [
            PeriodicSource(tasks[0], 0),
            PeriodicSource(tasks[1], 1, offset=4.0),
        ]
        cont = simulate_uniprocessor(tasks, 1.0, "edf", src(), 13.0)
        abort = simulate_uniprocessor(
            tasks, 1.0, "edf", src(), 13.0, on_miss="abort"
        )
        light_cont = next(j for j in cont.jobs if j.task_index == 1)
        light_abort = next(j for j in abort.jobs if j.task_index == 1)
        assert light_abort.completion < light_cont.completion
        assert not light_abort.missed

    def test_abort_traces_validate(self):
        tasks = [Task(3, 4), Task(3, 5), Task(1, 7)]  # overloaded
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=140, on_miss="abort"
        )
        assert trace.any_miss
        assert validate_all(trace, tasks) == []

    def test_stop_on_first_miss_with_abort(self):
        tasks = [Task(3, 4), Task(3, 5)]
        trace = simulate_taskset_on_machine(
            tasks, 1.0, "edf", horizon=100, on_miss="abort",
            stop_on_first_miss=True,
        )
        assert trace.any_miss
        assert trace.horizon < 100
