"""Tests for repro.loadgen: arrivals, profiles, harness, client, CLI.

The generator's whole value is replayability — every sequence it emits
(corpus bodies, access order, arrival times) must be a pure function of
the profile seed — so most tests here are determinism tests.  The
harness smoke tests drive a real in-thread single-process server, the
same topology the CI loadgen smoke job exercises against the sharded
one.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.loadgen import (
    PROFILES,
    HttpClient,
    HttpError,
    LoadReport,
    burst_arrivals,
    poisson_arrivals,
    run_load,
)
from repro.loadgen.harness import percentile
from repro.loadgen.profiles import (
    build_corpus,
    request_indices,
    stream_seed,
    zipf_draws,
)
from repro.service.server import make_server
from repro.service.validation import parse_test_request


class TestArrivals:
    def test_poisson_is_deterministic(self):
        a = poisson_arrivals(np.random.default_rng(42), 100.0, 5.0)
        b = poisson_arrivals(np.random.default_rng(42), 100.0, 5.0)
        assert a == b

    def test_poisson_offsets_are_increasing_and_bounded(self):
        offsets = poisson_arrivals(np.random.default_rng(0), 50.0, 4.0)
        assert all(0.0 < t < 4.0 for t in offsets)
        assert offsets == sorted(offsets)

    def test_poisson_rate_is_roughly_honoured(self):
        # Mean count is rate*duration = 2000; 5 sigma ~ +/- 224.
        count = len(poisson_arrivals(np.random.default_rng(7), 200.0, 10.0))
        assert 1776 < count < 2224

    def test_poisson_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 10.0, 0.0)

    def test_burst_is_deterministic_and_bounded(self):
        a = burst_arrivals(np.random.default_rng(3), 50.0, 200.0, 6.0)
        b = burst_arrivals(np.random.default_rng(3), 50.0, 200.0, 6.0)
        assert a == b
        assert all(0.0 < t < 6.0 for t in a)
        assert a == sorted(a)

    def test_burst_phases_actually_surge(self):
        offsets = burst_arrivals(
            np.random.default_rng(11), 40.0, 400.0, 20.0,
            period=2.0, burst_fraction=0.25,
        )
        in_burst = sum(1 for t in offsets if (t % 2.0) < 0.5)
        outside = len(offsets) - in_burst
        # Burst windows cover 25% of the time but a 10x rate: the burst
        # share of arrivals must dominate despite the smaller window.
        assert in_burst > 2 * outside

    def test_burst_rejects_inverted_rates(self):
        with pytest.raises(ValueError):
            burst_arrivals(np.random.default_rng(0), 100.0, 50.0, 1.0)


class TestPercentile:
    def test_nearest_rank_edges(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) == 2.0
        assert percentile(samples, 75) == 3.0
        assert percentile(samples, 76) == 4.0
        assert percentile(samples, 100) == 4.0

    def test_single_sample(self):
        assert percentile([5.0], 1) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestStreamSeed:
    def test_distinct_across_streams_and_clients(self):
        seeds = {
            stream_seed(20160516, stream, client)
            for stream in range(4)
            for client in range(16)
        }
        assert len(seeds) == 64

    def test_pure_integer_derivation(self):
        # Replayable across processes regardless of PYTHONHASHSEED.
        assert stream_seed(1, 2, 3) == stream_seed(1, 2, 3)
        assert isinstance(stream_seed(1, 2, 3), int)


class TestRequestIndices:
    def test_scan_clients_are_staggered(self):
        profile = PROFILES["closed-warm"]
        w, clients = profile.working_set, profile.concurrency
        starts = [request_indices(profile, c, 1)[0] for c in range(clients)]
        assert starts == [(c * w) // clients for c in range(clients)]
        assert len(set(starts)) == clients

    def test_scan_wraps_cyclically(self):
        profile = PROFILES["smoke"]
        w = profile.working_set
        seq = request_indices(profile, 0, 2 * w + 3)
        assert seq[:w] == list(range(w))
        assert seq[w] == 0
        assert seq[2 * w + 2] == 2

    def test_scan_union_covers_the_working_set(self):
        profile = PROFILES["closed-warm"]
        w = profile.working_set
        per_client = w // profile.concurrency
        touched = {
            k
            for c in range(profile.concurrency)
            for k in request_indices(profile, c, per_client)
        }
        assert touched == set(range(w))

    def test_zipf_is_deterministic_per_client(self):
        profile = PROFILES["zipf-skew"]
        assert (
            request_indices(profile, 3, 500)
            == request_indices(profile, 3, 500)
        )
        assert (
            request_indices(profile, 3, 500)
            != request_indices(profile, 4, 500)
        )

    def test_zipf_is_skewed_toward_low_ranks(self):
        draws = zipf_draws(np.random.default_rng(5), 256, 1.1, 4000)
        top = sum(1 for d in draws if d < 8)
        assert top > len(draws) // 4  # 8 of 256 keys take >25% of traffic
        assert all(0 <= d < 256 for d in draws)

    def test_unknown_access_pattern_raises(self):
        profile = PROFILES["smoke"].__class__(
            **{**PROFILES["smoke"].__dict__, "access": "lifo"}
        )
        with pytest.raises(ValueError):
            request_indices(profile, 0, 1)


class TestBuildCorpus:
    def test_bytes_are_deterministic(self):
        profile = PROFILES["smoke"]
        assert build_corpus(profile) == build_corpus(profile)

    def test_entries_are_distinct_valid_requests(self):
        profile = PROFILES["smoke"]
        corpus = build_corpus(profile)
        assert len(corpus) == profile.working_set
        assert len(set(corpus)) == profile.working_set
        for raw in corpus:
            query = parse_test_request(json.loads(raw))
            assert query.scheduler == profile.scheduler
            assert query.adversary == profile.adversary
            assert len(query.taskset) == profile.n_tasks
            assert len(query.platform) == profile.n_machines

    def test_seed_override_changes_the_corpus(self):
        profile = PROFILES["smoke"]
        assert build_corpus(profile) != build_corpus(
            profile.with_overrides(seed=1)
        )


class TestProfiles:
    def test_registry_is_consistent(self):
        for name, profile in PROFILES.items():
            assert profile.name == name
            assert profile.mode in ("closed", "open")
            assert profile.access in ("scan", "zipf")
            assert profile.working_set > 0

    def test_overrides_only_touch_requested_fields(self):
        base = PROFILES["closed-warm"]
        tweaked = base.with_overrides(duration=1.0)
        assert tweaked.duration == 1.0
        assert tweaked.working_set == base.working_set
        assert tweaked.seed == base.seed
        assert base.duration != 1.0  # frozen original untouched

    def test_as_dict_hides_open_loop_fields_for_closed(self):
        d = PROFILES["closed-hot"].as_dict()
        assert d["arrivals"] is None and d["rate"] is None
        d = PROFILES["open-poisson"].as_dict()
        assert d["arrivals"] == "poisson" and d["rate"] == 200.0


@pytest.fixture(scope="module")
def live_server():
    srv = make_server(port=0, cache_size=256)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield host, port
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()


class TestHttpClient:
    def test_keep_alive_get_and_post(self, live_server):
        host, port = live_server
        corpus = build_corpus(PROFILES["smoke"])
        with HttpClient(host, port) as http:
            status, body = http.request("GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            status, body = http.request("POST", "/v1/test", corpus[0])
            assert status == 200
            # Same socket, next request still works (keep-alive).
            status, _ = http.request("POST", "/v1/test", corpus[0])
            assert status == 200

    def test_error_statuses_are_returned_not_raised(self, live_server):
        host, port = live_server
        with HttpClient(host, port) as http:
            status, body = http.request("POST", "/v1/test", b"not json")
            assert status == 400
            assert b"error" in body

    def test_connect_failure_raises_http_error(self):
        with HttpClient("127.0.0.1", 1) as http:
            with pytest.raises(HttpError):
                http.request("GET", "/healthz")


class TestRunLoad:
    def test_closed_loop_smoke(self, live_server):
        host, port = live_server
        profile = PROFILES["smoke"].with_overrides(duration=1.0)
        report = run_load(host, port, profile)
        assert report.requests > 0
        assert report.errors == 0
        assert report.status_counts == {"200": report.requests}
        assert report.rps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert report.open_loop is None
        assert report.server is not None and report.server["status"] == "ok"
        assert "req/s" in report.summary()

    def test_open_loop_smoke(self, live_server):
        host, port = live_server
        profile = PROFILES["open-poisson"].with_overrides(
            duration=1.0, rate=40.0
        )
        corpus = build_corpus(
            PROFILES["smoke"].with_overrides(seed=profile.seed)
        )
        # The open driver indexes corpus[0..working_set); reuse the tiny
        # smoke corpus by shrinking the indexed range to its size.
        profile = profile.__class__(
            **{**profile.__dict__, "working_set": len(corpus)}
        )
        report = run_load(host, port, profile, corpus=corpus)
        assert report.errors == 0
        assert report.open_loop is not None
        assert report.requests == report.open_loop["offered"] > 0
        assert report.open_loop["lateness_ms"]["p99"] >= 0.0
        assert "offered" in report.summary()

    def test_report_round_trips_through_json(self, live_server):
        host, port = live_server
        profile = PROFILES["smoke"].with_overrides(duration=0.5)
        report = run_load(host, port, profile)
        decoded = json.loads(json.dumps(report.as_dict()))
        assert decoded["requests"] == report.requests
        assert decoded["profile"]["name"] == "smoke"


class TestLoadgenCli:
    def test_list_profiles(self, capsys):
        assert cli_main(["loadgen", "--list-profiles"]) == 0
        out = capsys.readouterr().out
        for name in PROFILES:
            assert name in out

    def test_port_is_required(self, capsys):
        assert cli_main(["loadgen"]) == 2
        assert "--port is required" in capsys.readouterr().err

    def test_unknown_profile_is_rejected(self, capsys):
        assert cli_main(["loadgen", "--port", "1", "--profile", "nope"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_end_to_end_against_live_server(
        self, live_server, capsys, tmp_path
    ):
        host, port = live_server
        out_json = tmp_path / "report.json"
        code = cli_main(
            [
                "loadgen",
                "--host", host,
                "--port", str(port),
                "--profile", "smoke",
                "--duration", "1.0",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "req/s" in captured
        report = json.loads(out_json.read_text())
        assert report["errors"] == 0
        assert report["requests"] > 0
        assert report["profile"]["duration"] == 1.0
