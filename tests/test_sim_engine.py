"""Tests for the event-queue primitive and hyperperiod helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.model import Task
from repro.sim.engine import EventQueue
from repro.sim.hyperperiod import default_horizon, hyperperiod


class TestEventQueue:
    def test_orders_by_time(self):
        q: EventQueue[str] = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        q: EventQueue[str] = EventQueue()
        for name in "abc":
            q.push(1.0, name)
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_peek_time(self):
        q: EventQueue[int] = EventQueue()
        assert math.isinf(q.peek_time())
        q.push(5.0, 1)
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_bool_and_len(self):
        q: EventQueue[int] = EventQueue()
        assert not q
        q.push(1.0, 0)
        assert q and len(q) == 1
        q.pop()
        assert not q


class TestHyperperiod:
    def test_integer_periods(self):
        assert hyperperiod([4, 6, 10]) == 60.0

    def test_single(self):
        assert hyperperiod([7]) == 7.0

    def test_non_integer_returns_none(self):
        assert hyperperiod([4.5, 6]) is None

    def test_float_that_is_integer_ok(self):
        assert hyperperiod([4.0, 8.0]) == 8.0

    def test_cap(self):
        assert hyperperiod([9973, 9967, 9949], cap=10_000) is None

    def test_empty(self):
        assert hyperperiod([]) is None

    def test_nonpositive_returns_none(self):
        assert hyperperiod([0]) is None


class TestDefaultHorizon:
    def test_uses_hyperperiod(self):
        tasks = [Task(1, 4), Task(1, 6)]
        assert default_horizon(tasks) == 12.0

    def test_falls_back_to_factor(self):
        tasks = [Task(1, 4.5), Task(1, 6.1)]
        assert default_horizon(tasks, factor=10.0) == pytest.approx(61.0)

    def test_empty(self):
        assert default_horizon([]) == 0.0
