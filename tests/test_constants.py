"""Tests for the §IV/§V constants, conditions, and the optimizer."""

from __future__ import annotations

import math

import pytest

from repro.core.constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_EDF_PRIOR,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
    ALPHA_RMS_PRIOR,
    EDF_LP_CONSTANTS,
    RMS_LP_CONSTANTS,
    ProofConstants,
    alpha_frontier,
    best_constants_for_alpha,
    conditions,
    constants_valid,
    edf_conditions,
    f_im,
    minimal_alpha,
    rms_conditions,
)


class TestHeadlineAlphas:
    def test_partitioned_alphas(self):
        assert ALPHA_EDF_PARTITIONED == 2.0
        assert ALPHA_RMS_PARTITIONED == pytest.approx(1 + math.sqrt(2))

    def test_lp_alphas_match_paper(self):
        assert ALPHA_EDF_LP == 2.98
        assert ALPHA_RMS_LP == 3.34

    def test_prior_work_alphas(self):
        assert ALPHA_EDF_PRIOR == 3.0
        assert ALPHA_RMS_PRIOR == pytest.approx(2 + math.sqrt(2))

    def test_improvements_are_strict(self):
        # the paper's contribution: each new bound beats the prior one
        assert ALPHA_EDF_PARTITIONED < ALPHA_EDF_PRIOR
        assert ALPHA_EDF_LP < ALPHA_EDF_PRIOR
        assert ALPHA_RMS_PARTITIONED < ALPHA_RMS_PRIOR
        assert ALPHA_RMS_LP < ALPHA_RMS_PRIOR


class TestPaperConstants:
    def test_edf_constants_as_printed(self):
        pc = EDF_LP_CONSTANTS
        assert (pc.alpha, pc.c_s, pc.c_f) == (2.98, 2.868, 28.412)
        assert (pc.f_w, pc.f_f) == (0.811, 0.125)

    def test_rms_constants_as_printed(self):
        pc = RMS_LP_CONSTANTS
        assert (pc.alpha, pc.c_s, pc.c_f) == (3.34, 2.00, 13.25)
        assert (pc.f_w, pc.f_f) == (0.72, 0.1956)

    def test_edf_conditions_exceed_one(self):
        conds = edf_conditions(EDF_LP_CONSTANTS)
        for name, value in conds.items():
            assert value > 1.0, f"{name} = {value}"

    def test_edf_condition_margins_match_paper(self):
        # the paper states the fast-case expression evaluates to ~1.005;
        # exact arithmetic on its constants gives 1.0005 — we verify the
        # computed values are just above 1 and below 1.01.
        conds = edf_conditions(EDF_LP_CONSTANTS)
        for value in conds.values():
            assert 1.0 < value < 1.01

    def test_rms_conditions_exceed_one(self):
        conds = rms_conditions(RMS_LP_CONSTANTS)
        for name, value in conds.items():
            assert value > 1.0, f"{name} = {value}"
        # paper: ~1.004 (fast-case), ~1.003 (split)
        assert conds["fast-case"] == pytest.approx(1.0034, abs=2e-3)
        assert conds["split"] == pytest.approx(1.004, abs=2e-3)

    def test_constants_valid(self):
        assert constants_valid(EDF_LP_CONSTANTS, "edf")
        assert constants_valid(RMS_LP_CONSTANTS, "rms")

    def test_smaller_alpha_breaks_validity(self):
        import dataclasses

        weakened = dataclasses.replace(EDF_LP_CONSTANTS, alpha=2.5)
        assert not constants_valid(weakened, "edf")

    def test_side_constraints(self):
        import dataclasses

        bad_cs = dataclasses.replace(EDF_LP_CONSTANTS, c_s=1.5)
        assert not constants_valid(bad_cs, "edf")
        bad_fw = dataclasses.replace(EDF_LP_CONSTANTS, f_w=1.5)
        assert not constants_valid(bad_fw, "edf")


class TestFim:
    def test_edf_value(self):
        # with the paper's EDF constants f_im ~ 0.828
        v = f_im(2.98, 2.868, 0.125)
        assert v == pytest.approx(0.828, abs=2e-3)

    def test_positive_in_valid_region(self):
        assert f_im(2.98, 2.868, 0.125) > 0
        assert f_im(3.34, 2.0, 0.1956) > 0

    def test_invalid_cs(self):
        with pytest.raises(ValueError):
            f_im(2.0, 0.9, 0.1)

    def test_dispatch(self):
        assert conditions(EDF_LP_CONSTANTS, "edf") == edf_conditions(EDF_LP_CONSTANTS)
        with pytest.raises(ValueError):
            conditions(EDF_LP_CONSTANTS, "bogus")  # type: ignore[arg-type]


class TestOptimizer:
    def test_edf_minimum_matches_paper(self):
        alpha, pc = minimal_alpha("edf", grid=80)
        assert alpha == pytest.approx(2.98, abs=0.01)
        assert constants_valid(pc, "edf")
        # the optimal constants land near the printed ones
        assert pc.c_s == pytest.approx(2.868, abs=0.1)
        assert pc.f_w == pytest.approx(0.811, abs=0.05)

    def test_rms_minimum_matches_paper(self):
        alpha, pc = minimal_alpha("rms", grid=80)
        assert alpha == pytest.approx(3.34, abs=0.015)
        assert constants_valid(pc, "rms")
        assert pc.c_s == pytest.approx(2.0, abs=0.1)

    def test_best_constants_slack_consistent(self):
        pc, slack = best_constants_for_alpha(3.2, "edf", grid=60)
        assert slack > 1.0  # 3.2 > 2.98, so feasible with margin
        conds = edf_conditions(pc)
        assert conds["slow-case"] == pytest.approx(slack, rel=1e-6)

    def test_infeasible_below_technique_floor(self):
        _, slack = best_constants_for_alpha(2.5, "edf", grid=60)
        assert slack <= 1.0

    def test_alpha_rejects_invalid(self):
        with pytest.raises(ValueError):
            best_constants_for_alpha(1.0, "edf")

    def test_frontier_minimum_near_paper_cf(self):
        pts = alpha_frontier("edf", [8.0, 28.412, 160.0], tol=5e-3)
        by_cf = dict(pts)
        # the paper's c_f beats both a much smaller and much larger choice
        assert by_cf[28.412] < by_cf[8.0]
        assert by_cf[28.412] <= by_cf[160.0] + 1e-3
