"""Property suite for :mod:`repro.kernels` — the batch backends must be
**bit-identical** to the scalar reference path.

Equality is asserted on the serialized report dicts
(:func:`repro.io_.serialize.report_to_dict`), which cover the verdict,
alpha, theorem, the full partition (assignment, machine_tasks, loads,
order), and the rejection certificate — so any float drift anywhere in a
backend fails these tests, not just a flipped verdict.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import liu_layland_bound
from repro.core.dbf import dbf_taskset
from repro.core.feasibility import feasibility_test
from repro.core.model import Machine, Platform, Task, TaskSet
from repro.core.partition import first_fit_partition
from repro.io_.serialize import report_from_dict, report_to_dict
from repro.kernels import (
    BACKEND_ENV_VAR,
    available_backends,
    available_kernel_backends,
    dbf_demand_batch,
    first_fit_batch,
    kernel_cache_stats,
    numpy_available,
    reset_kernel_caches,
    resolve_backend,
    utilization_bounds_batch,
)
from repro.kernels import test_feasibility_batch as feasibility_batch
from repro.oracle.generators import PROFILES, draw_instance
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform

ALL_BACKENDS = available_backends()
KERNEL_BACKENDS = available_kernel_backends()
CONFIGS = (("edf", "partitioned"), ("rms", "partitioned"),
           ("edf", "any"), ("rms", "any"))


def _scalar_reports(instances, scheduler, adversary, alpha=None):
    return [
        report_to_dict(
            feasibility_test(ts, pf, scheduler, adversary, alpha=alpha)
        )
        for ts, pf in instances
    ]


def _batch_reports(instances, scheduler, adversary, backend, alpha=None):
    return [
        report_to_dict(r)
        for r in feasibility_batch(
            instances, scheduler, adversary, alpha=alpha, backend=backend
        )
    ]


def _corpus(seed, size, n_range=(3, 17), mixed_platforms=False):
    """Uniform stress-swept instances; optionally mixed shapes/speeds."""
    rng = np.random.default_rng(seed)
    out = []
    for k in range(size):
        m = 2 + k % 3 if mixed_platforms else 4
        ratio = (2.0, 4.0, 8.0)[k % 3] if mixed_platforms else 8.0
        platform = geometric_platform(m, ratio)
        n = n_range[0] + k % (n_range[1] - n_range[0])
        stress = 0.6 + 0.5 * (k % 7) / 6  # spans accept and reject
        out.append(
            (
                generate_taskset(
                    rng,
                    n,
                    stress * platform.total_speed,
                    u_max=platform.fastest_speed,
                ),
                platform,
            )
        )
    return out


class TestBatchEquivalence:
    """test_feasibility_batch ≡ the scalar loop, bit-for-bit."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_batch_sizes(self, backend, batch_size):
        instances = _corpus(batch_size, batch_size)
        for scheduler, adversary in (("edf", "partitioned"), ("rms", "partitioned")):
            want = _scalar_reports(instances, scheduler, adversary)
            got = _batch_reports(instances, scheduler, adversary, backend)
            assert got == want

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_generator_profiles(self, backend, profile):
        rng = np.random.default_rng(hash(profile) % 2**32)
        implicit, constrained = [], []
        for _ in range(40):
            ts, pf = draw_instance(rng, profile)
            (implicit if ts.is_implicit else constrained).append((ts, pf))
        assert implicit or constrained
        for scheduler, adversary in CONFIGS:
            want = _scalar_reports(implicit, scheduler, adversary)
            got = _batch_reports(implicit, scheduler, adversary, backend)
            assert got == want
        # constrained draws (the deadline-axis profiles) route through
        # the dbf admission kernel instead of the theorem tests
        if constrained:
            want = [
                first_fit_partition(ts, pf, "edf-dbf", alpha=1.0)
                for ts, pf in constrained
            ]
            assert (
                first_fit_batch(constrained, "edf-dbf", backend=backend)
                == want
            )

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_mixed_shapes_and_platforms_shard_correctly(self, backend):
        instances = _corpus(99, 64, mixed_platforms=True)
        want = _scalar_reports(instances, "rms", "partitioned")
        got = _batch_reports(instances, "rms", "partitioned", backend)
        assert got == want

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_alpha_override(self, backend):
        instances = _corpus(5, 16)
        for alpha in (1.0, 1.7, 2.0):
            want = _scalar_reports(instances, "edf", "partitioned", alpha=alpha)
            got = _batch_reports(
                instances, "edf", "partitioned", backend, alpha=alpha
            )
            assert got == want

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_batch(self, backend):
        assert feasibility_batch([], "edf", backend=backend) == []
        assert first_fit_batch([], "edf", backend=backend) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_task_instances(self, backend):
        pf = geometric_platform(3, 4.0)
        instances = [
            (TaskSet([Task(wcet=w, period=10.0)]), pf)
            for w in (0.5, 9.0, 39.9, 40.0, 41.0)  # fits fastest .. hopeless
        ]
        for scheduler in ("edf", "rms"):
            want = _scalar_reports(instances, scheduler, "partitioned")
            got = _batch_reports(instances, scheduler, "partitioned", backend)
            assert got == want

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_taskset_takes_scalar_path(self, backend):
        pf = geometric_platform(2, 2.0)
        want = _scalar_reports([(TaskSet([]), pf)], "edf", "partitioned")
        got = _batch_reports([(TaskSet([]), pf)], "edf", "partitioned", backend)
        assert got == want

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_certificates_identical_on_rejection(self, backend):
        # Overloaded instances: every theorem must reject with the same
        # certificate bytes as the scalar path.
        rng = np.random.default_rng(13)
        pf = geometric_platform(3, 4.0)
        instances = [
            (generate_taskset(rng, 12, 2.6 * pf.total_speed), pf)
            for _ in range(20)
        ]
        saw_certificate = False
        for scheduler, adversary in CONFIGS:
            want = _scalar_reports(instances, scheduler, adversary)
            saw_certificate |= any(
                r["certificate"] is not None for r in want
            )
            got = _batch_reports(instances, scheduler, adversary, backend)
            assert got == want
        assert saw_certificate, "corpus never exercised the rejection path"

    def test_unknown_theorem_combination_raises(self):
        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0)])
        with pytest.raises(ValueError, match="unknown combination"):
            feasibility_batch([(ts, pf)], "edf", "nope")

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_constrained_deadlines_rejected_like_scalar(self, backend):
        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0, deadline=5.0)])
        with pytest.raises(ValueError, match="implicit deadlines"):
            feasibility_test(ts, pf, "edf", "partitioned")
        with pytest.raises(ValueError, match="implicit deadlines"):
            feasibility_batch([(ts, pf)], "edf", backend=backend)

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_constrained_rejection_is_up_front_and_text_identical(self, backend):
        # the constrained instance sits *last*: the batch must still fail
        # before producing any result (up-front validation, not a
        # mid-shard crash), and with the scalar path's exact message
        pf = geometric_platform(2, 2.0)
        good = TaskSet([Task(wcet=1.0, period=10.0)])
        bad = TaskSet([Task(wcet=1.0, period=10.0, deadline=5.0)])
        try:
            feasibility_test(bad, pf, "edf", "partitioned")
        except ValueError as exc:
            want = str(exc)
        else:
            pytest.fail("scalar path accepted a constrained instance")
        with pytest.raises(ValueError) as exc_info:
            feasibility_batch([(good, pf), (bad, pf)], "edf", backend=backend)
        assert str(exc_info.value) == want


class TestFirstFitBatch:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("test", ["edf", "rms-ll"])
    def test_matches_scalar_partitioner(self, backend, test):
        instances = _corpus(7, 48, mixed_platforms=True)
        for alpha in (1.0, 1.3):
            want = [
                first_fit_partition(ts, pf, test, alpha=alpha)
                for ts, pf in instances
            ]
            got = first_fit_batch(
                instances, test, alpha=alpha, backend=backend
            )
            assert got == want

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_edf_dbf_matches_scalar_on_constrained_corpus(self, backend):
        # the deadline-ratio axis end to end: constrained instances on
        # mixed platforms, partitioned by exact QPA admission
        rng = np.random.default_rng(23)
        instances = []
        for k in range(32):
            platform = geometric_platform(2 + k % 3, (2.0, 4.0, 8.0)[k % 3])
            instances.append(
                (
                    generate_taskset(
                        rng,
                        4 + k % 10,
                        (0.4 + 0.5 * (k % 7) / 6) * platform.total_speed,
                        u_max=platform.fastest_speed,
                        dr_dist="uniform",
                        dr_min=0.4,
                        dr_max=1.0,
                    ),
                    platform,
                )
            )
        assert any(not ts.is_implicit for ts, _ in instances)
        for alpha in (1.0, 1.3):
            want = [
                first_fit_partition(ts, pf, "edf-dbf", alpha=alpha)
                for ts, pf in instances
            ]
            got = first_fit_batch(
                instances, "edf-dbf", alpha=alpha, backend=backend
            )
            assert got == want
            # sharding must not leak state between instances: each
            # singleton re-run reproduces its batch row exactly
            for (ts, pf), batch_row in zip(instances[:6], want):
                single = first_fit_batch(
                    [(ts, pf)], "edf-dbf", alpha=alpha, backend=backend
                )
                assert single == [batch_row]

    def test_unsupported_admission_test_raises(self):
        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0)])
        with pytest.raises(ValueError, match="'rms-rta'"):
            first_fit_batch([(ts, pf)], "rms-rta")

    def test_nonpositive_alpha_raises(self):
        with pytest.raises(ValueError, match="alpha"):
            first_fit_batch([], "edf", alpha=0.0)


class TestPrimitives:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_utilization_bounds(self, backend):
        tasksets = [ts for ts, _ in _corpus(3, 17)]
        want = [
            (ts.total_utilization, liu_layland_bound(len(ts)))
            for ts in tasksets
        ]
        assert utilization_bounds_batch(tasksets, backend=backend) == want

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_dbf_demand(self, backend):
        tasksets = [ts for ts, _ in _corpus(4, 9)]
        times = [0.0, 1.0, 5.5, 12.0, 100.0]
        want = [
            [dbf_taskset(ts.tasks, t) for t in times] for ts in tasksets
        ]
        assert dbf_demand_batch(tasksets, times, backend=backend) == want


class TestBackendResolution:
    def test_explicit_names(self):
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("kernel") == "kernel"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "kernel")
        assert resolve_backend(None) == "kernel"
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend(None) in ("kernel", "numpy")

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numpy" if numpy_available() else "kernel"
        assert resolve_backend(None) == expected
        assert resolve_backend("auto") == expected

    def test_available_lists_are_consistent(self):
        assert ALL_BACKENDS[0] == "scalar"
        assert set(KERNEL_BACKENDS) == set(ALL_BACKENDS) - {"scalar"}


class TestCaches:
    def test_stats_count_hits_and_misses(self):
        reset_kernel_caches()
        instances = _corpus(21, 8)
        feasibility_batch(instances, "edf", backend=KERNEL_BACKENDS[0])
        first = kernel_cache_stats()
        assert first.misses > 0
        feasibility_batch(instances, "edf", backend=KERNEL_BACKENDS[0])
        second = kernel_cache_stats()
        assert second.hits > first.hits
        assert second.misses == first.misses
        reset_kernel_caches()
        cleared = kernel_cache_stats()
        assert (cleared.hits, cleared.misses, cleared.size) == (0, 0, 0)

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_reset_does_not_change_results(self, backend):
        instances = _corpus(22, 12)
        before = _batch_reports(instances, "rms", "partitioned", backend)
        reset_kernel_caches()
        after = _batch_reports(instances, "rms", "partitioned", backend)
        assert after == before


@pytest.mark.skipif(not numpy_available(), reason="numpy backend absent")
class TestCrossoverThresholds:
    """The numpy backend's admission thresholds replay scalar ``leq``."""

    def test_crossover_is_the_exact_admission_boundary(self):
        from repro.kernels.lockstep import _crossover

        from repro.core.model import leq

        for cap in (0.1, 0.5, 1.0, 1.5, 2.0, 8.0, 0.6931471805599453):
            sm = cap if cap > 1.0 else 1.0
            t_star = _crossover(cap, sm)
            assert leq(t_star, cap)
            assert not leq(math.nextafter(t_star, math.inf), cap)


class TestSerializeBackendKey:
    def test_key_omitted_by_default(self):
        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0)])
        report = feasibility_test(ts, pf, "edf", "partitioned")
        assert "backend" not in report_to_dict(report)

    def test_key_recorded_and_ignored_on_reload(self):
        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0)])
        report = feasibility_test(ts, pf, "edf", "partitioned")
        stamped = report_to_dict(report, backend="numpy")
        assert stamped["backend"] == "numpy"
        rebuilt = report_from_dict(stamped)
        assert report_to_dict(rebuilt) == report_to_dict(report)


class TestRunnerBatchFn:
    @staticmethod
    def _square(x):
        return x * x

    @staticmethod
    def _square_batch(items):
        return [x * x for x in items]

    @staticmethod
    def _bad_length_batch(items):
        return [x * x for x in items][:-1]

    @staticmethod
    def _raising_batch(items):
        raise RuntimeError("kernel exploded")

    def test_serial_batch_matches_per_trial(self):
        from repro.runner import run_trials

        items = list(range(23))
        want = run_trials(self._square, items).records
        got = run_trials(
            self._square, items, batch_fn=self._square_batch
        ).records
        assert got == want

    def test_pool_batch_matches_per_trial(self):
        from repro.runner import run_trials

        items = list(range(37))
        want = run_trials(self._square, items).records
        got = run_trials(
            self._square,
            items,
            jobs=2,
            chunk_size=5,
            batch_fn=self._square_batch,
        ).records
        assert got == want

    def test_length_mismatch_is_a_trial_error(self):
        from repro.runner import TrialError, run_trials

        with pytest.raises(TrialError, match="records for"):
            run_trials(
                self._square, [1, 2, 3], batch_fn=self._bad_length_batch
            )

    def test_batch_failure_reports_lowest_index(self):
        from repro.runner import TrialError, run_trials

        with pytest.raises(TrialError, match="trial 0"):
            run_trials(
                self._square, [1, 2, 3], batch_fn=self._raising_batch
            )
        with pytest.raises(TrialError, match="trial 0"):
            run_trials(
                self._square,
                list(range(12)),
                jobs=2,
                chunk_size=4,
                batch_fn=self._raising_batch,
            )


class TestAcceptanceSweepBackend:
    def test_backend_curves_bit_identical(self):
        from repro.analysis.acceptance import (
            acceptance_sweep,
            ff_tester,
            lp_tester,
        )

        pf = geometric_platform(4, 8.0)
        testers = {
            "edf": ff_tester("edf", 1.0),
            "rms": ff_tester("rms-ll", 1.0),
            "lp": lp_tester(),  # not kernel-backed: scalar fallback
        }
        kw = dict(
            n_tasks=8,
            normalized_utilizations=(0.7, 0.9),
            samples=12,
            name="kernels-test",
        )
        want = acceptance_sweep(42, pf, testers, **kw)
        for backend in ALL_BACKENDS:
            got = acceptance_sweep(42, pf, testers, backend=backend, **kw)
            assert got == want


class TestOracleBackendEquivalence:
    def test_clean_on_random_instances(self):
        from repro.oracle.invariants import OracleConfig, check_instance

        cfg = OracleConfig(checks=("backend-equivalence",))
        rng = np.random.default_rng(77)
        pf = geometric_platform(3, 4.0)
        for k in range(10):
            ts = generate_taskset(
                rng, 4 + k, (0.7 + 0.03 * k) * pf.total_speed
            )
            assert check_instance(ts, pf, cfg) == []

    def test_backend_narrowing(self):
        from repro.oracle.invariants import OracleConfig, check_instance

        pf = geometric_platform(2, 2.0)
        ts = TaskSet([Task(wcet=1.0, period=10.0)])
        cfg = OracleConfig(
            checks=("backend-equivalence",), backends=("kernel",)
        )
        assert check_instance(ts, pf, cfg) == []
        # constrained deadlines: trivially clean (all paths raise alike)
        constrained = TaskSet([Task(wcet=1.0, period=10.0, deadline=4.0)])
        assert check_instance(constrained, pf, cfg) == []

    def test_registered_in_lattice(self):
        from repro.oracle.invariants import CHECKS

        assert "backend-equivalence" in CHECKS


class TestServiceBackendRouting:
    def _payloads(self, count=4):
        from repro.io_.serialize import platform_to_dict, taskset_to_dict

        rng = np.random.default_rng(5)
        pf = geometric_platform(3, 4.0)
        out = []
        for k in range(count):
            ts = generate_taskset(
                rng, 6, 0.8 * pf.total_speed, u_max=pf.fastest_speed
            )
            out.append(
                {
                    "taskset": taskset_to_dict(ts),
                    "platform": platform_to_dict(pf),
                    "scheduler": "rms" if k % 2 else "edf",
                    "adversary": "partitioned",
                }
            )
        return out

    def test_legacy_default_has_no_backend_key(self):
        from repro.service.app import FeasibilityService

        service = FeasibilityService()
        response = service.handle_test(self._payloads(1)[0])
        assert "backend" not in response["report"]
        assert service.handle_healthz()["backend"] == "scalar"

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backend_stamped_and_counted(self, backend):
        from repro.service.app import FeasibilityService

        payloads = self._payloads()
        service = FeasibilityService(backend=backend)
        single = service.handle_test(payloads[0])
        assert single["report"]["backend"] == backend
        batch = service.handle_batch({"instances": payloads})
        assert [r["report"]["backend"] for r in batch["results"]] == (
            [backend] * len(payloads)
        )
        # 1 /v1/test miss + the batch misses (payloads[0] already cached)
        counted = service.metrics.as_dict()["backend_tests"]
        assert counted == {backend: len(payloads)}
        prom = service.metrics_prometheus()
        assert (
            f'repro_backend_tests_total{{backend="{backend}"}} '
            f"{len(payloads)}" in prom
        )
        assert service.handle_healthz()["backend"] == backend

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_backend_reports_equal_legacy_apart_from_key(self, backend):
        from repro.service.app import FeasibilityService

        payloads = self._payloads()
        legacy = FeasibilityService()
        routed = FeasibilityService(backend=backend)
        for payload in payloads:
            want = legacy.handle_test(payload)
            got = routed.handle_test(payload)
            report = dict(got["report"])
            assert report.pop("backend") == backend
            assert report == want["report"]
            assert got["digest"] == want["digest"]


class TestCLIBackend:
    def test_test_command_stamps_backend(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.io_.serialize import platform_to_dict, taskset_to_dict

        rng = np.random.default_rng(9)
        pf = geometric_platform(3, 4.0)
        ts = generate_taskset(rng, 6, 0.7 * pf.total_speed)
        instance = tmp_path / "inst.json"
        instance.write_text(
            json.dumps(
                {
                    "taskset": taskset_to_dict(ts),
                    "platform": platform_to_dict(pf),
                }
            )
        )
        rc0 = main(["test", str(instance), "--json"])
        plain = json.loads(capsys.readouterr().out)
        backend = KERNEL_BACKENDS[-1]
        rc1 = main(["test", str(instance), "--json", "--backend", backend])
        stamped = json.loads(capsys.readouterr().out)
        assert rc1 == rc0
        assert stamped.pop("backend") == backend
        assert "backend" not in plain
        assert stamped == plain
