"""Tests for the parallel campaign runner (repro.runner).

The contract under test: for any ``jobs``, ``run_trials`` produces
records bit-identical to the serial path, reports honest throughput
stats, and surfaces worker failures as :class:`TrialError` naming the
failing trial's seed and params.
"""

from __future__ import annotations

import pytest

from repro.analysis.acceptance import acceptance_sweep, ff_tester
from repro.analysis.speedup import empirical_speedup_study
from repro.runner import (
    TrialError,
    active_telemetry,
    default_chunk_size,
    resolve_jobs,
    run_trials,
    telemetry,
)
from repro.workloads.campaigns import Campaign
from repro.workloads.platforms import geometric_platform

PARALLEL_JOBS = 4  # oversubscribed on small hosts; determinism must hold anyway


def _campaign(n: int = 12) -> Campaign:
    return Campaign(name="runner-test", grid={"x": (1, 2)}, replications=n // 2)


def _echo_trial(trial):
    """Module-level (hence picklable) per-trial function."""
    return (trial.params["x"], trial.replication, trial.seed, trial.rng().random())


def _fail_on_rep2(trial):
    if trial.replication == 2:
        raise ValueError(f"boom at rep {trial.replication}")
    return trial.seed


class TestKnobs:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        # ~4 chunks per worker, never zero-sized
        assert default_chunk_size(160, 4) == 10
        assert default_chunk_size(3, 8) == 1


class TestRunTrials:
    def test_serial_matches_campaign_order(self):
        campaign = _campaign()
        run = run_trials(_echo_trial, campaign, jobs=1)
        assert run.records == [_echo_trial(t) for t in campaign]
        assert len(run) == len(campaign)

    def test_parallel_identical_to_serial(self):
        campaign = _campaign()
        serial = run_trials(_echo_trial, campaign, jobs=1)
        pooled = run_trials(_echo_trial, campaign, jobs=PARALLEL_JOBS)
        assert pooled.records == serial.records

    def test_chunking_does_not_change_records(self):
        campaign = _campaign()
        baseline = run_trials(_echo_trial, campaign, jobs=1).records
        for chunk_size in (1, 2, 5, 100):
            run = run_trials(
                _echo_trial, campaign, jobs=2, chunk_size=chunk_size
            )
            assert run.records == baseline

    def test_stats_account_for_every_trial(self):
        campaign = _campaign()
        run = run_trials(_echo_trial, campaign, jobs=PARALLEL_JOBS, label="acct")
        stats = run.stats
        assert stats.label == "acct"
        assert stats.trials == len(campaign)
        assert sum(w.trials for w in stats.workers) == len(campaign)
        assert stats.wall_time > 0
        assert stats.trials_per_second > 0
        row = stats.as_row()
        assert row["campaign"] == "acct"
        assert row["trials"] == len(campaign)

    @pytest.mark.parametrize("jobs", [1, PARALLEL_JOBS])
    def test_failure_reports_seed_and_params(self, jobs):
        campaign = _campaign()
        first = next(t for t in campaign if t.replication == 2)
        with pytest.raises(TrialError) as excinfo:
            run_trials(_fail_on_rep2, campaign, jobs=jobs, chunk_size=2)
        err = excinfo.value
        # deterministically the *lowest* failing index, on both paths
        assert err.seed == first.seed
        assert err.params == first.params
        assert str(err.seed) in str(err)
        assert "x" in str(err)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            run_trials(_echo_trial, _campaign(), jobs=2, chunk_size=0)


class TestTelemetry:
    def test_collects_runs_in_context(self):
        with telemetry() as tele:
            assert active_telemetry() is tele
            run_trials(_echo_trial, _campaign(), jobs=1, label="one")
            run_trials(_echo_trial, _campaign(), jobs=2, label="two")
        assert active_telemetry() is None
        assert [s.label for s in tele.runs] == ["one", "two"]
        summary = tele.summary()
        assert summary["campaigns"] == 2
        assert summary["trials"] == 2 * len(_campaign())
        rendered = tele.render()
        assert "one" in rendered and "two" in rendered and "total" in rendered

    def test_nested_contexts_isolate(self):
        with telemetry() as outer:
            with telemetry() as inner:
                run_trials(_echo_trial, _campaign(), jobs=1)
            assert len(inner.runs) == 1
        assert outer.runs == []


class TestAnalysisEquivalence:
    """jobs=1 and jobs=N produce identical analysis rows end to end."""

    @pytest.fixture(scope="class")
    def platform(self):
        return geometric_platform(3, 4.0)

    def test_acceptance_sweep(self, platform):
        kwargs = dict(
            n_tasks=8,
            normalized_utilizations=(0.7, 0.9),
            samples=6,
            name="eq/accept",
        )
        testers = {"ff": ff_tester("edf", 1.0)}
        serial = acceptance_sweep(11, platform, testers, jobs=1, **kwargs)
        pooled = acceptance_sweep(11, platform, testers, jobs=PARALLEL_JOBS, **kwargs)
        assert pooled.as_rows() == serial.as_rows()
        assert pooled.rates == serial.rates

    def test_speedup_study(self, platform):
        kwargs = dict(
            scheduler="edf",
            adversary="partitioned",
            samples=6,
            load=0.95,
            tasks_per_machine=2,
            name="eq/speedup",
        )
        serial = empirical_speedup_study(11, platform, jobs=1, **kwargs)
        pooled = empirical_speedup_study(11, platform, jobs=PARALLEL_JOBS, **kwargs)
        assert pooled.alphas == serial.alphas
        assert pooled.summary == serial.summary
