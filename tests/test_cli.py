"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["constants"],
            ["generate", "x.json"],
            ["experiment", "e01"],
            ["serve"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.jobs == 1
        assert args.cache_size == 1024

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--cache-size", "64"]
        )
        assert args.port == 0
        assert args.jobs == 4
        assert args.cache_size == 64

    def test_serve_rejects_negative_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--jobs", "-1"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e13" in out

    def test_constants(self, capsys):
        assert main(["constants"]) == 0
        out = capsys.readouterr().out
        assert "alpha=2.98" in out
        assert "valid=True" in out

    def test_generate_then_test_accept(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        assert main(
            [
                "generate",
                str(inst),
                "--tasks",
                "6",
                "--machines",
                "3",
                "--stress",
                "0.5",
                "--seed",
                "1",
            ]
        ) == 0
        data = json.loads(inst.read_text())
        assert len(data["taskset"]["tasks"]) == 6
        code = main(["test", str(inst), "--scheduler", "edf"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ACCEPTED" in out

    def test_test_json_uses_shared_report_schema(self, tmp_path, capsys):
        from repro.core.feasibility import feasibility_test
        from repro.io_.serialize import (
            platform_from_dict,
            report_to_dict,
            taskset_from_dict,
        )

        inst = tmp_path / "i.json"
        main(["generate", str(inst), "--tasks", "6", "--machines", "3",
              "--stress", "0.5", "--seed", "1"])
        capsys.readouterr()
        code = main(["test", str(inst), "--json"])
        out = capsys.readouterr().out
        assert code == 0
        printed = json.loads(out)
        data = json.loads(inst.read_text())
        direct = report_to_dict(
            feasibility_test(
                taskset_from_dict(data["taskset"]),
                platform_from_dict(data["platform"]),
            )
        )
        assert printed == direct

    def test_test_reject(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "8",
                "--machines",
                "2",
                "--stress",
                "4.0",
                "--seed",
                "2",
            ]
        )
        code = main(["test", str(inst)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REJECTED" in out
        assert "w_n=" in out

    def test_simulate(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "5",
                "--machines",
                "2",
                "--stress",
                "0.5",
                "--seed",
                "3",
            ]
        )
        code = main(["simulate", str(inst), "--alpha", "2.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "deadline misses: 0" in out

    def test_simulate_failed_partition(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "8",
                "--machines",
                "2",
                "--stress",
                "4.0",
                "--seed",
                "4",
            ]
        )
        code = main(["simulate", str(inst), "--alpha", "1.0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "first-fit failed" in out

    def test_experiment_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "e01.csv"
        code = main(
            ["experiment", "e01", "--scale", "quick", "--csv", str(csv_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem" in out
        assert csv_path.exists()
        assert "theorem" in csv_path.read_text()

    def test_gantt(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "4",
                "--machines",
                "2",
                "--stress",
                "0.5",
                "--seed",
                "5",
            ]
        )
        code = main(["gantt", str(inst), "--alpha", "2.0", "--horizon", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "machine 0" in out and "machine 1" in out
        assert "#" in out

    def test_gantt_failed_partition(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "8",
                "--machines",
                "2",
                "--stress",
                "4.0",
                "--seed",
                "6",
            ]
        )
        assert main(["gantt", str(inst)]) == 1

    def test_slack(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "5",
                "--machines",
                "2",
                "--stress",
                "0.4",
                "--seed",
                "7",
            ]
        )
        code = main(["slack", str(inst)])
        out = capsys.readouterr().out
        assert code == 0
        assert "system scaling margin" in out
        assert "per-task slack" in out

    def test_slack_rejected_instance(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        main(
            [
                "generate",
                str(inst),
                "--tasks",
                "8",
                "--machines",
                "2",
                "--stress",
                "4.0",
                "--seed",
                "8",
            ]
        )
        assert main(["slack", str(inst)]) == 1

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestFuzzCLI:
    FIXTURE = (
        Path(__file__).parent
        / "fixtures"
        / "counterexamples"
        / "incremental-vs-oneshot-hyperbolic-earlyexit.json"
    )

    def test_fuzz_parses(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.command == "fuzz"
        assert args.seed == 0
        assert args.budget == 1000
        assert args.jobs == 1
        assert args.profiles is None
        assert args.checks is None
        assert args.campaign == "oracle-fuzz"
        assert args.out_dir == Path("results/counterexamples")
        assert not args.no_shrink
        assert args.replay is None
        assert not args.self_test

    def test_fuzz_options(self):
        args = build_parser().parse_args(
            [
                "fuzz",
                "--seed",
                "5",
                "--budget",
                "20",
                "--jobs",
                "2",
                "--profile",
                "tiny",
                "--profile",
                "uniform",
                "--check",
                "roundtrip",
                "--campaign",
                "nightly",
                "--out-dir",
                "somewhere",
                "--no-shrink",
            ]
        )
        assert args.seed == 5
        assert args.budget == 20
        assert args.jobs == 2
        assert args.profiles == ["tiny", "uniform"]
        assert args.checks == ["roundtrip"]
        assert args.campaign == "nightly"
        assert args.out_dir == Path("somewhere")
        assert args.no_shrink

    def test_fuzz_rejects_negative_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--jobs", "-2"])

    def test_fuzz_smoke(self, tmp_path, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "1",
                "--budget",
                "6",
                "--out-dir",
                str(tmp_path / "ce"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "no invariant violations" in out
        assert "trials=6" in out

    def test_fuzz_restricted_profile_and_check(self, tmp_path, capsys):
        rc = main(
            [
                "fuzz",
                "--budget",
                "4",
                "--profile",
                "tiny",
                "--check",
                "roundtrip",
                "--out-dir",
                str(tmp_path / "ce"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "profiles=tiny" in out
        assert "checks: roundtrip" in out

    def test_fuzz_replay_fixed_counterexample(self, capsys):
        rc = main(["fuzz", "--replay", str(self.FIXTURE)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no longer reproduces" in out

    def test_fuzz_self_test(self, capsys):
        rc = main(["fuzz", "--self-test"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "self-test ok" in out
        assert "broken rms-ll" in out
