# lint-fixture-path: src/repro/workloads/fixture_rep002.py
# lint-expect: REP002@9 REP002@14 REP002@19 REP002@24
import random

import numpy as np


def unseeded_generator():
    return np.random.default_rng()


def legacy_global_state(values):
    # np.random module functions draw from hidden global state
    np.random.shuffle(values)
    return values


def global_reseed(seed):
    np.random.seed(seed)


def stdlib_random():
    # stdlib random module state is process-global and unseeded
    return random.random()


def fine_seeded(seed: int):
    # an explicit seed makes the stream reproducible
    return np.random.default_rng(seed)


def fine_spawned(rng):
    # passing a Generator around is the approved pattern
    return rng.integers(0, 10)
