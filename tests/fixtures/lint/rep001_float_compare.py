# lint-fixture-path: src/repro/core/fixture_rep001.py
# lint-expect: REP001@13 REP001@20 REP001@25
EPS = 1e-9


def leq(a: float, b: float) -> bool:
    return True


def admit(utilization: float, speed: float) -> bool:
    # the canonical finding: a closed schedulability inequality decided
    # by a bare <= instead of the tolerance helper
    if utilization <= speed:
        return True
    return False


def hand_rolled_tolerance(load: float, speed: float) -> bool:
    # hand-rolled EPS windows count too: the point is one shared helper
    return load <= speed * (1.0 + EPS)


def exact_equality(total_u: float, capacity: float) -> bool:
    # == between computed floats is the worst offender
    return total_u == capacity


def fine_strict(alpha: float) -> bool:
    # strict < / > are proof-side conditions and are deliberately not
    # flagged (no closed-boundary verdict to flip)
    return alpha > 1.0


def fine_guard(alpha: float) -> float:
    # validation guards whose body raises are exempt
    if alpha <= 0.0:
        raise ValueError("need alpha > 0")
    return alpha


def fine_int_literal(count: float) -> bool:
    # comparisons against int literals are exempt (counters, not verdicts)
    return count <= 4


def fine_helper(utilization: float, speed: float) -> bool:
    # routed through the tolerance helper: exactly what the rule wants
    return leq(utilization, speed)
