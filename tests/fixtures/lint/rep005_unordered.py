# lint-fixture-path: src/repro/io_/fixture_rep005.py
# lint-expect: REP005@8 REP005@16 REP005@21
import os


def serialize_ids(task_ids: set):
    out = []
    for tid in task_ids:
        # set order varies with PYTHONHASHSEED: the serialized artifact
        # is no longer byte-stable
        out.append(tid)
    return out


def comprehension_over_set(names: set):
    return [n.upper() for n in names]


def listdir_into_digest(path):
    lines = []
    for entry in os.listdir(path):
        lines.append(entry)
    return lines


def fine_sorted(task_ids: set):
    # sorted() pins the order before anything observable consumes it
    return [tid for tid in sorted(task_ids)]


def fine_reduction(task_ids: set):
    # order-free reductions cannot leak iteration order
    return max(tid for tid in task_ids)
