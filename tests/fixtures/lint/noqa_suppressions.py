# lint-fixture-path: src/repro/core/fixture_noqa.py
# lint-expect: REP001@12 REP001@17
EPS = 1e-9


def suppressed(utilization: float, speed: float) -> bool:
    # a justified exception, silenced with a scoped suppression
    return utilization <= speed  # repro: noqa[REP001]


def not_suppressed(load: float, speed: float) -> bool:
    return load <= speed


def wrong_code(total: float, cap: float) -> bool:
    # a suppression for a different rule does not apply
    return total <= cap  # repro: noqa[REP004]
