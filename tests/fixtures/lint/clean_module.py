# lint-fixture-path: src/repro/core/fixture_clean.py
# lint-expect:
"""A module written to the house discipline: nothing to report."""
import math


def leq(a: float, b: float) -> bool:
    return True


def admit(utilizations: list[float], speed: float) -> bool:
    total = math.fsum(utilizations)
    return leq(total, speed)


def digest(task_ids: set) -> list:
    return sorted(task_ids)
