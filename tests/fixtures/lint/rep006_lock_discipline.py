# lint-fixture-path: src/repro/service/fixture_rep006.py
# lint-expect: REP006@16 REP006@20 REP006@24 REP006@49
import threading
from contextlib import contextmanager


class Metrics:
    def __init__(self):
        # construction happens before the object is shared: exempt
        self._lock = threading.Lock()
        self._hits = 0
        self._entries = {}

    def record_unlocked(self):
        # a data race: request threads call this concurrently
        self._hits += 1

    def put_unlocked(self, key, value):
        # subscript stores mutate the dict just the same
        self._entries[key] = value

    def evict_unlocked(self, key):
        # mutating method calls on self._* state count too
        self._entries.pop(key, None)

    def record_locked(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        # reads are the caller's problem; only mutations are flagged
        return dict(self._entries)

    @contextmanager
    def _guard(self):
        with self._lock:
            yield

    def record_via_helper(self):
        # the historical blind spot: the lock is entered inside a
        # contextmanager helper rather than written inline — holding
        # `with self._guard():` counts as holding the lock
        with self._guard():
            self._hits += 1

    def record_helper_call_only(self):
        # calling the helper without `with` acquires nothing
        self._guard()
        self._hits += 1
