# lint-fixture-path: src/repro/service/fixture_rep006.py
# lint-expect: REP006@15 REP006@19 REP006@23
import threading


class Metrics:
    def __init__(self):
        # construction happens before the object is shared: exempt
        self._lock = threading.Lock()
        self._hits = 0
        self._entries = {}

    def record_unlocked(self):
        # a data race: request threads call this concurrently
        self._hits += 1

    def put_unlocked(self, key, value):
        # subscript stores mutate the dict just the same
        self._entries[key] = value

    def evict_unlocked(self, key):
        # mutating method calls on self._* state count too
        self._entries.pop(key, None)

    def record_locked(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        # reads are the caller's problem; only mutations are flagged
        return dict(self._entries)
