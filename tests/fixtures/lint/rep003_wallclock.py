# lint-fixture-path: src/repro/experiments/fixture_rep003.py
# lint-expect: REP003@8 REP003@12 REP003@17
import time
from datetime import datetime


def stamp_results():
    return time.time()


def stamp_ns():
    return time.time_ns()


def report_header():
    # wall-clock timestamps make otherwise identical runs differ
    return datetime.now().isoformat()


def fine_duration():
    # monotonic / perf_counter measure *durations*, not wall time, and
    # never appear inside result artifacts
    start = time.perf_counter()
    return time.perf_counter() - start


def fine_cpu():
    return time.process_time()
