# lint-fixture-path: src/repro/analysis/memo.py
# lint-expect: REP011@9
from functools import lru_cache

from repro.analysis.effects import identity, record


@lru_cache(maxsize=None)
def cached_record(value):
    return record(value)


@lru_cache(maxsize=None)
def cached_identity(value):
    # clean: the wrapped chain is pure
    return identity(value)
