# lint-fixture-path: src/repro/analysis/effects.py
# lint-expect:
_TALLY = []


def record(value):
    _TALLY.append(value)
    return value


def identity(value):
    return value
