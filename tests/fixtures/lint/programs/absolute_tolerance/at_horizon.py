# lint-fixture-path: src/repro/core/at_horizon.py
# lint-expect:
def qpa_horizon(tasks):
    return max(t.deadline for t in tasks)
