# lint-fixture-path: src/repro/core/at_boundary.py
# lint-expect: REP015@11 REP015@15 REP015@21
import math

from repro.core.at_horizon import qpa_horizon

EPS = 1e-9


def reaches(tasks, x):
    return x < qpa_horizon(tasks) - EPS


def old_dbf_guard(task, t):
    if t < task.deadline - EPS:
        return 0.0
    return 1.0


def old_dbf_jobs(task, t):
    return math.floor((t - task.deadline) / task.period + EPS) + 1


def scaled_ok(task, t):
    # epsilon scaled by the operand's magnitude: clean
    return t < task.deadline - EPS * max(1.0, abs(task.deadline))
