# lint-fixture-path: src/repro/core/us_demand.py
# lint-expect:
def total_demand(tasks):
    return sum(t.wcet for t in tasks)
