# lint-fixture-path: src/repro/core/us_test.py
# lint-expect: REP017@7
from repro.core.us_demand import total_demand


def fits_bad(tasks, t):
    return total_demand(tasks) < t


def fits_normalized(tasks, t, speed):
    # work divided by speed is a time: clean
    return total_demand(tasks) / speed < t
