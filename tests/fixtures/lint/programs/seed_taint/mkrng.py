# lint-fixture-path: src/repro/workloads/mkrng.py
# lint-expect: REP008@13
import numpy as np

from repro.workloads.seeds import derive, flaky_token


def good_rng(base_seed, name):
    return np.random.default_rng(derive(base_seed, name))


def bad_rng(label):
    return np.random.default_rng(flaky_token(label))
