# lint-fixture-path: src/repro/workloads/seeds.py
# lint-expect:
import zlib


def derive(base_seed, name):
    return zlib.crc32(name) + base_seed


def flaky_token(label):
    return hash(label)
