# lint-fixture-path: src/repro/experiments/e01_demo.py
# lint-expect:
REGISTERED = True
