# lint-fixture-path: src/repro/experiments/__init__.py
# lint-expect:
from . import e01_demo  # noqa: F401 - registration side effect
