# lint-fixture-path: src/repro/experiments/e02_demo.py
# lint-expect: REP009@1
REGISTERED = True
