# lint-fixture-path: src/repro/service/state.py
# lint-expect: REP010@10 REP010@36
import threading

_LOCK = threading.Lock()
_STATE = {}


def bump(key):
    _STATE[key] = _STATE.get(key, 0) + 1


def locked_bump(key):
    with _LOCK:
        bump(key)


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._misses = {}

    def put(self, key, value):
        with self._lock:
            self._insert(key, value)

    def _insert(self, key, value):
        # clean: the only caller chain (put) holds the lock
        self._entries[key] = value

    def tally(self, key):
        self._count(key)

    def _count(self, key):
        self._misses[key] = self._misses.get(key, 0) + 1
