# lint-fixture-path: src/repro/service/handler.py
# lint-expect:
from repro.service.state import bump


def handle(key):
    # the unlocked cross-module caller that breaks bump's proof: the
    # finding lands at the mutation site in state.py
    bump(key)
