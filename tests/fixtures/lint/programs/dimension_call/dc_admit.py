# lint-fixture-path: src/repro/core/dc_admit.py
# lint-expect:
def admit(utilization, speed):
    return utilization <= speed
