# lint-fixture-path: src/repro/core/dc_check.py
# lint-expect: REP016@7
from repro.core.dc_admit import admit


def check_bad(task, platform):
    return admit(task.period, platform.fastest_speed)


def check_ok(task, platform):
    return admit(task.utilization, platform.fastest_speed)
