# lint-fixture-path: src/repro/core/chk.py
# lint-expect: REP007@8 REP007@13
from repro.core.dmd import demand, demand_via_chain
from repro.core.model import leq


def admits(tasks, horizon, capacity: float) -> bool:
    return demand(tasks, horizon) <= capacity


def admits_chain(tasks, horizon, capacity: float) -> bool:
    # the float evidence is two return-hops away
    return demand_via_chain(tasks, horizon) >= capacity


def admits_tolerant(tasks, horizon, capacity: float) -> bool:
    # routed through the tolerance helper: clean
    return leq(demand(tasks, horizon), capacity)


def validate(tasks, horizon, capacity: float) -> None:
    # guard-raise exemption holds across modules too
    if demand(tasks, horizon) <= capacity:
        raise ValueError("infeasible")
