# lint-fixture-path: src/repro/core/dmd.py
# lint-expect:
def demand(tasks, horizon):
    return float(len(tasks)) * 0.5


def demand_via_chain(tasks, horizon):
    return demand(tasks, horizon)
