# lint-fixture-path: src/repro/service/loop.py
# lint-expect: REP012@9 REP012@13
import time

from repro.service.helpers import compute, pause


async def tick():
    time.sleep(0.5)


async def poll():
    pause()
    return compute(1)
