# lint-fixture-path: src/repro/service/helpers.py
# lint-expect:
import time


def pause():
    time.sleep(0.01)


def compute(x):
    return x + 1
