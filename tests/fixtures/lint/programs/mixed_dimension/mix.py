# lint-fixture-path: src/repro/core/ud_mix.py
# lint-expect: REP014@7
from repro.core.ud_totals import busy_window, total_utilization


def bad_slack(tasks, deadline):
    return deadline - total_utilization(tasks)


def capacity_headroom(tasks, speed):
    # rate vs speed share an exponent vector: the feasibility test, clean
    return speed - total_utilization(tasks)


def window_headroom(tasks, horizon):
    # time vs time: clean
    return horizon - busy_window(tasks)
