# lint-fixture-path: src/repro/core/ud_totals.py
# lint-expect:
def total_utilization(tasks):
    return sum(t.utilization for t in tasks)


def busy_window(tasks):
    return max(t.deadline for t in tasks)
