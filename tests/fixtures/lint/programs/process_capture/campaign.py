# lint-fixture-path: src/repro/analysis/campaign.py
# lint-expect: REP013@12 REP013@20
import threading

from repro.analysis.trials import bad_trial, good_trial
from repro.runner.executor import run_trials

_POOL_LOCK = threading.Lock()


def bad_campaign(points):
    return run_trials(bad_trial, points)


def good_campaign(points):
    return run_trials(good_trial, points)


def lock_leak(points):
    return run_trials(good_trial, points, label=_POOL_LOCK)
