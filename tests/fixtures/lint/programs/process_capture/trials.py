# lint-fixture-path: src/repro/analysis/trials.py
# lint-expect:
_TALLY = []


def bad_trial(point):
    _TALLY.append(point)
    return point


def good_trial(point):
    return point * 2
