# lint-fixture-path: src/repro/core/fixture_rep004.py
# lint-expect: REP004@10 REP004@17 REP004@27
import math


def plain_loop_sum(utilizations: list[float]) -> float:
    total = 0.0
    for u in utilizations:
        # one rounding error per iteration, order-dependent result
        total += u
    return total


class LoadState:
    def bump(self, utilization: float) -> None:
        # accumulator state fed one term at a time: _NeumaierSum territory
        self._load += utilization


def while_loop_drift(period: float, horizon: float) -> int:
    count = 0
    t = 0.0
    while t < horizon:
        count += 1  # int counter: not flagged
        # additive stepping drifts off the true grid d + k*p;
        # note the comment does not suppress the line below
        t += period
    return count


def fine_fsum(utilizations: list[float]) -> float:
    # the approved pattern: exactly rounded, order-independent
    return math.fsum(utilizations)


def fine_outside_loop(base: float, bonus: float) -> float:
    # a single += outside any loop is one rounding, not an accumulation
    base += bonus
    return base
