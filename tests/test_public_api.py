"""Public-API hygiene: exports resolve, and every public item is documented.

Deliverable (e) of the reproduction requires doc comments on every public
item; this test makes that a regression guarantee rather than a hope.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.model",
    "repro.core.bounds",
    "repro.core.rta",
    "repro.core.partition",
    "repro.core.feasibility",
    "repro.core.lp",
    "repro.core.constants",
    "repro.core.certificates",
    "repro.core.dbf",
    "repro.core.dbf_approx",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.jobs",
    "repro.sim.policies",
    "repro.sim.uniprocessor",
    "repro.sim.multiprocessor",
    "repro.sim.global_sched",
    "repro.sim.global_validators",
    "repro.sim.trace",
    "repro.sim.validators",
    "repro.sim.hyperperiod",
    "repro.sim.gantt",
    "repro.workloads",
    "repro.workloads.uunifast",
    "repro.workloads.randfixedsum",
    "repro.workloads.periods",
    "repro.workloads.platforms",
    "repro.workloads.builder",
    "repro.workloads.campaigns",
    "repro.workloads.suites",
    "repro.baselines",
    "repro.baselines.exact",
    "repro.baselines.andersson_tovar",
    "repro.baselines.heuristics",
    "repro.baselines.ptas",
    "repro.analysis",
    "repro.analysis.ratio",
    "repro.analysis.acceptance",
    "repro.analysis.speedup",
    "repro.analysis.runtime",
    "repro.analysis.stats",
    "repro.analysis.sensitivity",
    "repro.analysis.breakdown",
    "repro.analysis.hard_instances",
    "repro.runner",
    "repro.runner.executor",
    "repro.runner.telemetry",
    "repro.experiments",
    "repro.io_",
    "repro.io_.serialize",
    "repro.io_.tables",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize(
    "module_name",
    [m for m in PACKAGES if not m.endswith(("cli", "experiments"))],
)
def test_public_callables_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    names = exported if exported is not None else [
        n for n in dir(module) if not n.startswith("_")
    ]
    for name in names:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module_name}.{name} lacks a docstring"
                )


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"
