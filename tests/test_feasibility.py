"""Unit tests for the feasibility-test API (repro.core.feasibility)."""

from __future__ import annotations

import math

import pytest

from repro.core.feasibility import (
    edf_test_vs_any,
    edf_test_vs_partitioned,
    feasibility_test,
    rms_test_vs_any,
    rms_test_vs_partitioned,
    theorem_alpha,
)
from repro.core.model import Platform, Task, TaskSet


def ts(*utils):
    return TaskSet(Task.from_utilization(u, 10.0) for u in utils)


class TestTheoremAlpha:
    def test_values(self):
        assert theorem_alpha("edf", "partitioned") == 2.0
        assert theorem_alpha("rms", "partitioned") == pytest.approx(1 + math.sqrt(2))
        assert theorem_alpha("edf", "any") == 2.98
        assert theorem_alpha("rms", "any") == 3.34

    def test_unknown_combination(self):
        with pytest.raises(ValueError):
            theorem_alpha("edf", "bogus")  # type: ignore[arg-type]


class TestFeasibilityTest:
    def test_accept_report(self):
        report = edf_test_vs_partitioned(ts(0.5, 0.4), Platform.from_speeds([1.0]))
        assert report.accepted
        assert report.theorem == "I.1"
        assert report.alpha == 2.0
        assert report.certificate is None
        assert "schedulable" in report.guarantee
        assert "2x faster" in report.guarantee

    def test_reject_report_carries_certificate(self):
        report = edf_test_vs_partitioned(
            ts(0.9, 0.9, 0.9), Platform.from_speeds([1.0])
        )
        assert not report.accepted
        assert report.certificate is not None
        assert report.certificate.certifies
        assert "no partitioned scheduler" in report.guarantee

    def test_reject_vs_any_wording(self):
        report = edf_test_vs_any(ts(5.0, 5.0), Platform.from_speeds([1.0]))
        assert not report.accepted
        assert "even migratory" in report.guarantee
        assert report.theorem == "I.3"

    def test_rms_variants(self):
        platform = Platform.from_speeds([1.0, 2.0])
        taskset = ts(0.3, 0.3)
        assert rms_test_vs_partitioned(taskset, platform).theorem == "I.2"
        assert rms_test_vs_any(taskset, platform).theorem == "I.4"

    def test_alpha_override(self):
        report = feasibility_test(
            ts(1.5), Platform.from_speeds([1.0]), "edf", "partitioned", alpha=1.0
        )
        assert report.alpha == 1.0
        assert not report.accepted

    def test_alpha_override_invalid(self):
        with pytest.raises(ValueError):
            feasibility_test(
                ts(0.5), Platform.from_speeds([1.0]), "edf", "partitioned", alpha=-1.0
            )

    def test_unknown_combination(self):
        with pytest.raises(KeyError):
            feasibility_test(
                ts(0.5), Platform.from_speeds([1.0]), "edf", "weird"  # type: ignore[arg-type]
            )

    def test_partition_attached(self):
        report = edf_test_vs_partitioned(ts(0.5), Platform.from_speeds([1.0]))
        assert report.partition.success
        assert report.partition.alpha == 2.0
        assert report.partition.test_name == "edf"

    def test_rms_uses_ll_admission(self):
        report = rms_test_vs_partitioned(ts(0.5), Platform.from_speeds([1.0]))
        assert report.partition.test_name == "rms-ll"

    def test_empty_taskset_accepted(self):
        report = edf_test_vs_partitioned(TaskSet([]), Platform.from_speeds([1.0]))
        assert report.accepted
