"""Bench E7 / Figure 5: heterogeneity sweep at constant capacity."""

from repro.experiments import get_experiment


def test_e07_heterogeneity(run_once, record_result, jobs):
    result = run_once(get_experiment("e07"), scale="quick", jobs=jobs)
    record_result(result)
    for row in result.rows:
        # Theorem I.1's bound holds at every speed spread
        assert row["max alpha*"] <= 2.0 + 1e-2
        # LP weakly dominates first-fit acceptance (column names carry the
        # utilization point, so resolve them by prefix)
        ff = next(v for k, v in row.items() if k.startswith("FF-EDF accept"))
        lp = next(v for k, v in row.items() if k.startswith("LP accept"))
        assert lp >= ff - 1e-9
