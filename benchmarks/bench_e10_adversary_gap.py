"""Bench E10 / Table 4: partitioned-vs-any adversary gap audit."""

from repro.experiments import get_experiment


def test_e10_adversary_gap(run_once, record_result):
    result = run_once(get_experiment("e10"), scale="quick")
    record_result(result)
    for row in result.rows:
        if "bound respected" in row:
            assert row["bound respected"]
    assert sum(row["count"] for row in result.rows) > 0
