"""Bench E15 / Table 8: first-fit packing-anomaly scan."""

from repro.experiments import get_experiment


def test_e15_anomalies(run_once, record_result):
    result = run_once(get_experiment("e15"), scale="quick")
    record_result(result)
    for row in result.rows:
        assert row["non-monotone profiles"] <= row["instances with a transition"]
