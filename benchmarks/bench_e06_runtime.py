"""Bench E6 / Table 2: runtime scaling of the first-fit test.

Besides the macro table, this module micro-benchmarks the partitioner
kernel itself with pytest-benchmark's statistics (many rounds) at a few
(n, m) points — the numbers behind the O(nm) claim.
"""

import numpy as np
import pytest

from repro.core.partition import first_fit_partition
from repro.experiments import get_experiment
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform


def test_e06_runtime_table(run_once, record_result):
    result = run_once(get_experiment("e06"), scale="quick")
    record_result(result)
    assert all(row["ms"] > 0 for row in result.rows)


@pytest.mark.parametrize("n,m", [(128, 4), (512, 8), (2048, 16)])
def test_first_fit_kernel(benchmark, n, m):
    rng = np.random.default_rng(1)
    platform = geometric_platform(m, 8.0)
    taskset = generate_taskset(
        rng, n, 0.95 * platform.total_speed, u_max=platform.fastest_speed
    )
    result = benchmark(first_fit_partition, taskset, platform, "edf", alpha=2.0)
    assert result.success or result.failed_task is not None
