"""Bench E1 / Table 1: theorem constants and proof-inequality verification."""

import pytest

from repro.experiments import get_experiment


def test_e01_constants(run_once, record_result):
    result = run_once(get_experiment("e01"), scale="quick")
    record_result(result)
    conds = result.extra_tables["Proof-inequality values (must exceed 1)"]
    assert all(row["all > 1"] for row in conds)
    opt = result.extra_tables["Free-constant re-optimization"]
    for row in opt:
        assert row["re-optimized alpha"] == pytest.approx(row["paper alpha"], abs=0.02)
