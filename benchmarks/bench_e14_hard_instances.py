"""Bench E14 / Table 7: adversarial lower bounds via hard-instance search."""

from repro.experiments import get_experiment


def test_e14_hard_instances(run_once, record_result):
    result = run_once(get_experiment("e14"), scale="quick")
    record_result(result)
    for row in result.rows:
        # lower bounds must respect the theorems' upper bounds
        assert row["searched max alpha*"] <= row["upper bound (theorem)"] + 2e-3
        # and first-fit is provably not optimal: hardness above 1 exists
        assert row["searched max alpha*"] > 1.0
