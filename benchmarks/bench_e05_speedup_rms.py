"""Bench E5 / Figure 4: empirical speedup factor, RMS."""

from repro.experiments import get_experiment


def test_e05_speedup_rms(run_once, record_result, jobs):
    result = run_once(get_experiment("e05"), scale="quick", jobs=jobs)
    record_result(result)
    for row in result.rows:
        assert row["bound respected"]
    # the LL-admission penalty: RMS alpha* exceeds 1 on essentially every
    # near-capacity instance (median strictly above 1)
    partitioned = next(r for r in result.rows if r["adversary"] == "partitioned")
    assert partitioned["median a*"] > 1.0
