"""Bench E12 / Figure 7: the constant-optimization frontier."""

import pytest

from repro.experiments import get_experiment


def test_e12_frontier(run_once, record_result):
    result = run_once(get_experiment("e12"), scale="quick")
    record_result(result)
    opt = result.extra_tables["Global optimum over all constants"]
    for row in opt:
        assert row["global min alpha"] == pytest.approx(row["paper"], abs=0.02)
