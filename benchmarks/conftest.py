"""Shared fixtures for the benchmark suite.

Each ``bench_eXX`` module regenerates one evaluation artifact (DESIGN.md
§3) under pytest-benchmark timing and archives the rendered table to
``results/eXX.txt`` (+ ``.csv``) so the numbers in EXPERIMENTS.md can be
traced to a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.io_.tables import write_csv

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help=(
            "worker processes for campaign-based benchmarks "
            "(0: all cores; 1: serial in-process). Archived tables are "
            "identical for every value; only the timings change."
        ),
    )


@pytest.fixture(scope="session")
def jobs(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Persist an ExperimentResult's tables under results/."""

    def save(result: ExperimentResult) -> None:
        stem = results_dir / result.experiment_id
        stem.with_suffix(".txt").write_text(result.render() + "\n")
        write_csv(stem.with_suffix(".csv"), result.rows)

    return save


@pytest.fixture
def run_once(benchmark):
    """Run a whole-experiment callable exactly once under timing.

    Macro-experiments are seconds-long and internally randomized from a
    fixed seed; a single timed round is the honest measurement.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
