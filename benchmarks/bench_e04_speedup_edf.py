"""Bench E4 / Figure 3: empirical speedup factor, EDF."""

from repro.experiments import get_experiment


def test_e04_speedup_edf(run_once, record_result, jobs):
    result = run_once(get_experiment("e04"), scale="quick", jobs=jobs)
    record_result(result)
    for row in result.rows:
        assert row["bound respected"], (
            f"Theorem bound violated for {row['adversary']} adversary"
        )
        assert row["max a*"] <= row["bound"] + 1e-2
