"""Bench E18: campaign runner throughput, jobs=1 vs jobs=N.

Runs the same acceptance campaign serially and on a process pool,
checks the outputs are bit-identical, and archives the measured
throughput (trials/s, wall vs CPU time, worker utilization) under
``results/e18.txt`` / ``.csv``.  The parallel worker count comes from the
``--jobs`` benchmark option (all cores when left at the default of 1).

E18 is a harness artifact, not a paper experiment, so it is *not* in the
E1–E17 registry; it builds its ExperimentResult directly.
"""

import os

from repro.analysis.acceptance import acceptance_sweep, ff_tester
from repro.experiments.base import ExperimentResult
from repro.runner import resolve_jobs, telemetry
from repro.workloads.platforms import geometric_platform

SEED = 20160516  # the paper's conference date; any fixed value works
POINTS = (0.80, 0.90, 1.0)
SAMPLES = 40


def _measure(jobs):
    platform = geometric_platform(4, 8.0)
    with telemetry() as tele:
        curve = acceptance_sweep(
            SEED,
            platform,
            {"FF-EDF(a=1)": ff_tester("edf", 1.0), "FF-EDF(a=2)": ff_tester("edf", 2.0)},
            n_tasks=16,
            normalized_utilizations=POINTS,
            samples=SAMPLES,
            jobs=jobs,
            name="e18/throughput",
        )
    (stats,) = tele.runs
    return curve, stats


def test_e18_throughput(run_once, record_result, jobs):
    # At least two workers so the pool path (and its determinism) is
    # actually exercised even on a single-core host.
    parallel_jobs = max(2, resolve_jobs(0) if jobs in (0, 1) else jobs)

    serial_curve, serial = _measure(1)
    parallel_curve, parallel = run_once(_measure, parallel_jobs)

    # Determinism: fan-out must not change a single rate.
    assert parallel_curve.rates == serial_curve.rates
    assert parallel.trials == serial.trials == len(POINTS) * SAMPLES

    rows = [serial.as_row(), parallel.as_row()]
    ratio = (
        parallel.trials_per_second / serial.trials_per_second
        if serial.trials_per_second > 0
        else 0.0
    )
    for row, r in zip(rows, (1.0, ratio)):
        row["throughput vs jobs=1"] = r
    record_result(
        ExperimentResult(
            experiment_id="e18",
            title="Campaign runner throughput: jobs=1 vs jobs=N",
            rows=rows,
            notes=(
                f"Host: {os.cpu_count()} core(s). Same campaign "
                f"({len(POINTS)} points x {SAMPLES} samples x 2 testers) run "
                "serially and on the process pool; outputs verified "
                "bit-identical before timing is reported. Throughput gains "
                "require multiple physical cores — on a single-core host the "
                "pool can only add IPC overhead."
            ),
        )
    )

    # On a genuinely multi-core host the pool must realize parallelism.
    if (os.cpu_count() or 1) >= 4 and parallel.jobs >= 4:
        assert ratio >= 2.0, f"expected >=2x throughput at jobs={parallel.jobs}, got {ratio:.2f}x"
