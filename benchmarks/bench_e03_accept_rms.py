"""Bench E3 / Figure 2: RMS acceptance ratio vs normalized utilization."""

from repro.experiments import get_experiment


def test_e03_accept_rms(run_once, record_result, jobs):
    result = run_once(get_experiment("e03"), scale="quick", jobs=jobs)
    record_result(result)
    # the sufficiency ladder LL <= hyperbolic <= RTA holds pointwise
    for row in result.rows:
        assert row["FF-RMS-RTA(a=1)"] >= row["FF-RMS-hyp(a=1)"] - 1e-9
        assert row["FF-RMS-hyp(a=1)"] >= row["FF-RMS-LL(a=1)"] - 1e-9
