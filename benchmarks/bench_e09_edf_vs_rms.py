"""Bench E9 / Figure 6: the EDF-vs-RMS acceptance gap."""

from repro.experiments import get_experiment


def test_e09_edf_vs_rms(run_once, record_result, jobs):
    result = run_once(get_experiment("e09"), scale="quick", jobs=jobs)
    record_result(result)
    for row in result.rows:
        assert row["FF-EDF accept"] >= row["FF-RMS-LL accept"] - 1e-9
    # the LL bound column decreases toward ln 2
    bounds = [row["LL bound n(2^(1/n)-1)"] for row in result.rows]
    assert bounds == sorted(bounds, reverse=True)
