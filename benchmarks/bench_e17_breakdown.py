"""Bench E17 / Table 10: breakdown utilization distributions."""

from repro.experiments import get_experiment


def test_e17_breakdown(run_once, record_result, jobs):
    result = run_once(get_experiment("e17"), scale="quick", jobs=jobs)
    record_result(result)
    means = {row["test"]: row["mean breakdown U/S"] for row in result.rows}
    # the sufficiency ladder shows up as ordered breakdown capacity
    assert means["FF-RMS-LL"] <= means["FF-RMS-RTA"] + 1e-9
    assert means["FF-RMS-RTA"] <= means["FF-EDF"] + 1e-9
    assert means["FF-EDF"] <= means["exact-partitioned"] + 1e-9
