"""Bench E13 / Table 6: simulation cross-validation of accepted partitions."""

from repro.experiments import get_experiment


def test_e13_simulation(run_once, record_result):
    result = run_once(get_experiment("e13"), scale="quick")
    record_result(result)
    control = result.rows[-1]
    assert control["deadline misses"] > 0  # overload control must miss
    for row in result.rows[:-1]:
        assert row["deadline misses"] == 0
        assert row["validator errors"] == 0
