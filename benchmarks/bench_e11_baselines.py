"""Bench E11 / Table 5: agreement with Andersson-Tovar and the PTAS."""

from repro.experiments import get_experiment


def test_e11_baselines(run_once, record_result):
    result = run_once(get_experiment("e11"), scale="quick")
    record_result(result)
    for row in result.rows:
        if row["test"] in ("ours(a=2)", "AT[2](a=3)", "PTAS(eps=.25)"):
            assert row["false rejections"] == 0, (
                f"{row['test']} rejected a partitioned-feasible instance"
            )
