"""Bench E2 / Figure 1: EDF acceptance ratio vs normalized utilization."""

from repro.experiments import get_experiment


def test_e02_accept_edf(run_once, record_result, jobs):
    result = run_once(get_experiment("e02"), scale="quick", jobs=jobs)
    record_result(result)
    # shape: the theorem band (alpha=2) dominates the exact adversary,
    # which dominates the alpha=1 test, at every utilization point
    for row in result.rows:
        assert row["FF-EDF(a=2)"] >= row["exact-partitioned"] - 1e-9
        assert row["exact-partitioned"] >= row["FF-EDF(a=1)"] - 1e-9
    # and the curve collapses at the capacity wall
    assert result.rows[-1]["FF-EDF(a=1)"] <= result.rows[0]["FF-EDF(a=1)"]
