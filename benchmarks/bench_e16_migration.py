"""Bench E16 / Table 9: migration vs partitioning, executed."""

from repro.experiments import get_experiment


def test_e16_migration(run_once, record_result):
    result = run_once(get_experiment("e16"), scale="quick")
    record_result(result)
    by_family = {row["family"]: row for row in result.rows}
    assert by_family["Dhall (2 light + heavy)"]["partitioned FF-EDF clean"] == 1.0
    assert by_family["chunky thirds (3 x u~0.6)"]["LP feasible"] == 1.0
    assert by_family["chunky thirds (3 x u~0.6)"]["partitioned FF-EDF clean"] == 0.0
