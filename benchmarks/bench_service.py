"""Bench E21: serving throughput — sharded front end vs one process.

Drives the repro.loadgen closed-loop profiles at real server processes
(the single-process ``repro serve`` and the sharded
``repro serve --workers N`` for N in {1, 2, 4}) and archives sustained
RPS and p50/p99 latency per arm as ``BENCH_service.json`` (the CI
``bench-service`` job uploads it as an artifact), plus the rendered
table under ``results/e21.txt`` / ``.csv``.

What the headline measures
--------------------------
This host gives every arm the *same* CPU budget (the benchmark runs
wherever CI puts it, often on one core), so the sharded architecture's
throughput win on the ``closed-warm`` profile is not parallel compute —
it is **aggregate cache capacity**.  The profile's working set (512
canonical instances) deliberately exceeds one worker's LRU
(``CACHE_PER_WORKER`` = 320), and its staggered cyclic scan is the
textbook adversary for a bounded LRU: one worker evicts every entry
before its next use and pays the full evaluation on every request,
while two workers hold the set in aggregate (each shard sees only its
digest-routed half) and serve almost pure cache hits.  Sharding buys
capacity scaling, not just isolation — that is the architectural claim
``BENCH_service.json`` pins, and the cache hit ratios are archived next
to the RPS so the mechanism is visible in the artifact.

Methodology
-----------
Byte-identity is asserted *before* any timing: every corpus instance is
posted once to the single-process reference server and once to each
sharded arm, and the raw response bytes must match — a front end that
reorders, re-rounds, or re-flags a verdict fails the benchmark here.
Each timed arm then gets one untimed full-corpus warmup pass (the
steady state a long-lived service lives in) before the closed-loop
drivers run.  Arms are timed sequentially on a quiet host; sustained
RPS over several seconds is the measurement, so block-interleaving
(the micro-benchmark discipline) is not applicable.
"""

import json
import os
import platform as platform_mod
import re
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.loadgen import PROFILES, HttpClient, run_load
from repro.loadgen.profiles import build_corpus

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

WORKER_COUNTS = (1, 2, 4)
#: Per-worker LRU capacity: below the closed-warm working set (512), so
#: one worker thrashes while >= 2 workers hold it in aggregate.
CACHE_PER_WORKER = 320
#: Seconds per timed arm (closed loop); long enough for a stable mean
#: on a noisy shared host, short enough for a CI job.
WARM_DURATION = 6.0
HOT_DURATION = 3.0

_BANNER = re.compile(r"http://([\d.]+):(\d+)")


class _Server:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, workers: int):
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-size",
            str(CACHE_PER_WORKER),
        ]
        if workers > 0:
            argv += ["--workers", str(workers)]
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, stderr=subprocess.PIPE, text=True
        )
        assert self.proc.stderr is not None
        banner = self.proc.stderr.readline()
        match = _BANNER.search(banner)
        if match is None:
            self.proc.kill()
            raise RuntimeError(f"no listening banner in {banner!r}")
        self.host = match.group(1)
        self.port = int(match.group(2))

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=30)

    def __enter__(self) -> "_Server":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _post_all(server: _Server, corpus: list[bytes]) -> list[bytes]:
    """POST every corpus body once, in order; return raw response bytes."""
    out: list[bytes] = []
    with HttpClient(server.host, server.port) as http:
        for body in corpus:
            status, payload = http.request("POST", "/v1/test", body)
            assert status == 200, f"status {status}: {payload[:200]!r}"
            out.append(payload)
    return out


def _assert_equivalent(corpus: list[bytes]) -> None:
    """Sharded responses must be byte-identical to the single process.

    Fresh servers on both sides: each instance is submitted exactly
    once, so every response is a cold verdict (``cached: false``) on
    both architectures and the comparison covers the full report body.
    """
    with _Server(workers=0) as reference:
        expected = _post_all(reference, corpus)
    for workers in WORKER_COUNTS:
        with _Server(workers=workers) as sharded:
            got = _post_all(sharded, corpus)
        mismatches = [k for k, (a, b) in enumerate(zip(expected, got)) if a != b]
        assert not mismatches, (
            f"workers={workers}: {len(mismatches)} response(s) differ from "
            f"the single-process server (first at corpus index "
            f"{mismatches[0]}); refusing to time a wrong front end"
        )


def _cache_totals(server: _Server) -> dict[str, float]:
    """Aggregate verdict-cache hits/misses across the server's shards."""
    with HttpClient(server.host, server.port) as http:
        status, payload = http.request("GET", "/metrics")
    if status != 200:
        return {}
    metrics = json.loads(payload)
    hits = misses = 0
    if "shards" in metrics:
        for shard in metrics["shards"]:
            stats = shard.get("stats") or {}
            cache = stats.get("cache") or {}
            hits += cache.get("hits", 0)
            misses += cache.get("misses", 0)
    else:
        cache = metrics.get("cache", {})
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_ratio": hits / lookups if lookups else 0.0,
    }


def _time_arm(workers: int, corpora: dict[str, list[bytes]]) -> list[dict]:
    """Warm up one server and drive both closed-loop profiles at it."""
    arm = "single-process" if workers == 0 else f"sharded-{workers}"
    out = []
    with _Server(workers=workers) as server:
        # Untimed warmup: one full pass over the headline corpus.
        _post_all(server, corpora["closed-warm"])
        for profile_name, duration in (
            ("closed-warm", WARM_DURATION),
            ("closed-hot", HOT_DURATION),
        ):
            profile = PROFILES[profile_name].with_overrides(duration=duration)
            report = run_load(
                server.host, server.port, profile,
                corpus=corpora[profile_name],
            )
            assert report.errors == 0, (
                f"{arm}/{profile_name}: {report.errors} failed request(s)"
            )
            out.append(
                {
                    "arm": arm,
                    "workers": workers,
                    "profile": profile_name,
                    "duration_seconds": report.duration_seconds,
                    "requests": report.requests,
                    "rps": report.rps,
                    "p50_ms": report.latency_ms["p50"],
                    "p99_ms": report.latency_ms["p99"],
                    "cache": _cache_totals(server),
                }
            )
    return out


def _measure(corpora: dict[str, list[bytes]]) -> list[dict]:
    results = []
    for workers in (0, *WORKER_COUNTS):
        results.extend(_time_arm(workers, corpora))
    return results


def test_e21_service_throughput(run_once, record_result):
    warm = PROFILES["closed-warm"]
    corpora = {
        name: build_corpus(PROFILES[name])
        for name in ("closed-warm", "closed-hot")
    }
    _assert_equivalent(corpora["closed-warm"])

    results = run_once(_measure, corpora)

    by_arm = {
        (r["workers"], r["profile"]): r for r in results
    }
    baseline = by_arm[(1, "closed-warm")]
    multi = [by_arm[(w, "closed-warm")] for w in WORKER_COUNTS if w > 1]
    best = max(multi, key=lambda r: r["rps"])
    headline = {
        "profile": "closed-warm",
        "baseline_workers": 1,
        "baseline_rps": baseline["rps"],
        "best_workers": best["workers"],
        "best_rps": best["rps"],
        "multi_worker_speedup": best["rps"] / baseline["rps"],
    }

    payload = {
        "schema": "repro/bench-service/v1",
        "corpus": {
            "profile": "closed-warm",
            "seed": warm.seed,
            "working_set": warm.working_set,
            "n_tasks": warm.n_tasks,
            "machines": warm.n_machines,
            "stress": warm.stress,
            "scheduler": warm.scheduler,
            "adversary": warm.adversary,
        },
        "cache_size_per_worker": CACHE_PER_WORKER,
        "worker_counts": list(WORKER_COUNTS),
        "methodology": (
            "byte-identity vs the single-process server asserted on the "
            "full corpus before timing; one untimed full-corpus warmup "
            "pass per arm; closed-loop sustained RPS "
            f"({WARM_DURATION:g}s warm / {HOT_DURATION:g}s hot arms)"
        ),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform_mod.python_version(),
            "numpy": np.__version__,
        },
        "equivalence_checked": True,
        "results": results,
        "headline": headline,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        {
            "arm": r["arm"],
            "profile": r["profile"],
            "req/s": r["rps"],
            "p50 ms": r["p50_ms"],
            "p99 ms": r["p99_ms"],
            "cache hit%": 100.0 * r["cache"].get("hit_ratio", 0.0),
        }
        for r in results
    ]
    record_result(
        ExperimentResult(
            experiment_id="e21",
            title="Service throughput: sharded front end vs one process",
            rows=rows,
            notes=(
                f"Corpus: {warm.working_set} instances (n={warm.n_tasks}, "
                f"m={warm.n_machines}, stress {warm.stress:g}, seed "
                f"{warm.seed}); per-worker cache {CACHE_PER_WORKER}. "
                "closed-warm scans a working set bigger than one "
                "worker's LRU but inside the aggregate of two — the "
                "speedup is cache capacity, not parallel compute. "
                "Responses verified byte-identical to the single-process "
                "server before timing. Machine-readable summary: "
                "BENCH_service.json."
            ),
        )
    )

    assert headline["multi_worker_speedup"] > 1.8, (
        "acceptance floor is 1.8x single-worker RPS on closed-warm; "
        f"measured {headline['multi_worker_speedup']:.2f}x "
        f"(workers={best['workers']}: {best['rps']:.0f} vs "
        f"{baseline['rps']:.0f} req/s)"
    )
