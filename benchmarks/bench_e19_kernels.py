"""Bench E19/E20: batch kernel throughput vs the scalar loop.

Times :func:`repro.kernels.test_feasibility_batch` against the
equivalent ``feasibility_test`` loop on the fixed E18 corpus (256
instances, the campaign/service batch shape) for every available
backend and both theorem schedulers, then archives the table under
``results/e20.txt`` / ``.csv`` and the machine-readable summary as
``BENCH_kernels.json`` at the repository root (the CI ``bench-kernels``
job uploads it as an artifact).

Methodology
-----------
Bit-identity is asserted *before* any timing: a backend that disagrees
with the scalar path on a single report byte fails the benchmark.  Each
arm is then timed **block-interleaved best-of**: per cycle, a block of
back-to-back rounds per arm, alternating arms across several cycles,
keeping the minimum round time per arm.  Blocks measure honest
steady-state batch-consumer throughput (a batch consumer runs the kernel
repeatedly, caches warm); interleaving the blocks across cycles cancels
slow host phases (shared CPU noise hits every arm); best-of discards
scheduler preemptions.  The ratio of minima is the speedup headline.

Like E18 this is a harness artifact, not a paper experiment, so it is
not in the E1–E17 registry; it builds its ExperimentResult directly.
"""

import json
import os
import platform as platform_mod
import time
from pathlib import Path

import numpy as np

from repro.core.feasibility import feasibility_test
from repro.io_.serialize import report_to_dict
from repro.kernels import available_backends, reset_kernel_caches
from repro.kernels import test_feasibility_batch as feasibility_batch
from repro.experiments.base import ExperimentResult
from repro.workloads.builder import generate_taskset
from repro.workloads.platforms import geometric_platform

SEED = 20160516  # the E18 corpus seed (the paper's conference date)
BATCH = 256
N_TASKS = 16
MACHINES = 4
SPEED_RATIO = 8.0
STRESS_CYCLE = (0.80, 0.90, 1.0)

#: Rounds per block and interleaving cycles per arm (see module docs).
BLOCK = 12
CYCLES = 8

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _corpus():
    rng = np.random.default_rng(SEED)
    platform = geometric_platform(MACHINES, SPEED_RATIO)
    out = []
    for k in range(BATCH):
        stress = STRESS_CYCLE[k % len(STRESS_CYCLE)]
        taskset = generate_taskset(
            rng,
            N_TASKS,
            stress * platform.total_speed,
            u_max=platform.fastest_speed,
        )
        out.append((taskset, platform))
    return out


def _scalar_arm(corpus, scheduler):
    for taskset, platform in corpus:
        feasibility_test(taskset, platform, scheduler, "partitioned")


def _kernel_arm(corpus, scheduler, backend):
    feasibility_batch(corpus, scheduler, "partitioned", backend=backend)


def _assert_equivalent(corpus, scheduler, backend):
    scalar = [
        report_to_dict(
            feasibility_test(ts, pf, scheduler, "partitioned")
        )
        for ts, pf in corpus
    ]
    batch = [
        report_to_dict(r)
        for r in feasibility_batch(
            corpus, scheduler, "partitioned", backend=backend
        )
    ]
    assert batch == scalar, (
        f"{backend} reports differ from scalar for {scheduler}; "
        "refusing to time a wrong backend"
    )


def _measure(corpus):
    """Block-interleaved best-of over every (scheduler, arm) pair."""
    backends = [b for b in available_backends() if b != "scalar"]
    best: dict[tuple[str, str], float] = {}
    for scheduler in ("edf", "rms"):
        for backend in backends:
            _assert_equivalent(corpus, scheduler, backend)
        arms = [("scalar", lambda s=scheduler: _scalar_arm(corpus, s))]
        arms += [
            (
                backend,
                lambda s=scheduler, b=backend: _kernel_arm(corpus, s, b),
            )
            for backend in backends
        ]
        for _ in range(CYCLES):
            for name, arm in arms:
                key = (scheduler, name)
                for _ in range(BLOCK):
                    t0 = time.perf_counter()
                    arm()
                    dt = time.perf_counter() - t0
                    if dt < best.get(key, float("inf")):
                        best[key] = dt
    return best, backends


def test_e19_kernel_throughput(run_once, record_result):
    corpus = _corpus()
    reset_kernel_caches()
    # One untimed pass per arm warms the buffer/threshold caches — the
    # steady state a batch consumer lives in.
    for scheduler in ("edf", "rms"):
        _scalar_arm(corpus, scheduler)
        for backend in available_backends():
            if backend != "scalar":
                _kernel_arm(corpus, scheduler, backend)

    best, backends = run_once(_measure, corpus)

    rows = []
    results = []
    headline = {"speedup_batch256": 0.0}
    for scheduler in ("edf", "rms"):
        scalar_t = best[(scheduler, "scalar")]
        for name in ["scalar"] + backends:
            t = best[(scheduler, name)]
            speedup = scalar_t / t
            entry = {
                "scheduler": scheduler,
                "backend": name,
                "batch_size": BATCH,
                "best_seconds": t,
                "instances_per_second": BATCH / t,
                "speedup_vs_scalar": speedup,
            }
            results.append(entry)
            rows.append(
                {
                    "scheduler": scheduler,
                    "backend": name,
                    "batch ms": 1e3 * t,
                    "instances/s": BATCH / t,
                    "speedup": speedup,
                }
            )
            if name != "scalar" and speedup > headline["speedup_batch256"]:
                headline = {
                    "speedup_batch256": speedup,
                    "scheduler": scheduler,
                    "backend": name,
                }

    payload = {
        "schema": "repro/bench-kernels/v1",
        "corpus": {
            "name": "e18",
            "seed": SEED,
            "instances": BATCH,
            "n_tasks": N_TASKS,
            "machines": MACHINES,
            "speed_ratio": SPEED_RATIO,
            "stress_cycle": list(STRESS_CYCLE),
        },
        "methodology": (
            f"block-interleaved best-of: {BLOCK} rounds per block, "
            f"{CYCLES} cycles per arm, equivalence asserted before timing"
        ),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform_mod.python_version(),
            "numpy": np.__version__,
        },
        "equivalence_checked": True,
        "results": results,
        "headline": headline,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment_id="e20",
            title="Batch kernel throughput vs the scalar loop (E18 corpus)",
            rows=rows,
            notes=(
                f"Corpus: {BATCH} instances (n={N_TASKS}, m={MACHINES}, "
                f"geometric ratio {SPEED_RATIO:g}, seed {SEED}); "
                f"block-interleaved best-of ({BLOCK} rounds x {CYCLES} "
                "cycles per arm). Reports verified bit-identical to the "
                "scalar path before timing. Machine-readable summary: "
                "BENCH_kernels.json."
            ),
        )
    )

    assert headline["speedup_batch256"] >= 10.0, (
        f"acceptance floor is 10x at batch {BATCH}; "
        f"measured {headline['speedup_batch256']:.2f}x "
        f"({headline.get('scheduler')}/{headline.get('backend')})"
    )
