"""Bench E8 / Table 3: ordering and fit-rule ablation."""

import pytest

from repro.experiments import get_experiment


def test_e08_ablation(run_once, record_result):
    result = run_once(get_experiment("e08"), scale="quick")
    record_result(result)
    best = max(row["acceptance"] for row in result.rows)
    paper = next(r for r in result.rows if "paper" in r["strategy"])
    assert paper["acceptance"] == pytest.approx(best, abs=0.05)
    # increasing-utilization onto fast-first is the worst corner
    worst = min(result.rows, key=lambda r: r["acceptance"])
    assert "util-asc" in worst["strategy"]
