"""Setup shim.

Allows legacy editable installs (``pip install -e . --no-use-pep517
--no-build-isolation`` or ``python setup.py develop``) on machines without
the ``wheel`` package or network access; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
