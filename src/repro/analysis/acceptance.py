"""Acceptance-ratio sweeps (experiments E2/E3/E7/E9).

An acceptance sweep generates many random task sets per normalized-
utilization point and measures, per tester, the fraction accepted — the
schedulability-curve methodology standard in this literature.  Testers
are plain predicates ``(taskset, platform) -> bool`` so the same sweep
machinery serves first-fit variants, the LP oracle, exact adversaries and
the PTAS alike (:func:`ff_tester` etc. build the common ones).

Each (utilization point, sample) pair is one :class:`Trial` of a
:class:`~repro.workloads.campaigns.Campaign` with its own derived seed,
executed through :func:`repro.runner.run_trials` — so the sweep
parallelizes across trials with results bit-identical to ``jobs=1``.
The built-in testers are picklable objects (not closures) so they cross
the pool boundary; custom testers must be picklable too when ``jobs > 1``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..baselines.exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_rms_feasible,
)
from ..core.lp import lp_feasible
from ..core.model import Platform, TaskSet
from ..core.partition import first_fit_partition
from ..kernels import first_fit_batch
from ..runner import run_trials
from ..workloads.builder import generate_taskset
from ..workloads.campaigns import Campaign, Trial, campaign_seed

__all__ = [
    "Tester",
    "FirstFitTester",
    "ExactEDFTester",
    "ExactRMSTester",
    "ff_tester",
    "lp_tester",
    "exact_edf_tester",
    "exact_rms_tester",
    "AcceptanceCurve",
    "acceptance_sweep",
]

Tester = Callable[[TaskSet, Platform], bool]


@dataclass(frozen=True)
class FirstFitTester:
    """First-fit acceptance predicate for an admission test and alpha."""

    test: str
    alpha: float = 1.0

    def __call__(self, taskset: TaskSet, platform: Platform) -> bool:
        return first_fit_partition(
            taskset, platform, self.test, alpha=self.alpha
        ).success


@dataclass(frozen=True)
class ExactEDFTester:
    """Exact partitioned-EDF adversary; undecided (budget) counts as
    accepted, keeping the curve an upper bound as intended."""

    node_limit: int = 500_000

    def __call__(self, taskset: TaskSet, platform: Platform) -> bool:
        verdict = exact_partitioned_edf_feasible(
            taskset, platform, node_limit=self.node_limit
        )
        return verdict is not False


@dataclass(frozen=True)
class ExactRMSTester:
    """Exact partitioned-RMS (RTA) adversary; undecided counts as accepted."""

    node_limit: int = 100_000

    def __call__(self, taskset: TaskSet, platform: Platform) -> bool:
        verdict = exact_partitioned_rms_feasible(
            taskset, platform, node_limit=self.node_limit
        )
        return verdict is not False


def ff_tester(test: str, alpha: float = 1.0) -> Tester:
    """First-fit acceptance predicate for an admission test and alpha."""
    return FirstFitTester(test, alpha)


def lp_tester() -> Tester:
    """The §II LP oracle (necessary condition for any scheduler)."""
    return lp_feasible


def exact_edf_tester(node_limit: int = 500_000) -> Tester:
    """Exact partitioned-EDF adversary tester (see :class:`ExactEDFTester`)."""
    return ExactEDFTester(node_limit)


def exact_rms_tester(node_limit: int = 100_000) -> Tester:
    """Exact partitioned-RMS adversary tester (see :class:`ExactRMSTester`)."""
    return ExactRMSTester(node_limit)


@dataclass(frozen=True)
class AcceptanceCurve:
    """One sweep's results: rows = normalized utilizations, cols = testers."""

    normalized_utilizations: tuple[float, ...]
    #: tester name -> acceptance rate per utilization point
    rates: Mapping[str, tuple[float, ...]]
    samples: int
    n_tasks: int

    def as_rows(self) -> list[dict[str, float]]:
        """Table rows: one dict per utilization point."""
        rows = []
        for k, u in enumerate(self.normalized_utilizations):
            row: dict[str, float] = {"U/S": u}
            for name, series in self.rates.items():
                row[name] = series[k]
            rows.append(row)
        return rows


def _acceptance_trial(
    trial: Trial,
    *,
    platform: Platform,
    testers: dict[str, Tester],
    n_tasks: int,
    cap: float,
    dr_dist: str = "implicit",
    dr_min: float = 0.5,
    dr_max: float = 1.0,
) -> dict[str, bool]:
    """One sweep sample: draw a task set at the trial's utilization point
    and evaluate every tester on it.  Pure in (trial.seed, trial.params)."""
    rng = trial.rng()
    total = trial.params["U/S"] * platform.total_speed
    taskset = generate_taskset(
        rng,
        n_tasks,
        total,
        u_max=min(cap, total),
        dr_dist=dr_dist,  # type: ignore[arg-type]
        dr_min=dr_min,
        dr_max=dr_max,
    )
    return {
        name: bool(tester(taskset, platform))
        for name, tester in testers.items()
    }


#: Admission tests :func:`repro.kernels.first_fit_batch` implements.
_KERNEL_FF_TESTS = ("edf", "rms-ll", "edf-dbf")


@dataclass(frozen=True)
class _AcceptanceBatch:
    """Picklable whole-chunk evaluator for :func:`acceptance_sweep`.

    Draws every trial's task set exactly as :func:`_acceptance_trial`
    does (same per-trial RNG stream), then evaluates each
    :class:`FirstFitTester` over the chunk with *one*
    :func:`repro.kernels.first_fit_batch` call; testers the kernels do
    not cover (LP, exact adversaries, custom predicates) fall back to
    the scalar per-instance call.  Record-identical to the per-trial
    path — the kernels are bit-identical to the scalar partitioner.
    """

    platform: Platform
    testers: tuple[tuple[str, Tester], ...]
    n_tasks: int
    cap: float
    backend: str
    dr_dist: str = "implicit"
    dr_min: float = 0.5
    dr_max: float = 1.0

    def __call__(self, trials: Sequence[Trial]) -> list[dict[str, bool]]:
        tasksets = []
        for trial in trials:
            rng = trial.rng()
            total = trial.params["U/S"] * self.platform.total_speed
            tasksets.append(
                generate_taskset(
                    rng,
                    self.n_tasks,
                    total,
                    u_max=min(self.cap, total),
                    dr_dist=self.dr_dist,  # type: ignore[arg-type]
                    dr_min=self.dr_min,
                    dr_max=self.dr_max,
                )
            )
        instances = [(ts, self.platform) for ts in tasksets]
        columns: list[list[bool]] = []
        for _, tester in self.testers:
            if (
                isinstance(tester, FirstFitTester)
                and tester.test in _KERNEL_FF_TESTS
            ):
                results = first_fit_batch(
                    instances,
                    tester.test,
                    alpha=tester.alpha,
                    backend=self.backend,
                )
                columns.append([r.success for r in results])
            else:
                columns.append(
                    [bool(tester(ts, self.platform)) for ts in tasksets]
                )
        names = [nm for nm, _ in self.testers]
        return [
            dict(zip(names, flags)) for flags in zip(*columns)
        ] if trials else []


def acceptance_sweep(
    seed: int | np.random.Generator,
    platform: Platform,
    testers: Mapping[str, Tester],
    *,
    n_tasks: int = 24,
    normalized_utilizations: Sequence[float] = (
        0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ),
    samples: int = 50,
    u_max_fraction: float = 1.0,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    name: str = "acceptance",
    backend: str | None = None,
    dr_dist: str = "implicit",
    dr_min: float = 0.5,
    dr_max: float = 1.0,
) -> AcceptanceCurve:
    """Measure acceptance rates on UUniFast task sets.

    At each point ``x``, task sets have total utilization ``x *
    total_speed`` with per-task utilization capped at ``u_max_fraction *
    fastest_speed`` (tasks larger than the fastest machine are hopeless
    for every tester and would only flatten all curves equally).

    ``seed`` may be an integer (the reproducible way) or a Generator (one
    root seed is drawn from it).  Every (point, sample) pair becomes one
    independently seeded trial fanned out over ``jobs`` workers; the
    resulting curve is bit-identical for every ``jobs`` value.  ``name``
    labels the campaign and is folded into the trial seeds.

    ``backend`` (``scalar`` / ``kernel`` / ``numpy``) routes the
    first-fit testers through :func:`repro.kernels.first_fit_batch`, a
    whole trial chunk per call; ``None`` keeps the per-trial scalar
    path.  The curve is bit-identical either way.

    ``dr_dist``/``dr_min``/``dr_max`` select the deadline-ratio axis of
    :func:`repro.workloads.builder.generate_taskset`; the ``implicit``
    default draws no extra random numbers, so existing pinned curves are
    unchanged.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    cap = u_max_fraction * platform.fastest_speed
    xs = tuple(float(x) for x in normalized_utilizations)
    campaign = Campaign(
        name=name,
        grid={"U/S": xs},
        replications=samples,
        base_seed=campaign_seed(seed),
    )
    fn = functools.partial(
        _acceptance_trial,
        platform=platform,
        testers=dict(testers),
        n_tasks=n_tasks,
        cap=cap,
        dr_dist=dr_dist,
        dr_min=dr_min,
        dr_max=dr_max,
    )
    batch_fn = None
    if backend is not None:
        from ..kernels import resolve_backend

        batch_fn = _AcceptanceBatch(
            platform=platform,
            testers=tuple(testers.items()),
            n_tasks=n_tasks,
            cap=cap,
            backend=resolve_backend(backend),
            dr_dist=dr_dist,
            dr_min=dr_min,
            dr_max=dr_max,
        )
    run = run_trials(
        fn,
        campaign,
        jobs=jobs,
        chunk_size=chunk_size,
        label=name,
        batch_fn=batch_fn,
    )
    names = list(testers)
    counts = {nm: [0] * len(xs) for nm in names}
    records = iter(run.records)
    for k in range(len(xs)):
        for _ in range(samples):
            record = next(records)
            for nm in names:
                if record[nm]:
                    counts[nm][k] += 1
    rates = {nm: tuple(c / samples for c in counts[nm]) for nm in names}
    return AcceptanceCurve(
        normalized_utilizations=xs,
        rates=rates,
        samples=samples,
        n_tasks=n_tasks,
    )
