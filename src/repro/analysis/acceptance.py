"""Acceptance-ratio sweeps (experiments E2/E3/E7/E9).

An acceptance sweep generates many random task sets per normalized-
utilization point and measures, per tester, the fraction accepted — the
schedulability-curve methodology standard in this literature.  Testers
are plain predicates ``(taskset, platform) -> bool`` so the same sweep
machinery serves first-fit variants, the LP oracle, exact adversaries and
the PTAS alike (:func:`ff_tester` etc. build the common ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..baselines.exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_rms_feasible,
)
from ..core.lp import lp_feasible
from ..core.model import Platform, TaskSet
from ..core.partition import first_fit_partition
from ..workloads.builder import generate_taskset

__all__ = [
    "Tester",
    "ff_tester",
    "lp_tester",
    "exact_edf_tester",
    "exact_rms_tester",
    "AcceptanceCurve",
    "acceptance_sweep",
]

Tester = Callable[[TaskSet, Platform], bool]


def ff_tester(test: str, alpha: float = 1.0) -> Tester:
    """First-fit acceptance predicate for an admission test and alpha."""

    def run(taskset: TaskSet, platform: Platform) -> bool:
        return first_fit_partition(taskset, platform, test, alpha=alpha).success

    return run


def lp_tester() -> Tester:
    """The §II LP oracle (necessary condition for any scheduler)."""
    return lp_feasible


def exact_edf_tester(node_limit: int = 500_000) -> Tester:
    """Exact partitioned-EDF adversary; undecided (budget) counts as
    accepted, keeping the curve an upper bound as intended."""

    def run(taskset: TaskSet, platform: Platform) -> bool:
        verdict = exact_partitioned_edf_feasible(
            taskset, platform, node_limit=node_limit
        )
        return verdict is not False

    return run


def exact_rms_tester(node_limit: int = 100_000) -> Tester:
    """Exact partitioned-RMS (RTA) adversary; undecided counts as accepted."""

    def run(taskset: TaskSet, platform: Platform) -> bool:
        verdict = exact_partitioned_rms_feasible(
            taskset, platform, node_limit=node_limit
        )
        return verdict is not False

    return run


@dataclass(frozen=True)
class AcceptanceCurve:
    """One sweep's results: rows = normalized utilizations, cols = testers."""

    normalized_utilizations: tuple[float, ...]
    #: tester name -> acceptance rate per utilization point
    rates: Mapping[str, tuple[float, ...]]
    samples: int
    n_tasks: int

    def as_rows(self) -> list[dict[str, float]]:
        """Table rows: one dict per utilization point."""
        rows = []
        for k, u in enumerate(self.normalized_utilizations):
            row: dict[str, float] = {"U/S": u}
            for name, series in self.rates.items():
                row[name] = series[k]
            rows.append(row)
        return rows


def acceptance_sweep(
    rng: np.random.Generator,
    platform: Platform,
    testers: Mapping[str, Tester],
    *,
    n_tasks: int = 24,
    normalized_utilizations: Sequence[float] = (
        0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ),
    samples: int = 50,
    u_max_fraction: float = 1.0,
) -> AcceptanceCurve:
    """Measure acceptance rates on UUniFast task sets.

    At each point ``x``, task sets have total utilization ``x *
    total_speed`` with per-task utilization capped at ``u_max_fraction *
    fastest_speed`` (tasks larger than the fastest machine are hopeless
    for every tester and would only flatten all curves equally).
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    cap = u_max_fraction * platform.fastest_speed
    names = list(testers)
    counts = {name: [0] * len(normalized_utilizations) for name in names}
    for k, x in enumerate(normalized_utilizations):
        total = x * platform.total_speed
        for _ in range(samples):
            taskset = generate_taskset(
                rng, n_tasks, total, u_max=min(cap, total)
            )
            for name in names:
                if testers[name](taskset, platform):
                    counts[name][k] += 1
    rates = {
        name: tuple(c / samples for c in counts[name]) for name in names
    }
    return AcceptanceCurve(
        normalized_utilizations=tuple(float(x) for x in normalized_utilizations),
        rates=rates,
        samples=samples,
        n_tasks=n_tasks,
    )
