"""Sensitivity analysis: how much can the workload grow before a verdict flips?

Practical real-time engineering rarely asks only "schedulable?"; it asks
"with how much margin?".  Two standard margins are provided, both defined
against any acceptance predicate (first-fit at some alpha, exact
adversaries, the LP, ...):

* **system scaling margin** — the largest uniform factor by which every
  WCET can be multiplied with the instance still accepted (the inverse of
  the 'breakdown utilization' normalization);
* **per-task slack** — the largest factor for *one* task's WCET, others
  fixed; tasks with the smallest slack are the design's critical tasks.

Like the min-alpha search, the bisection brackets *verified* outcomes
(accept below, reject above) so non-monotone acceptance predicates cannot
produce a wrong answer — only a conservative edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.model import Platform, Task, TaskSet
from ..core.partition import first_fit_partition

__all__ = [
    "AcceptancePredicate",
    "ff_acceptance",
    "system_scaling_margin",
    "per_task_slack",
    "critical_tasks",
]

AcceptancePredicate = Callable[[TaskSet], bool]


def ff_acceptance(
    platform: Platform, test: str = "edf", alpha: float = 1.0
) -> AcceptancePredicate:
    """Acceptance predicate: first-fit succeeds on ``platform``."""

    def accept(taskset: TaskSet) -> bool:
        return first_fit_partition(taskset, platform, test, alpha=alpha).success

    return accept


def _bisect_max_factor(
    accept_at: Callable[[float], bool],
    *,
    lo: float,
    hi_start: float,
    tol: float,
    max_doublings: int,
) -> float:
    """Largest factor (within tol) at which ``accept_at`` holds.

    Requires ``accept_at(lo)``; doubles ``hi`` until rejection.
    """
    if not accept_at(lo):
        raise ValueError(f"instance not accepted at the base factor {lo}")
    hi = hi_start
    for _ in range(max_doublings):
        if not accept_at(hi):
            break
        lo = hi
        hi *= 2.0
    else:
        return lo  # accepted everywhere we looked: effectively unbounded
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if accept_at(mid):
            lo = mid
        else:
            hi = mid
    return lo


def system_scaling_margin(
    taskset: TaskSet,
    accept: AcceptancePredicate,
    *,
    tol: float = 1e-4,
    max_doublings: int = 20,
) -> float:
    """Largest uniform WCET scaling the predicate still accepts.

    1.0 means no margin; 1.25 means every execution budget can grow 25%.

    Raises
    ------
    ValueError
        if the unscaled instance is already rejected.
    """
    if len(taskset) == 0:
        raise ValueError("empty task set has no scaling margin")
    return _bisect_max_factor(
        lambda f: accept(taskset.scaled(f)),
        lo=1.0,
        hi_start=2.0,
        tol=tol,
        max_doublings=max_doublings,
    )


def per_task_slack(
    taskset: TaskSet,
    index: int,
    accept: AcceptancePredicate,
    *,
    tol: float = 1e-4,
    max_doublings: int = 20,
) -> float:
    """Largest scaling of task ``index``'s WCET alone keeping acceptance."""
    n = len(taskset)
    if not 0 <= index < n:
        raise IndexError(index)

    base = taskset[index]

    def scaled_at(factor: float) -> TaskSet:
        tasks = list(taskset)
        tasks[index] = base.scaled(factor)
        return TaskSet(tasks)

    return _bisect_max_factor(
        lambda f: accept(scaled_at(f)),
        lo=1.0,
        hi_start=2.0,
        tol=tol,
        max_doublings=max_doublings,
    )


@dataclass(frozen=True)
class TaskSlack:
    """One task's slack result."""

    index: int
    name: str
    slack: float


def critical_tasks(
    taskset: TaskSet,
    accept: AcceptancePredicate,
    *,
    tol: float = 1e-3,
) -> list[TaskSlack]:
    """Per-task slacks, most critical (smallest slack) first."""
    out = [
        TaskSlack(
            index=i,
            name=taskset[i].name or f"tau{i}",
            slack=per_task_slack(taskset, i, accept, tol=tol),
        )
        for i in range(len(taskset))
    ]
    out.sort(key=lambda s: s.slack)
    return out
