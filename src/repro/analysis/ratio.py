"""Minimum-speedup search: the empirical approximation factor.

For one instance, the *empirical speedup factor* of the first-fit test is
the smallest ``alpha`` at which the partitioner succeeds.  On instances
certified feasible for an adversary class, the theorems bound this value
(2 / 1+sqrt2 / 2.98 / 3.34); measuring its distribution is how the
evaluation quantifies the analyses' tightness (experiments E4/E5).

First-fit is not formally monotone in ``alpha`` (more capacity can
reroute early tasks and strand a later one — a packing anomaly), so the
binary search brackets with doubling, optionally scans a grid to detect
anomalies, and reports what it saw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bounds import AdmissionTest
from ..core.model import Platform, TaskSet
from ..core.partition import TaskOrder, partition

__all__ = ["MinAlphaResult", "alpha_success_profile", "min_alpha_first_fit"]


@dataclass(frozen=True)
class MinAlphaResult:
    """Outcome of the minimum-alpha search for one instance."""

    #: smallest augmentation (within ``tol``) at which first-fit succeeded
    alpha: float
    #: search resolution
    tol: float
    #: False if a grid scan found success followed by failure at a larger
    #: alpha (packing anomaly); None when no scan was requested
    monotone: bool | None
    #: first-fit invocations spent
    evaluations: int


def _succeeds(
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str,
    alpha: float,
    task_order: TaskOrder = "util-desc",
) -> bool:
    return partition(
        taskset, platform, test, alpha=alpha, task_order=task_order
    ).success


def alpha_success_profile(
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str,
    alphas: np.ndarray,
    *,
    task_order: TaskOrder = "util-desc",
) -> np.ndarray:
    """First-fit success at each augmentation in ``alphas`` (boolean array)."""
    return np.array(
        [
            _succeeds(taskset, platform, test, float(a), task_order)
            for a in alphas
        ],
        dtype=bool,
    )


def min_alpha_first_fit(
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str = "edf",
    *,
    lo: float = 1.0,
    hi: float | None = None,
    tol: float = 1e-3,
    max_doublings: int = 24,
    anomaly_scan: int = 0,
    task_order: TaskOrder = "util-desc",
) -> MinAlphaResult:
    """Smallest ``alpha`` at which first-fit partitions the instance.

    Parameters
    ----------
    lo, hi:
        Search bracket.  ``hi=None`` doubles from ``max(lo, 1)`` until
        success (raising after ``max_doublings``).
    task_order:
        Feed order for the first-fit loop — ``util-desc`` is the paper's
        §III algorithm, ``deadline-asc`` the deadline-monotonic shape the
        Han–Zhao and Chen baselines are analyzed under.
    anomaly_scan:
        If positive, additionally evaluate this many evenly spaced alphas
        across the bracket and report whether the success profile was
        monotone (the binary-search answer refers to the *lowest* success
        edge it can certify).

    Raises
    ------
    RuntimeError
        if no successful alpha is found while doubling (malformed
        instance, e.g. a task bigger than every augmented machine cap).
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    evaluations = 0

    def ok(alpha: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        return _succeeds(taskset, platform, test, alpha, task_order)

    if ok(lo):
        return MinAlphaResult(alpha=lo, tol=tol, monotone=None, evaluations=evaluations)

    if hi is None:
        hi = max(lo, 1.0)
        for _ in range(max_doublings):
            hi *= 2.0
            if ok(hi):
                break
        else:
            raise RuntimeError(
                f"first-fit never succeeded up to alpha={hi}; "
                "instance cannot be partitioned at any tested augmentation"
            )
    elif not ok(hi):
        raise RuntimeError(f"first-fit fails even at the bracket top alpha={hi}")

    lo_f, hi_s = lo, hi  # failing and succeeding ends
    while hi_s - lo_f > tol:
        mid = 0.5 * (lo_f + hi_s)
        if ok(mid):
            hi_s = mid
        else:
            lo_f = mid

    monotone: bool | None = None
    if anomaly_scan > 0:
        grid = np.linspace(lo, hi, anomaly_scan)
        profile = alpha_success_profile(
            taskset, platform, test, grid, task_order=task_order
        )
        evaluations += anomaly_scan
        # monotone: no True followed by a later False
        seen_true = False
        monotone = True
        for v in profile:
            if seen_true and not v:
                monotone = False
                break
            seen_true = seen_true or bool(v)

    return MinAlphaResult(
        alpha=hi_s, tol=tol, monotone=monotone, evaluations=evaluations
    )
