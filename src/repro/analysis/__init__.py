"""Measurement machinery: acceptance sweeps, min-alpha search, speedup
studies, runtime scaling, statistics."""

from .acceptance import (
    AcceptanceCurve,
    Tester,
    acceptance_sweep,
    exact_edf_tester,
    exact_rms_tester,
    ff_tester,
    lp_tester,
)
from .breakdown import BreakdownStudy, breakdown_utilizations
from .hard_instances import HardInstance, search_hard_instance
from .sensitivity import (
    TaskSlack,
    critical_tasks,
    ff_acceptance,
    per_task_slack,
    system_scaling_margin,
)
from .ratio import MinAlphaResult, alpha_success_profile, min_alpha_first_fit
from .runtime import RuntimePoint, runtime_scaling
from .speedup import SpeedupStudy, empirical_speedup_study
from .stats import Summary, bootstrap_ci, empirical_cdf, summarize

__all__ = [
    "AcceptanceCurve",
    "Tester",
    "acceptance_sweep",
    "exact_edf_tester",
    "exact_rms_tester",
    "ff_tester",
    "lp_tester",
    "BreakdownStudy",
    "breakdown_utilizations",
    "HardInstance",
    "search_hard_instance",
    "TaskSlack",
    "critical_tasks",
    "ff_acceptance",
    "per_task_slack",
    "system_scaling_margin",
    "MinAlphaResult",
    "alpha_success_profile",
    "min_alpha_first_fit",
    "RuntimePoint",
    "runtime_scaling",
    "SpeedupStudy",
    "empirical_speedup_study",
    "Summary",
    "bootstrap_ci",
    "empirical_cdf",
    "summarize",
]
