"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "bootstrap_ci", "empirical_cdf"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4f} std={self.std:.4f} "
            f"min={self.minimum:.4f} med={self.median:.4f} "
            f"p95={self.p95:.4f} max={self.maximum:.4f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics; raises on an empty sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        p95=float(np.quantile(arr, 0.95)),
    )


def bootstrap_ci(
    values: Sequence[float],
    *,
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = float(np.quantile(means, (1 - level) / 2))
    hi = float(np.quantile(means, 1 - (1 - level) / 2))
    return lo, hi


def empirical_cdf(
    values: Sequence[float], points: Sequence[float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) of the empirical CDF, at the sample points by default."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    if points is None:
        xs = arr
        ys = np.arange(1, arr.size + 1) / arr.size
        return xs, ys
    xs = np.asarray(list(points), dtype=float)
    ys = np.searchsorted(arr, xs, side="right") / arr.size
    return xs, ys
