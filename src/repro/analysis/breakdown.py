"""Breakdown utilization: capacity-normalized acceptance thresholds.

The *breakdown utilization* of a test on an instance shape is the largest
normalized utilization ``U / total_speed`` at which the test still
accepts when the shape is scaled up uniformly (Lehoczky, Sha & Ding's
classic metric, lifted to the partitioned heterogeneous setting).  Where
acceptance-ratio curves (E2/E3) sample fixed utilization points,
breakdown distributions characterize the whole transition in one number
per instance — the metric experiment E17 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.model import Platform
from ..workloads.builder import generate_taskset
from .acceptance import Tester
from .sensitivity import system_scaling_margin
from .stats import Summary, summarize

__all__ = ["BreakdownStudy", "breakdown_utilizations"]


@dataclass(frozen=True)
class BreakdownStudy:
    """Breakdown distributions, one sample list per tester."""

    samples: Mapping[str, tuple[float, ...]]
    platform: Platform
    n_tasks: int

    def summary(self, tester: str) -> Summary:
        return summarize(list(self.samples[tester]))


def breakdown_utilizations(
    rng: np.random.Generator,
    platform: Platform,
    testers: Mapping[str, Tester],
    *,
    n_tasks: int = 16,
    samples: int = 50,
    base_fraction: float = 0.3,
    tol: float = 1e-3,
) -> BreakdownStudy:
    """Measure breakdown utilization distributions.

    Each sample draws one instance *shape* at ``base_fraction`` of the
    platform capacity (low enough that every tester accepts it), then
    scales it up per tester until rejection; the breakdown value is the
    normalized utilization at the acceptance edge.  All testers see the
    same shapes, so their distributions are directly comparable.
    """
    if not 0 < base_fraction < 1:
        raise ValueError("base_fraction must be in (0, 1)")
    if samples < 1:
        raise ValueError("samples must be positive")
    capacity = platform.total_speed
    out: dict[str, list[float]] = {name: [] for name in testers}
    for _ in range(samples):
        shape = generate_taskset(
            rng,
            n_tasks,
            base_fraction * capacity,
            u_max=base_fraction * platform.fastest_speed,
        )
        for name, tester in testers.items():
            try:
                factor = system_scaling_margin(
                    shape,
                    lambda ts, t=tester: t(ts, platform),
                    tol=tol,
                )
            except ValueError:
                # the tester rejects even the base shape: breakdown below base
                out[name].append(0.0)
                continue
            out[name].append(factor * base_fraction)
    return BreakdownStudy(
        samples={k: tuple(v) for k, v in out.items()},
        platform=platform,
        n_tasks=n_tasks,
    )
