"""Breakdown utilization: capacity-normalized acceptance thresholds.

The *breakdown utilization* of a test on an instance shape is the largest
normalized utilization ``U / total_speed`` at which the test still
accepts when the shape is scaled up uniformly (Lehoczky, Sha & Ding's
classic metric, lifted to the partitioned heterogeneous setting).  Where
acceptance-ratio curves (E2/E3) sample fixed utilization points,
breakdown distributions characterize the whole transition in one number
per instance — the metric experiment E17 reports.

Each instance shape is one campaign trial: the shape is drawn from the
trial's own RNG and *every* tester is scaled on that same shape inside
the trial, so distributions stay directly comparable while the trials fan
out over :func:`repro.runner.run_trials` workers deterministically.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.model import Platform
from ..runner import run_trials
from ..workloads.builder import generate_taskset
from ..workloads.campaigns import Campaign, Trial, campaign_seed
from .acceptance import Tester
from .sensitivity import system_scaling_margin
from .stats import Summary, summarize

__all__ = ["BreakdownStudy", "breakdown_utilizations"]


@dataclass(frozen=True)
class BreakdownStudy:
    """Breakdown distributions, one sample list per tester."""

    samples: Mapping[str, tuple[float, ...]]
    platform: Platform
    n_tasks: int

    def summary(self, tester: str) -> Summary:
        return summarize(list(self.samples[tester]))


def _breakdown_trial(
    trial: Trial,
    *,
    platform: Platform,
    testers: dict[str, Tester],
    n_tasks: int,
    base_fraction: float,
    tol: float,
) -> dict[str, float]:
    """One shared instance shape, scaled to each tester's acceptance edge."""
    rng = trial.rng()
    shape = generate_taskset(
        rng,
        n_tasks,
        base_fraction * platform.total_speed,
        u_max=base_fraction * platform.fastest_speed,
    )
    out: dict[str, float] = {}
    for name, tester in testers.items():
        try:
            factor = system_scaling_margin(
                shape,
                lambda ts, t=tester: t(ts, platform),
                tol=tol,
            )
        except ValueError:
            # the tester rejects even the base shape: breakdown below base
            out[name] = 0.0
            continue
        out[name] = factor * base_fraction
    return out


def breakdown_utilizations(
    seed: int | np.random.Generator,
    platform: Platform,
    testers: Mapping[str, Tester],
    *,
    n_tasks: int = 16,
    samples: int = 50,
    base_fraction: float = 0.3,
    tol: float = 1e-3,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    name: str = "breakdown",
) -> BreakdownStudy:
    """Measure breakdown utilization distributions.

    Each sample draws one instance *shape* at ``base_fraction`` of the
    platform capacity (low enough that every tester accepts it), then
    scales it up per tester until rejection; the breakdown value is the
    normalized utilization at the acceptance edge.  All testers see the
    same shapes, so their distributions are directly comparable.

    ``seed`` may be an integer root seed or a Generator (one root seed is
    drawn from it); trials fan out over ``jobs`` workers with results
    bit-identical to the serial path.
    """
    if not 0 < base_fraction < 1:
        raise ValueError("base_fraction must be in (0, 1)")
    if samples < 1:
        raise ValueError("samples must be positive")
    campaign = Campaign(
        name=name,
        grid={"base_fraction": (float(base_fraction),)},
        replications=samples,
        base_seed=campaign_seed(seed),
    )
    fn = functools.partial(
        _breakdown_trial,
        platform=platform,
        testers=dict(testers),
        n_tasks=n_tasks,
        base_fraction=base_fraction,
        tol=tol,
    )
    run = run_trials(fn, campaign, jobs=jobs, chunk_size=chunk_size, label=name)
    out: dict[str, list[float]] = {nm: [] for nm in testers}
    for record in run.records:
        for nm in testers:
            out[nm].append(record[nm])
    return BreakdownStudy(
        samples={k: tuple(v) for k, v in out.items()},
        platform=platform,
        n_tasks=n_tasks,
    )
