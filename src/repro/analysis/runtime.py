"""Runtime scaling of the first-fit test (experiment E6).

All four theorems state the test "runs in O(nm) time" (plus the
``n log n`` sort).  This harness times the partitioner across an
``n x m`` grid and reports seconds and the normalized ``seconds / (n*m)``
column — flat normalized values confirm the bound empirically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.partition import first_fit_partition
from ..workloads.builder import generate_taskset
from ..workloads.platforms import geometric_platform

__all__ = ["RuntimePoint", "runtime_scaling"]


@dataclass(frozen=True)
class RuntimePoint:
    """Median runtime at one (n, m) grid point."""

    n_tasks: int
    m_machines: int
    seconds: float
    #: seconds / (n*m): should be ~constant if the O(nm) bound is real
    seconds_per_nm: float


def runtime_scaling(
    rng: np.random.Generator,
    *,
    task_counts: Sequence[int] = (64, 128, 256, 512, 1024),
    machine_counts: Sequence[int] = (2, 4, 8, 16),
    test: str = "edf",
    alpha: float = 2.0,
    repeats: int = 5,
    heterogeneity: float = 8.0,
) -> list[RuntimePoint]:
    """Median-of-``repeats`` wall time of the first-fit test per grid point.

    Uses near-capacity instances (total utilization ~ platform speed) so
    tasks probe many machines — the worst case for the inner loop.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    points: list[RuntimePoint] = []
    for m in machine_counts:
        platform = geometric_platform(m, heterogeneity)
        for n in task_counts:
            taskset = generate_taskset(
                rng,
                n,
                0.95 * platform.total_speed,
                u_max=platform.fastest_speed,
            )
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                first_fit_partition(taskset, platform, test, alpha=alpha)
                times.append(time.perf_counter() - start)
            sec = float(np.median(times))
            points.append(
                RuntimePoint(
                    n_tasks=n,
                    m_machines=m,
                    seconds=sec,
                    seconds_per_nm=sec / (n * m),
                )
            )
    return points
