"""Adversarial search for hard instances: empirical lower bounds.

Random workloads need speedups barely above 1 (E4/E5) — the theorem
bounds price *adversarial* structure.  This module searches for that
structure: a restart hill-climb over certified partitioned-feasible
instances (the genome keeps an explicit witness, so feasibility never
needs re-checking) maximizing the minimum augmentation ``alpha*`` at
which the §III first-fit test succeeds.

The hardest instances found are empirical lower bounds on the
approximation factor of the *algorithm* (not just the analysis): any
instance with ``alpha* = x`` proves first-fit cannot be better than
``x``-approximate against a partitioned adversary.  Experiment E14
reports the gap between these lower bounds and the theorems' upper
bounds (2 for EDF, 1+sqrt2 for RMS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.model import Platform, Task, TaskSet
from ..workloads.uunifast import uunifast
from .ratio import min_alpha_first_fit

__all__ = ["HardInstance", "search_hard_instance"]

_TESTS = {"edf": "edf", "rms": "rms-ll"}


@dataclass(frozen=True)
class HardInstance:
    """The hardest instance a search found."""

    taskset: TaskSet
    platform: Platform
    #: witness machine per task (certifies partitioned feasibility)
    witness: tuple[int, ...]
    #: measured minimum first-fit augmentation — an algorithmic lower bound
    alpha: float
    scheduler: str
    #: alpha of the best instance after each restart (search trajectory)
    restart_bests: tuple[float, ...]


def _genome_to_instance(
    genome: list[np.ndarray], platform: Platform
) -> tuple[TaskSet, tuple[int, ...]]:
    """A genome is one utilization vector per machine (sums <= s_j)."""
    tasks: list[Task] = []
    witness: list[int] = []
    for j, utils in enumerate(genome):
        for u in utils:
            tasks.append(Task.from_utilization(float(u), 10.0))
            witness.append(j)
    return TaskSet(tasks), tuple(witness)


def _score(
    genome: list[np.ndarray],
    platform: Platform,
    test: str,
    tol: float,
) -> float:
    taskset, _ = _genome_to_instance(genome, platform)
    return min_alpha_first_fit(taskset, platform, test, tol=tol).alpha


def _random_genome(
    rng: np.random.Generator, platform: Platform, max_tasks: int, load: float
) -> list[np.ndarray]:
    return [
        uunifast(rng, int(rng.integers(1, max_tasks + 1)), load * m.speed)
        for m in platform
    ]


def _mutate(
    rng: np.random.Generator,
    genome: list[np.ndarray],
    platform: Platform,
    max_tasks: int,
    load: float,
) -> list[np.ndarray]:
    out = [g.copy() for g in genome]
    j = int(rng.integers(len(out)))
    move = rng.random()
    cap = load * platform[j].speed
    if move < 0.35:
        # redraw the machine's split with a fresh task count
        out[j] = uunifast(rng, int(rng.integers(1, max_tasks + 1)), cap)
    elif move < 0.7 and len(out[j]) >= 2:
        # shift mass between two tasks on the machine (sum preserved)
        a, b = rng.choice(len(out[j]), size=2, replace=False)
        delta = float(rng.uniform(0, out[j][b]))
        out[j][a] += delta
        out[j][b] -= delta
        out[j] = out[j][out[j] > 1e-6]
    else:
        # merge the machine into fewer, chunkier tasks
        k = max(1, len(out[j]) // 2)
        out[j] = uunifast(rng, k, cap)
    if len(out[j]) == 0:
        out[j] = np.array([cap])
    return out


def search_hard_instance(
    rng: np.random.Generator,
    platform: Platform,
    scheduler: Literal["edf", "rms"] = "edf",
    *,
    iterations: int = 200,
    restarts: int = 4,
    max_tasks_per_machine: int = 5,
    load: float = 1.0,
    tol: float = 1e-3,
) -> HardInstance:
    """Hill-climb with restarts for a high-``alpha*`` feasible instance.

    Parameters
    ----------
    load:
        Witness fill per machine; 1.0 saturates the adversary (hardest).
    iterations:
        Mutation steps per restart.
    """
    if not 0 < load <= 1.0:
        raise ValueError("load must be in (0, 1]")
    if iterations < 1 or restarts < 1:
        raise ValueError("iterations and restarts must be positive")
    test = _TESTS[scheduler]
    best_genome: list[np.ndarray] | None = None
    best_alpha = -np.inf
    restart_bests: list[float] = []
    for _ in range(restarts):
        genome = _random_genome(rng, platform, max_tasks_per_machine, load)
        alpha = _score(genome, platform, test, tol)
        for _ in range(iterations):
            candidate = _mutate(rng, genome, platform, max_tasks_per_machine, load)
            cand_alpha = _score(candidate, platform, test, tol)
            if cand_alpha >= alpha:
                genome, alpha = candidate, cand_alpha
        restart_bests.append(alpha)
        if alpha > best_alpha:
            best_alpha, best_genome = alpha, genome
    assert best_genome is not None
    taskset, witness = _genome_to_instance(best_genome, platform)
    return HardInstance(
        taskset=taskset,
        platform=platform,
        witness=witness,
        alpha=best_alpha,
        scheduler=scheduler,
        restart_bests=tuple(restart_bests),
    )
