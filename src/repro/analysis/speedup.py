"""Empirical speedup-factor studies (experiments E4/E5).

Protocol: generate instances *certified feasible* for an adversary class
(constructive witness for the partitioned adversary; LP verification for
the any-schedule adversary), then measure the minimum speed augmentation
at which the §III first-fit test accepts each.  The theorems bound these
measurements: 2 (EDF/partitioned), 1+sqrt2 (RMS/partitioned), 2.98
(EDF/any), 3.34 (RMS/any).  The gap between the measured distribution
and the bound quantifies the analyses' pessimism.

Each sample is one independently seeded campaign trial dispatched through
:func:`repro.runner.run_trials`, so studies parallelize across instances
with results bit-identical to the serial path.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
)
from ..core.model import Platform
from ..runner import run_trials
from ..workloads.builder import (
    lp_feasible_instance,
    partitioned_feasible_instance,
)
from ..workloads.campaigns import Campaign, Trial, campaign_seed
from .ratio import min_alpha_first_fit
from .stats import Summary, summarize

__all__ = ["SpeedupStudy", "empirical_speedup_study"]

_BOUNDS = {
    ("edf", "partitioned"): ALPHA_EDF_PARTITIONED,
    ("rms", "partitioned"): ALPHA_RMS_PARTITIONED,
    ("edf", "any"): ALPHA_EDF_LP,
    ("rms", "any"): ALPHA_RMS_LP,
}
_TESTS = {"edf": "edf", "rms": "rms-ll"}


@dataclass(frozen=True)
class SpeedupStudy:
    """Measured minimum-alpha sample against the theorem bound."""

    scheduler: str
    adversary: str
    bound: float
    alphas: tuple[float, ...]
    summary: Summary

    @property
    def max_observed(self) -> float:
        return self.summary.maximum

    @property
    def bound_respected(self) -> bool:
        """Every measured alpha is at most the theorem bound (up to the
        search tolerance)."""
        return all(a <= self.bound + 2e-3 for a in self.alphas)

    @property
    def tightness(self) -> float:
        """max observed / bound — 1.0 means the analysis is empirically tight."""
        return self.max_observed / self.bound


def _speedup_trial(
    trial: Trial,
    *,
    platform: Platform,
    adversary: str,
    test: str,
    load: float,
    tasks_per_machine: int,
    n_tasks: int,
    tol: float,
) -> float:
    """One study sample: draw a certified-feasible instance from the
    trial's RNG and search its minimum successful augmentation."""
    rng = trial.rng()
    if adversary == "partitioned":
        inst = partitioned_feasible_instance(
            rng, platform, load=load, tasks_per_machine=tasks_per_machine
        )
        taskset = inst.taskset
    else:
        taskset = lp_feasible_instance(rng, platform, n_tasks, stress=load)
    return float(min_alpha_first_fit(taskset, platform, test, tol=tol).alpha)


def empirical_speedup_study(
    seed: int | np.random.Generator,
    platform: Platform,
    *,
    scheduler: Literal["edf", "rms"] = "edf",
    adversary: Literal["partitioned", "any"] = "partitioned",
    samples: int = 50,
    load: float = 0.98,
    tasks_per_machine: int = 4,
    n_tasks: int | None = None,
    tol: float = 1e-3,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    name: str | None = None,
) -> SpeedupStudy:
    """Run one speedup-factor study.

    Parameters
    ----------
    seed:
        Integer root seed (or a Generator to draw one from); every sample
        gets its own derived trial seed, so ``jobs=1`` and ``jobs=N``
        produce identical alpha samples.
    load:
        Adversary stress: per-machine fill (partitioned) or LP stress
        (any).  Values near 1 are the hard instances the bounds address.
    n_tasks:
        Task count for LP-feasible instances (defaults to
        ``tasks_per_machine * m``).
    jobs:
        Worker processes for the trial fan-out (``None``/``0``: all cores).
    name:
        Campaign label folded into the trial seeds; defaults to
        ``speedup/<scheduler>/<adversary>``.
    """
    key = (scheduler, adversary)
    if key not in _BOUNDS:
        raise ValueError(f"unknown combination {key}")
    if samples < 1:
        raise ValueError("samples must be positive")
    label = name or f"speedup/{scheduler}/{adversary}"
    campaign = Campaign(
        name=label,
        grid={"scheduler": (scheduler,), "adversary": (adversary,)},
        replications=samples,
        base_seed=campaign_seed(seed),
    )
    fn = functools.partial(
        _speedup_trial,
        platform=platform,
        adversary=adversary,
        test=_TESTS[scheduler],
        load=load,
        tasks_per_machine=tasks_per_machine,
        n_tasks=n_tasks or tasks_per_machine * len(platform),
        tol=tol,
    )
    run = run_trials(fn, campaign, jobs=jobs, chunk_size=chunk_size, label=label)
    alphas = tuple(run.records)
    return SpeedupStudy(
        scheduler=scheduler,
        adversary=adversary,
        bound=_BOUNDS[key],
        alphas=alphas,
        summary=summarize(alphas),
    )
