"""Empirical speedup-factor studies (experiments E4/E5).

Protocol: generate instances *certified feasible* for an adversary class
(constructive witness for the partitioned adversary; LP verification for
the any-schedule adversary), then measure the minimum speed augmentation
at which the §III first-fit test accepts each.  The theorems bound these
measurements: 2 (EDF/partitioned), 1+sqrt2 (RMS/partitioned), 2.98
(EDF/any), 3.34 (RMS/any).  The gap between the measured distribution
and the bound quantifies the analyses' pessimism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
)
from ..core.model import Platform
from ..workloads.builder import (
    lp_feasible_instance,
    partitioned_feasible_instance,
)
from .ratio import min_alpha_first_fit
from .stats import Summary, summarize

__all__ = ["SpeedupStudy", "empirical_speedup_study"]

_BOUNDS = {
    ("edf", "partitioned"): ALPHA_EDF_PARTITIONED,
    ("rms", "partitioned"): ALPHA_RMS_PARTITIONED,
    ("edf", "any"): ALPHA_EDF_LP,
    ("rms", "any"): ALPHA_RMS_LP,
}
_TESTS = {"edf": "edf", "rms": "rms-ll"}


@dataclass(frozen=True)
class SpeedupStudy:
    """Measured minimum-alpha sample against the theorem bound."""

    scheduler: str
    adversary: str
    bound: float
    alphas: tuple[float, ...]
    summary: Summary

    @property
    def max_observed(self) -> float:
        return self.summary.maximum

    @property
    def bound_respected(self) -> bool:
        """Every measured alpha is at most the theorem bound (up to the
        search tolerance)."""
        return all(a <= self.bound + 2e-3 for a in self.alphas)

    @property
    def tightness(self) -> float:
        """max observed / bound — 1.0 means the analysis is empirically tight."""
        return self.max_observed / self.bound


def empirical_speedup_study(
    rng: np.random.Generator,
    platform: Platform,
    *,
    scheduler: Literal["edf", "rms"] = "edf",
    adversary: Literal["partitioned", "any"] = "partitioned",
    samples: int = 50,
    load: float = 0.98,
    tasks_per_machine: int = 4,
    n_tasks: int | None = None,
    tol: float = 1e-3,
) -> SpeedupStudy:
    """Run one speedup-factor study.

    Parameters
    ----------
    load:
        Adversary stress: per-machine fill (partitioned) or LP stress
        (any).  Values near 1 are the hard instances the bounds address.
    n_tasks:
        Task count for LP-feasible instances (defaults to
        ``tasks_per_machine * m``).
    """
    key = (scheduler, adversary)
    if key not in _BOUNDS:
        raise ValueError(f"unknown combination {key}")
    test = _TESTS[scheduler]
    alphas: list[float] = []
    for _ in range(samples):
        if adversary == "partitioned":
            inst = partitioned_feasible_instance(
                rng, platform, load=load, tasks_per_machine=tasks_per_machine
            )
            taskset = inst.taskset
        else:
            taskset = lp_feasible_instance(
                rng,
                platform,
                n_tasks or tasks_per_machine * len(platform),
                stress=load,
            )
        result = min_alpha_first_fit(taskset, platform, test, tol=tol)
        alphas.append(result.alpha)
    return SpeedupStudy(
        scheduler=scheduler,
        adversary=adversary,
        bound=_BOUNDS[key],
        alphas=tuple(alphas),
        summary=summarize(alphas),
    )
