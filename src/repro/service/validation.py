"""Request-payload validation with field-level error messages.

A malformed payload must never surface as a traceback: every parse
function here either returns fully-typed domain objects or raises
:class:`ValidationError` carrying a list of ``(field, message)`` pairs
using JSON-path-ish field names (``taskset.tasks[3].wcet``), which the
HTTP layer renders as a structured 400 response.

Validation is *exhaustive*, not fail-fast: one request reports every
bad field at once, so a client fixes its payload in one round trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..core.bounds import ADMISSION_TESTS
from ..core.model import Machine, Platform, Task, TaskSet, close

__all__ = [
    "FieldError",
    "ValidationError",
    "TestQuery",
    "PartitionQuery",
    "parse_test_request",
    "parse_partition_request",
    "parse_batch_request",
    "MAX_TASKS",
    "MAX_MACHINES",
    "MAX_BATCH",
]

#: Request-size ceilings: a serving endpoint must bound the work one
#: payload can demand.  Generous relative to the paper's experiments
#: (n<=40, m<=8) while keeping worst-case request cost small.
MAX_TASKS = 10_000
MAX_MACHINES = 1_000
MAX_BATCH = 1_000

_SCHEDULERS = ("edf", "rms")
_ADVERSARIES = ("partitioned", "any")


@dataclass(frozen=True)
class FieldError:
    """One rejected field: where and why."""

    field: str
    message: str

    def as_dict(self) -> dict[str, str]:
        return {"field": self.field, "message": self.message}


class ValidationError(Exception):
    """A payload failed validation; carries every field-level error."""

    def __init__(self, errors: list[FieldError], message: str = "invalid request"):
        self.errors = errors
        self.message = message
        detail = "; ".join(f"{e.field}: {e.message}" for e in errors)
        super().__init__(f"{message}: {detail}" if detail else message)

    def as_dict(self) -> dict[str, Any]:
        """The service's structured error body."""
        return {
            "error": {
                "message": self.message,
                "fields": [e.as_dict() for e in self.errors],
            }
        }


@dataclass(frozen=True)
class TestQuery:
    """A validated ``/v1/test`` request (also one ``/v1/batch`` item)."""

    taskset: TaskSet
    platform: Platform
    scheduler: str = "edf"
    adversary: str = "partitioned"
    alpha: float | None = None


@dataclass(frozen=True)
class PartitionQuery:
    """A validated ``/v1/partition`` request."""

    taskset: TaskSet
    platform: Platform
    test: str = "edf"
    alpha: float = 1.0


def _positive_number(
    value: Any, field: str, errors: list[FieldError]
) -> float | None:
    # bool is an int subclass; reject it explicitly — `"wcet": true` is
    # a client bug, not a wcet of 1.0.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(FieldError(field, f"must be a number, got {value!r}"))
        return None
    x = float(value)
    if not (x > 0 and math.isfinite(x)):
        errors.append(FieldError(field, f"must be positive and finite, got {x!r}"))
        return None
    return x


def _parse_taskset(
    data: Any, field: str, errors: list[FieldError], *, require_implicit: bool
) -> TaskSet | None:
    if not isinstance(data, dict):
        errors.append(FieldError(field, "must be an object with a 'tasks' list"))
        return None
    tasks_data = data.get("tasks")
    if not isinstance(tasks_data, list) or not tasks_data:
        errors.append(FieldError(f"{field}.tasks", "must be a non-empty list"))
        return None
    if len(tasks_data) > MAX_TASKS:
        errors.append(
            FieldError(f"{field}.tasks", f"at most {MAX_TASKS} tasks per instance")
        )
        return None
    tasks: list[Task] = []
    ok = True
    for i, td in enumerate(tasks_data):
        here = f"{field}.tasks[{i}]"
        if not isinstance(td, dict):
            errors.append(FieldError(here, "must be an object"))
            ok = False
            continue
        wcet = _positive_number(td.get("wcet"), f"{here}.wcet", errors)
        period = _positive_number(td.get("period"), f"{here}.period", errors)
        deadline: float | None = None
        if td.get("deadline") is not None:
            deadline = _positive_number(td["deadline"], f"{here}.deadline", errors)
            if deadline is None:
                ok = False
        if wcet is None or period is None:
            ok = False
            continue
        if require_implicit and deadline is not None:
            # tolerant compare: a deadline that equals the period only
            # after a float round-trip (e.g. serialized at lower
            # precision) is still an implicit-deadline submission
            if not close(deadline, period):
                errors.append(
                    FieldError(
                        f"{here}.deadline",
                        "the theorem tests require implicit deadlines "
                        "(omit 'deadline' or set it equal to 'period')",
                    )
                )
                ok = False
                continue
            # snap to implicit so Task.is_implicit (an exact structural
            # predicate) holds downstream — otherwise a tolerantly-equal
            # deadline would pass validation here and then blow up in
            # the theorem tests' own implicit check mid-evaluation
            deadline = None
        tasks.append(Task(wcet=wcet, period=period, deadline=deadline,
                          name=str(td.get("name", ""))))
    return TaskSet(tasks) if ok else None


def _parse_platform(
    data: Any, field: str, errors: list[FieldError]
) -> Platform | None:
    if not isinstance(data, dict):
        errors.append(FieldError(field, "must be an object with a 'machines' list"))
        return None
    machines_data = data.get("machines")
    if not isinstance(machines_data, list) or not machines_data:
        errors.append(FieldError(f"{field}.machines", "must be a non-empty list"))
        return None
    if len(machines_data) > MAX_MACHINES:
        errors.append(
            FieldError(
                f"{field}.machines", f"at most {MAX_MACHINES} machines per instance"
            )
        )
        return None
    machines: list[Machine] = []
    ok = True
    for j, md in enumerate(machines_data):
        here = f"{field}.machines[{j}]"
        if not isinstance(md, dict):
            errors.append(FieldError(here, "must be an object"))
            ok = False
            continue
        speed = _positive_number(md.get("speed"), f"{here}.speed", errors)
        if speed is None:
            ok = False
            continue
        machines.append(Machine(speed=speed, name=str(md.get("name", ""))))
    return Platform(machines) if ok else None


def _require_object(payload: Any, what: str) -> dict[str, Any]:
    if not isinstance(payload, dict):
        raise ValidationError(
            [FieldError("", f"request body must be a JSON object ({what})")]
        )
    return payload


def _parse_test_fields(
    payload: dict[str, Any], errors: list[FieldError], prefix: str = ""
) -> TestQuery | None:
    taskset = _parse_taskset(
        payload.get("taskset"), f"{prefix}taskset", errors, require_implicit=True
    )
    platform = _parse_platform(payload.get("platform"), f"{prefix}platform", errors)
    scheduler = payload.get("scheduler", "edf")
    if scheduler not in _SCHEDULERS:
        errors.append(
            FieldError(f"{prefix}scheduler", f"must be one of {list(_SCHEDULERS)}")
        )
    adversary = payload.get("adversary", "partitioned")
    if adversary not in _ADVERSARIES:
        errors.append(
            FieldError(f"{prefix}adversary", f"must be one of {list(_ADVERSARIES)}")
        )
    alpha: float | None = None
    if payload.get("alpha") is not None:
        alpha = _positive_number(payload["alpha"], f"{prefix}alpha", errors)
        if alpha is None:
            return None
    if taskset is None or platform is None or errors:
        return None
    return TestQuery(
        taskset=taskset,
        platform=platform,
        scheduler=scheduler,
        adversary=adversary,
        alpha=alpha,
    )


def parse_test_request(payload: Any) -> TestQuery:
    """Validate a ``/v1/test`` body; raise :class:`ValidationError` listing
    every bad field."""
    payload = _require_object(payload, "a feasibility query")
    errors: list[FieldError] = []
    query = _parse_test_fields(payload, errors)
    if query is None:
        raise ValidationError(errors)
    return query


def parse_partition_request(payload: Any) -> PartitionQuery:
    """Validate a ``/v1/partition`` body."""
    payload = _require_object(payload, "a partition query")
    errors: list[FieldError] = []
    # Constrained deadlines are fine here: the dbf admission tests accept
    # them, so only the generic task checks apply.
    taskset = _parse_taskset(
        payload.get("taskset"), "taskset", errors, require_implicit=False
    )
    platform = _parse_platform(payload.get("platform"), "platform", errors)
    test = payload.get("test", "edf")
    if test not in ADMISSION_TESTS:
        errors.append(
            FieldError("test", f"must be one of {sorted(ADMISSION_TESTS)}")
        )
    alpha = 1.0
    if payload.get("alpha") is not None:
        parsed = _positive_number(payload["alpha"], "alpha", errors)
        if parsed is not None:
            alpha = parsed
    if taskset is None or platform is None or errors:
        raise ValidationError(errors)
    return PartitionQuery(taskset=taskset, platform=platform, test=test, alpha=alpha)


def parse_batch_request(payload: Any) -> list[TestQuery]:
    """Validate a ``/v1/batch`` body: ``{"instances": [<test query>...]}``."""
    payload = _require_object(payload, "a batch of feasibility queries")
    instances = payload.get("instances")
    if not isinstance(instances, list) or not instances:
        raise ValidationError(
            [FieldError("instances", "must be a non-empty list of test queries")]
        )
    if len(instances) > MAX_BATCH:
        raise ValidationError(
            [FieldError("instances", f"at most {MAX_BATCH} instances per batch")]
        )
    errors: list[FieldError] = []
    queries: list[TestQuery] = []
    for k, item in enumerate(instances):
        prefix = f"instances[{k}]."
        if not isinstance(item, dict):
            errors.append(FieldError(f"instances[{k}]", "must be an object"))
            continue
        q = _parse_test_fields(item, errors, prefix=prefix)
        if q is not None:
            queries.append(q)
    if errors:
        raise ValidationError(errors)
    return queries
