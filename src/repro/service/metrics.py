"""Request-level observability: counters and latency histograms.

One :class:`MetricsRegistry` per service instance accumulates, per
endpoint, a request counter split by HTTP status and a fixed-bucket
latency histogram.  Snapshots render two ways:

* :meth:`MetricsRegistry.as_dict` — plain data for the JSON ``/metrics``
  response;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (counters plus cumulative ``_bucket`` series), so a
  scraper can point at ``/metrics?format=prometheus`` unchanged.

Everything is guarded by one lock; observation is two dict updates and
a bucket scan, far below the cost of any feasibility test.
"""

from __future__ import annotations

import threading
from typing import Any

from .cache import CacheStats

__all__ = [
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "MetricsRegistry",
    "render_shard_prometheus",
]

#: Histogram bucket upper bounds, in seconds.  Feasibility tests on
#: cached instances answer in microseconds; cold LP/batch queries can
#: take tens of milliseconds — the range covers both with headroom.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (not thread-safe on its own —
    callers hold the registry lock)."""

    __slots__ = ("buckets", "counts", "overflow", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly increasing")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.overflow = 0  # observations above the last bound (+Inf bucket)
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        for k, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[k] += 1
                return
        self.overflow += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum_seconds": self.total,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "buckets": {
                _le_label(bound): cum for bound, cum in self.cumulative()
            },
        }


def _le_label(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


class MetricsRegistry:
    """Per-endpoint request counters and latency histograms."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self._buckets = buckets
        self._lock = threading.Lock()
        #: (endpoint, status) -> count
        self._requests: dict[tuple[str, int], int] = {}
        #: endpoint -> histogram
        self._latency: dict[str, LatencyHistogram] = {}
        #: evaluation backend -> feasibility tests computed (cache
        #: misses only; hits never re-run a backend)
        self._backend_tests: dict[str, int] = {}

    def observe_backend(self, backend: str, count: int = 1) -> None:
        """Record ``count`` feasibility tests evaluated by ``backend``."""
        with self._lock:
            self._backend_tests[backend] = (
                self._backend_tests.get(backend, 0) + count
            )

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request."""
        with self._lock:
            key = (endpoint, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            hist = self._latency.get(endpoint)
            if hist is None:
                hist = self._latency[endpoint] = LatencyHistogram(self._buckets)
            hist.observe(seconds)

    def request_count(self, endpoint: str | None = None) -> int:
        """Total requests, optionally restricted to one endpoint."""
        with self._lock:
            return sum(
                c
                for (ep, _), c in self._requests.items()
                if endpoint is None or ep == endpoint
            )

    def as_dict(self, cache: CacheStats | None = None) -> dict[str, Any]:
        """JSON-ready snapshot of every metric."""
        with self._lock:
            requests: dict[str, dict[str, int]] = {}
            for (ep, status), count in sorted(self._requests.items()):
                requests.setdefault(ep, {})[str(status)] = count
            latency = {
                ep: hist.as_dict() for ep, hist in sorted(self._latency.items())
            }
            backend_tests = dict(sorted(self._backend_tests.items()))
        out: dict[str, Any] = {
            "requests": requests,
            "latency": latency,
            "backend_tests": backend_tests,
        }
        if cache is not None:
            out["cache"] = cache.as_dict()
        return out

    def render_prometheus(self, cache: CacheStats | None = None) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            requests = sorted(self._requests.items())
            latency = [
                (ep, hist.cumulative(), hist.total, hist.count)
                for ep, hist in sorted(self._latency.items())
            ]
            backend_tests = sorted(self._backend_tests.items())
        lines.append("# HELP repro_requests_total Requests served, by endpoint and status.")
        lines.append("# TYPE repro_requests_total counter")
        for (ep, status), count in requests:
            lines.append(
                f'repro_requests_total{{endpoint="{ep}",status="{status}"}} {count}'
            )
        lines.append("# HELP repro_request_latency_seconds Request latency, by endpoint.")
        lines.append("# TYPE repro_request_latency_seconds histogram")
        for ep, cumulative, total, count in latency:
            for bound, cum in cumulative:
                lines.append(
                    f'repro_request_latency_seconds_bucket{{endpoint="{ep}",'
                    f'le="{_le_label(bound)}"}} {cum}'
                )
            lines.append(
                f'repro_request_latency_seconds_sum{{endpoint="{ep}"}} {total!r}'
            )
            lines.append(
                f'repro_request_latency_seconds_count{{endpoint="{ep}"}} {count}'
            )
        lines.append(
            "# HELP repro_backend_tests_total Feasibility tests evaluated,"
            " by backend."
        )
        lines.append("# TYPE repro_backend_tests_total counter")
        for backend, count in backend_tests:
            lines.append(
                f'repro_backend_tests_total{{backend="{backend}"}} {count}'
            )
        if cache is not None:
            for name, value, help_text in (
                ("repro_cache_hits_total", cache.hits, "Verdict cache hits."),
                ("repro_cache_misses_total", cache.misses, "Verdict cache misses."),
                ("repro_cache_evictions_total", cache.evictions, "Verdict cache evictions."),
            ):
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {value}")
            for name, value, help_text in (
                ("repro_cache_size", float(cache.size), "Cached verdicts."),
                ("repro_cache_capacity", float(cache.capacity), "Cache capacity."),
                ("repro_cache_hit_ratio", cache.hit_ratio, "Hits / lookups."),
            ):
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {value!r}")
        return "\n".join(lines) + "\n"


def render_shard_prometheus(shards: list[dict[str, Any]]) -> str:
    """Per-shard Prometheus series for the sharded front end.

    ``shards`` holds one snapshot dict per shard —
    ``{"shard", "state", "restarts", "queue_depth", "stats"}`` — where
    ``stats`` is the worker's own counters (``requests``, ``items``,
    ``cache``, ``backend_tests``) or ``None`` when the worker could not
    be polled (dead or restarting).  Liveness, restarts, and queue
    depth come from the front end's view, so they are reported even for
    a shard that cannot answer.
    """
    lines: list[str] = []

    def series(name: str, kind: str, help_text: str, rows: list[str]) -> None:
        if not rows:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(rows)

    series(
        "repro_shard_up",
        "gauge",
        "1 when the shard worker is alive and serving, else 0.",
        [
            f'repro_shard_up{{shard="{s["shard"]}"}} '
            f'{1 if s.get("state") == "ok" else 0}'
            for s in shards
        ],
    )
    series(
        "repro_shard_restarts_total",
        "counter",
        "Worker respawns after a crash, by shard.",
        [
            f'repro_shard_restarts_total{{shard="{s["shard"]}"}} '
            f'{s.get("restarts", 0)}'
            for s in shards
        ],
    )
    series(
        "repro_shard_queue_depth",
        "gauge",
        "Requests in flight to the shard worker (front-end view).",
        [
            f'repro_shard_queue_depth{{shard="{s["shard"]}"}} '
            f'{s.get("queue_depth", 0)}'
            for s in shards
        ],
    )
    requests_rows: list[str] = []
    items_rows: list[str] = []
    hit_rows: list[str] = []
    miss_rows: list[str] = []
    evict_rows: list[str] = []
    size_rows: list[str] = []
    backend_rows: list[str] = []
    for s in shards:
        stats = s.get("stats")
        if not stats:
            continue
        shard = s["shard"]
        for op, count in stats.get("requests", {}).items():
            requests_rows.append(
                f'repro_shard_requests_total{{shard="{shard}",op="{op}"}} {count}'
            )
        items_rows.append(
            f'repro_shard_items_total{{shard="{shard}"}} {stats.get("items", 0)}'
        )
        cache = stats.get("cache", {})
        hit_rows.append(
            f'repro_shard_cache_hits_total{{shard="{shard}"}} '
            f'{cache.get("hits", 0)}'
        )
        miss_rows.append(
            f'repro_shard_cache_misses_total{{shard="{shard}"}} '
            f'{cache.get("misses", 0)}'
        )
        evict_rows.append(
            f'repro_shard_cache_evictions_total{{shard="{shard}"}} '
            f'{cache.get("evictions", 0)}'
        )
        size_rows.append(
            f'repro_shard_cache_size{{shard="{shard}"}} {cache.get("size", 0)}'
        )
        for backend, count in stats.get("backend_tests", {}).items():
            backend_rows.append(
                f'repro_shard_backend_tests_total{{shard="{shard}",'
                f'backend="{backend}"}} {count}'
            )
    series(
        "repro_shard_requests_total",
        "counter",
        "Frames answered by the shard worker, by op.",
        requests_rows,
    )
    series(
        "repro_shard_items_total",
        "counter",
        "Individual verdict items processed by the shard worker.",
        items_rows,
    )
    series(
        "repro_shard_cache_hits_total",
        "counter",
        "Shard-private verdict cache hits.",
        hit_rows,
    )
    series(
        "repro_shard_cache_misses_total",
        "counter",
        "Shard-private verdict cache misses.",
        miss_rows,
    )
    series(
        "repro_shard_cache_evictions_total",
        "counter",
        "Shard-private verdict cache evictions.",
        evict_rows,
    )
    series(
        "repro_shard_cache_size",
        "gauge",
        "Entries in the shard-private verdict cache.",
        size_rows,
    )
    series(
        "repro_shard_backend_tests_total",
        "counter",
        "Feasibility tests evaluated by the shard worker, by backend.",
        backend_rows,
    )
    return "\n".join(lines) + "\n" if lines else ""
