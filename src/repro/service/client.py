"""Stdlib HTTP client for the feasibility-query service.

A thin, dependency-free wrapper over :mod:`urllib.request` that speaks
the service's JSON schemas: domain objects (:class:`TaskSet`,
:class:`Platform`) go in, decoded response dicts — or, via
:meth:`ServiceClient.test_report`, a rebuilt
:class:`~repro.core.feasibility.FeasibilityReport` — come out.  Error
responses raise :class:`ServiceError` carrying the structured body, so
callers never parse failure text.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterable, Sequence

from ..core.feasibility import FeasibilityReport
from ..core.model import Platform, TaskSet
from ..io_.serialize import (
    platform_to_dict,
    report_from_dict,
    taskset_to_dict,
)

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A non-2xx response; ``payload`` is the decoded error body."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        message = ""
        if isinstance(payload, dict):
            message = payload.get("error", {}).get("message", "")
        super().__init__(f"HTTP {status}: {message or payload!r}")

    @property
    def fields(self) -> list[dict[str, str]]:
        """Field-level errors from a 400 response (empty otherwise)."""
        if isinstance(self.payload, dict):
            return self.payload.get("error", {}).get("fields", [])
        return []


def _instance_payload(
    taskset: TaskSet,
    platform: Platform,
    scheduler: str,
    adversary: str,
    alpha: float | None,
) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "taskset": taskset_to_dict(taskset),
        "platform": platform_to_dict(platform),
        "scheduler": scheduler,
        "adversary": adversary,
    }
    if alpha is not None:
        payload["alpha"] = alpha
    return payload


class ServiceClient:
    """Client bound to one service base URL (e.g. ``http://127.0.0.1:8080``)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return self._decode(resp)
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._decode(exc)) from None

    @staticmethod
    def _decode(resp: Any) -> Any:
        body = resp.read()
        content_type = resp.headers.get("Content-Type", "")
        if "json" in content_type:
            return json.loads(body)
        return body.decode("utf-8", errors="replace")

    # -- endpoints ----------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "json") -> Any:
        """Metrics snapshot: a dict for ``json``, text for ``prometheus``."""
        suffix = "" if format == "json" else f"?format={format}"
        return self._request("GET", "/metrics" + suffix)

    def test(
        self,
        taskset: TaskSet,
        platform: Platform,
        scheduler: str = "edf",
        adversary: str = "partitioned",
        *,
        alpha: float | None = None,
    ) -> dict[str, Any]:
        """One feasibility verdict; returns the raw response dict
        (``digest``, ``cached``, ``report``)."""
        return self._request(
            "POST",
            "/v1/test",
            _instance_payload(taskset, platform, scheduler, adversary, alpha),
        )

    def test_report(
        self,
        taskset: TaskSet,
        platform: Platform,
        scheduler: str = "edf",
        adversary: str = "partitioned",
        *,
        alpha: float | None = None,
    ) -> FeasibilityReport:
        """Like :meth:`test`, but rebuilt into a
        :class:`FeasibilityReport` — interchangeable with a direct
        :func:`~repro.core.feasibility.feasibility_test` call."""
        response = self.test(
            taskset, platform, scheduler, adversary, alpha=alpha
        )
        return report_from_dict(response["report"])

    def partition(
        self,
        taskset: TaskSet,
        platform: Platform,
        test: str = "edf",
        *,
        alpha: float = 1.0,
    ) -> dict[str, Any]:
        """A first-fit assignment; returns ``digest``/``cached``/``result``."""
        return self._request(
            "POST",
            "/v1/partition",
            {
                "taskset": taskset_to_dict(taskset),
                "platform": platform_to_dict(platform),
                "test": test,
                "alpha": alpha,
            },
        )

    def batch(
        self,
        instances: Iterable[
            tuple[TaskSet, Platform] | Sequence[Any] | dict[str, Any]
        ],
        scheduler: str = "edf",
        adversary: str = "partitioned",
        *,
        alpha: float | None = None,
    ) -> dict[str, Any]:
        """Many verdicts at once.

        ``instances`` items are ``(taskset, platform)`` pairs (sharing
        the call's scheduler/adversary/alpha) or ready-made query dicts.
        """
        payload_instances: list[dict[str, Any]] = []
        for item in instances:
            if isinstance(item, dict):
                payload_instances.append(item)
            else:
                taskset, platform = item
                payload_instances.append(
                    _instance_payload(
                        taskset, platform, scheduler, adversary, alpha
                    )
                )
        return self._request(
            "POST", "/v1/batch", {"instances": payload_instances}
        )
