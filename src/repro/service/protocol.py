"""Frame protocol between the sharded front end and its workers.

The front end (:mod:`repro.service.frontend`) and each shard worker
(:mod:`repro.service.shard`) share one connected ``socketpair``.  Every
message is a *frame*: an 8-byte big-endian length prefix followed by a
pickled payload.  Pickle is safe here because both ends are the same
codebase in the same trust domain — the socketpair is inherited at
``exec`` time and never reachable from the network; the HTTP surface
only ever sees JSON.

Wire shapes
-----------
Requests (front end → worker) are ``(op, seq, payload)`` tuples::

    ("test",      seq, TestUnit)          -> (seq, "ok", (canon_dict, cached))
    ("partition", seq, PartitionUnit)     -> (seq, "ok", (canon_dict, cached))
    ("batch",     seq, [TestUnit, ...])   -> (seq, "ok", [(canon_dict, cached), ...])
    ("stats",     seq, None)              -> (seq, "ok", {...worker stats...})
    ("ping",      seq, None)              -> (seq, "ok", None)
    ("shutdown",  seq, None)              -> (seq, "ok", None), then the worker exits

Responses are ``(seq, status, result)``; ``status`` is ``"ok"`` or
``"error"`` (``result`` is then the error message string).  A worker
answers frames strictly in arrival order, so ``seq`` is technically
redundant — it is kept so the front end can match responses to futures
without trusting FIFO-ness, which makes replay-after-respawn simple.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any

from ..core.model import Platform, TaskSet

__all__ = [
    "MAX_FRAME_BYTES",
    "TestUnit",
    "PartitionUnit",
    "frame_bytes",
    "read_frame_async",
    "recv_frame",
    "send_frame",
]

_LEN = struct.Struct(">Q")

#: Backstop against a corrupted length prefix; far above any legitimate
#: frame (request bodies are already capped at the HTTP layer).
MAX_FRAME_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class TestUnit:
    """One ``/v1/test`` (or ``/v1/batch`` item) routed to its shard.

    The front end has already validated the payload, computed the
    canonical ``digest`` and task ``order``; the worker subsets the
    taskset into canonical order only on a cache miss — the same lazy
    discipline as the single-process service.
    """

    digest: str
    taskset: TaskSet
    order: tuple[int, ...]
    platform: Platform
    scheduler: str
    adversary: str
    alpha: float | None


@dataclass(frozen=True)
class PartitionUnit:
    """One ``/v1/partition`` request routed to its shard."""

    digest: str
    taskset: TaskSet
    order: tuple[int, ...]
    platform: Platform
    test: str
    alpha: float


def frame_bytes(message: Any) -> bytes:
    """One ready-to-send frame: length prefix plus pickled payload."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _LEN.pack(len(blob)) + blob


async def read_frame_async(reader: Any) -> Any:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises ``asyncio.IncompleteReadError`` at EOF (clean or mid-frame)
    — the front end treats either as a dead worker.
    """
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    blob = await reader.readexactly(length)
    return pickle.loads(blob)


def send_frame(sock: socket.socket, message: Any) -> None:
    """Pickle ``message`` and send it as one length-prefixed frame."""
    sock.sendall(frame_bytes(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on clean EOF at a frame
    boundary; raise :class:`ConnectionError` on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any | None:
    """Read one frame, or ``None`` on clean EOF (peer closed)."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    blob = _recv_exact(sock, length)
    if blob is None:
        raise ConnectionError("peer closed between header and body")
    return pickle.loads(blob)
