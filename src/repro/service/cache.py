"""Bounded, thread-safe LRU cache for canonical-instance verdicts.

The service keys verdicts by :func:`repro.io_.serialize.instance_digest`,
so any permutation/renaming of an already-answered instance is a cache
hit.  Values stored here are treated as immutable by convention — the
service deep-copies on the way out (see ``app._remap_*``), never mutates
a cached payload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters (monotonic except ``size``)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_ratio": self.hit_ratio,
        }


class LRUCache:
    """Least-recently-*used* eviction under a single lock.

    All operations are O(1); ``get`` refreshes recency, ``put`` evicts
    the stalest entry once ``capacity`` is exceeded.  Counter updates
    happen under the same lock as the data, so stats are consistent.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for ``key`` (marking it most-recent), else ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry if over capacity."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        """Presence probe; does not touch recency or hit/miss counters."""
        with self._lock:
            return key in self._data

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self._capacity,
            )
