"""Threaded HTTP front-end for :class:`~repro.service.app.FeasibilityService`.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` subclass whose
handler decodes JSON, dispatches to the service object, and encodes
responses.  Design points:

* **Structured errors.**  Bad payloads return ``400`` with
  ``{"error": {"message", "fields": [{"field", "message"}, ...]}}``;
  unknown paths ``404``; wrong methods ``405``; handler bugs ``500``
  with a generic body (the traceback goes to the server log, never to
  the client).
* **Observability.**  Every request — including errors — is timed and
  counted in the service's :class:`~repro.service.metrics.MetricsRegistry`.
* **Graceful drain.**  ``daemon_threads`` is off and ``block_on_close``
  on, so ``shutdown()`` stops accepting while ``server_close()`` joins
  every in-flight handler thread; :func:`serve` wires SIGTERM/SIGINT to
  exactly that sequence.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from .app import FeasibilityService
from .validation import ValidationError

__all__ = ["ReproServer", "make_server", "serve"]

#: Largest accepted request body, in bytes.  A MAX_BATCH batch of
#: MAX_TASKS-task instances would exceed this — by design; the limit is
#: the serving-path backstop against memory abuse.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _RequestError(Exception):
    """Internal: abort the current request with this status and body."""

    def __init__(self, status: int, body: dict[str, Any]):
        super().__init__(body.get("error", {}).get("message", ""))
        self.status = status
        self.body = body


def _error_body(message: str, fields: list[dict[str, str]] | None = None) -> dict:
    return {"error": {"message": message, "fields": fields or []}}


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes the fixed endpoint table; everything else is a 404/405."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"  # keep-alive; we always send Content-Length

    POST_ENDPOINTS = ("/v1/test", "/v1/partition", "/v1/batch")
    GET_ENDPOINTS = ("/healthz", "/metrics")

    @property
    def service(self) -> FeasibilityService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", False):
            return
        sys.stderr.write(
            f"{self.address_string()} - {format % args}\n"
        )

    # -- plumbing -----------------------------------------------------------
    def _send(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: dict[str, Any]) -> None:
        self._send(
            status,
            json.dumps(body, sort_keys=True).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            self.close_connection = True  # body left unread
            raise _RequestError(
                411, _error_body("Content-Length header is required")
            ) from None
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to read it
            raise _RequestError(
                413,
                _error_body(f"request body exceeds {MAX_BODY_BYTES} bytes"),
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(
                400, _error_body(f"request body is not valid JSON: {exc}")
            ) from None

    def _dispatch(self, endpoint: str, handler) -> None:
        """Run ``handler`` with uniform error mapping and metrics."""
        status = 500
        t0 = time.perf_counter()
        try:
            self.service.before_handle(endpoint)
            try:
                status, body, content_type = handler()
            except _RequestError as exc:
                status = exc.status
                body, content_type = exc.body, None
            except ValidationError as exc:
                status = 400
                body, content_type = exc.as_dict(), None
            except Exception:
                # Never leak a traceback to the client.
                self.log_error(
                    "unhandled error on %s:\n%s", endpoint, traceback.format_exc()
                )
                status = 500
                body, content_type = _error_body("internal server error"), None
            if content_type is None:
                self._send_json(status, body)
            else:
                self._send(status, body, content_type)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            status = 499
        finally:
            self.service.metrics.observe(
                endpoint, status, time.perf_counter() - t0
            )

    # -- methods ------------------------------------------------------------
    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path not in self.POST_ENDPOINTS:
            if path in self.GET_ENDPOINTS:
                self._dispatch(path, self._method_not_allowed("GET"))
            else:
                self._dispatch(path, self._not_found)
            return
        routes = {
            "/v1/test": self.service.handle_test,
            "/v1/partition": self.service.handle_partition,
            "/v1/batch": self.service.handle_batch,
        }

        def run():
            payload = self._read_json()
            return 200, routes[path](payload), None

        self._dispatch(path, run)

    def do_GET(self) -> None:
        split = urlsplit(self.path)
        path = split.path
        if path not in self.GET_ENDPOINTS:
            if path in self.POST_ENDPOINTS:
                self._dispatch(path, self._method_not_allowed("POST"))
            else:
                self._dispatch(path, self._not_found)
            return

        def run():
            if path == "/healthz":
                return 200, self.service.handle_healthz(), None
            fmt = parse_qs(split.query).get("format", ["json"])[0]
            if fmt == "prometheus":
                return (
                    200,
                    self.service.metrics_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if fmt != "json":
                raise _RequestError(
                    400, _error_body("format must be 'json' or 'prometheus'")
                )
            return 200, self.service.metrics_json(), None

        self._dispatch(path, run)

    def _not_found(self):
        self.close_connection = True  # any request body is left unread
        known = list(self.GET_ENDPOINTS + self.POST_ENDPOINTS)
        raise _RequestError(
            404, _error_body(f"unknown endpoint; known endpoints: {known}")
        )

    def _method_not_allowed(self, allowed: str):
        def run():
            self.close_connection = True  # any request body is left unread
            raise _RequestError(
                405, _error_body(f"method not allowed; use {allowed}")
            )

        return run


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`FeasibilityService`.

    ``daemon_threads = False`` + ``block_on_close = True`` (the mixin
    default) make ``server_close()`` wait for in-flight requests — the
    graceful-drain half of SIGTERM handling.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: FeasibilityService,
        *,
        quiet: bool = True,
    ):
        self.service = service
        self.quiet = quiet
        super().__init__(address, ReproRequestHandler)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    jobs: int = 1,
    cache_size: int = 1024,
    backend: str | None = None,
    quiet: bool = True,
) -> ReproServer:
    """Bind a server (``port=0`` picks an ephemeral port) without serving."""
    service = FeasibilityService(
        jobs=jobs, cache_size=cache_size, backend=backend
    )
    return ReproServer((host, port), service, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    jobs: int = 1,
    cache_size: int = 1024,
    backend: str | None = None,
    quiet: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and exit 0.

    The accept loop runs on a background thread; the calling (main)
    thread owns signal handling, so ``server.shutdown()`` is never
    invoked from inside ``serve_forever`` (a stdlib deadlock).
    """
    server = make_server(
        host, port, jobs=jobs, cache_size=cache_size, backend=backend,
        quiet=quiet,
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro.service listening on http://{bound_host}:{bound_port} "
        f"(jobs={jobs}, cache_size={cache_size})",
        file=sys.stderr,
        flush=True,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-accept", daemon=False
    )
    thread.start()
    try:
        stop.wait()
    finally:
        print(
            "repro.service shutting down: draining in-flight requests...",
            file=sys.stderr,
            flush=True,
        )
        server.shutdown()
        thread.join()
        server.server_close()  # joins handler threads (block_on_close)
        for sig, old in previous.items():
            signal.signal(sig, old)
        print("repro.service stopped", file=sys.stderr, flush=True)
    return 0
