"""Shard worker: a private-cache canonical-verdict engine in its own process.

Two layers live here:

* :class:`ShardCore` — the transport-free unit of serving state: one
  bounded LRU of canonical verdicts plus the evaluation paths (scalar /
  kernel-batch) that fill it.  Both the single-process
  :class:`~repro.service.app.FeasibilityService` and every shard worker
  run *this exact code*, which is what makes sharded responses
  bit-identical to the single-process server by construction rather
  than by testing luck.
* :func:`worker_main` — the shard worker process entry point
  (``python -m repro.service.shard --fd N``): a blocking frame loop
  over the socketpair inherited from the front end.  One worker owns
  one :class:`ShardCore`; because the front end routes every digest to
  a fixed shard, no lock is contended across processes and the LRU in
  each worker needs no coordination at all.

Canonical-query digest helpers (:func:`test_query_digest`,
:func:`partition_query_digest`) also live here so the front end and the
single-process service can never disagree on a cache key.
"""

# repro: noqa-file[REP006, REP010] — a shard worker is serial by
# construction (one frame loop, one thread, one process); its counters
# and core are never touched concurrently, which is the whole point of
# sharding, so no caller chain needs to hold a lock either.

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..core.feasibility import feasibility_test, theorem_alpha
from ..core.partition import first_fit_partition
from ..io_.serialize import (
    instance_digest,
    partition_result_to_dict,
    report_to_dict,
)
from ..kernels import resolve_backend, test_feasibility_batch
from ..runner import run_trials
from .cache import LRUCache
from .protocol import PartitionUnit, TestUnit, recv_frame, send_frame
from .validation import PartitionQuery, TestQuery

__all__ = [
    "CHAOS_EXIT_NAME",
    "CHAOS_EXIT_CODE",
    "CHAOS_SLEEP_PREFIX",
    "ShardCore",
    "test_query_digest",
    "partition_query_digest",
    "worker_main",
]

#: Fault-injection hooks, active only when a worker runs with
#: ``--chaos`` (tests and drills; never the default).  A task *name* is
#: free-form client data that reaches the worker unchanged, which makes
#: it a deterministic way to crash or stall a specific shard while it
#: is processing a specific request.
CHAOS_EXIT_NAME = "__chaos_exit__"
CHAOS_EXIT_CODE = 23
CHAOS_SLEEP_PREFIX = "__chaos_sleep_ms_"


def test_query_digest(q: TestQuery) -> tuple[str, float]:
    """Cache key and resolved alpha for a test query.

    Resolving ``alpha=None`` to the theorem's value first means an
    explicit ``alpha=2.0`` EDF/partitioned query and a defaulted one
    share a cache entry.
    """
    alpha = q.alpha if q.alpha is not None else theorem_alpha(
        q.scheduler, q.adversary  # type: ignore[arg-type]
    )
    digest = instance_digest(
        q.taskset,
        q.platform,
        query={
            "kind": "test",
            "scheduler": q.scheduler,
            "adversary": q.adversary,
            "alpha": alpha,
        },
    )
    return digest, alpha


def partition_query_digest(q: PartitionQuery) -> str:
    """Cache key for a partition query."""
    return instance_digest(
        q.taskset,
        q.platform,
        query={"kind": "partition", "test": q.test, "alpha": q.alpha},
    )


@dataclass(frozen=True)
class _BatchItem:
    """Picklable unit of batch work (crosses the runner's pool)."""

    taskset: Any  # canonical-order TaskSet
    platform: Any
    scheduler: str
    adversary: str
    alpha: float | None


def _evaluate_batch_item(item: _BatchItem) -> dict[str, Any]:
    """Per-trial function for the runner: one canonical verdict dict."""
    report = feasibility_test(
        item.taskset,
        item.platform,
        item.scheduler,
        item.adversary,
        alpha=item.alpha,
    )
    return report_to_dict(report)


class ShardCore:
    """Canonical-verdict evaluation plus one private LRU.

    Verdicts are computed *on the canonical instance* (tasks subset
    into canonical order — done lazily, only on a miss) and cached in
    canonical terms under the caller-supplied digest; index remapping
    back to submission order is the caller's job (it owns the
    submission-order view).  ``on_backend`` is invoked once per
    evaluated miss group with ``(backend_name, count)`` so the host —
    service metrics registry or worker counter — can account for
    computed verdicts without this class knowing about either.
    """

    def __init__(
        self,
        *,
        cache_size: int = 1024,
        backend: str | None = None,
        jobs: int = 1,
        on_backend: Callable[[str, int], None] | None = None,
    ):
        self.backend = resolve_backend(backend) if backend is not None else None
        self.jobs = jobs
        self.cache = LRUCache(cache_size)
        self._on_backend = on_backend

    def _observe_backend(self, count: int = 1) -> None:
        if self._on_backend is not None:
            self._on_backend(self.backend or "scalar", count)

    # -- single verdicts ----------------------------------------------------
    def test(self, unit: TestUnit) -> tuple[dict[str, Any], bool]:
        """(canonical report dict, was it cached) for one test unit."""
        canon = self.cache.get(unit.digest)
        if canon is not None:
            return canon, True
        canonical = unit.taskset.subset(list(unit.order))
        if self.backend is None:
            report = feasibility_test(
                canonical,
                unit.platform,
                unit.scheduler,  # type: ignore[arg-type]
                unit.adversary,  # type: ignore[arg-type]
                alpha=unit.alpha,
            )
            canon = report_to_dict(report)
        else:
            report = test_feasibility_batch(
                [(canonical, unit.platform)],
                unit.scheduler,  # type: ignore[arg-type]
                unit.adversary,  # type: ignore[arg-type]
                alpha=unit.alpha,
                backend=self.backend,
            )[0]
            canon = report_to_dict(report, backend=self.backend)
        self._observe_backend()
        self.cache.put(unit.digest, canon)
        return canon, False

    def partition(self, unit: PartitionUnit) -> tuple[dict[str, Any], bool]:
        """(canonical partition dict, was it cached) for one unit."""
        canon = self.cache.get(unit.digest)
        if canon is not None:
            return canon, True
        result = first_fit_partition(
            unit.taskset.subset(list(unit.order)),
            unit.platform,
            unit.test,
            alpha=unit.alpha,
        )
        canon = partition_result_to_dict(result)
        self.cache.put(unit.digest, canon)
        return canon, False

    # -- batches ------------------------------------------------------------
    def batch(self, units: list[TestUnit]) -> list[tuple[dict[str, Any], bool]]:
        """Cache-aware batch evaluation, results in ``units`` order.

        The discipline is the single-process server's, verbatim: scan
        every unit against the cache first (classifying hit/miss),
        dedup misses by digest (permutations of one instance evaluate
        once), evaluate the distinct misses — scalar path through
        :func:`repro.runner.run_trials` (in-process at ``jobs=1``), or
        one kernel call per theorem config — then fill results
        positionally.  Both copies of a deduped digest report
        ``cached=False``: they were misses at scan time.
        """
        canon_reports: list[dict[str, Any] | None] = []
        misses: list[int] = []
        for unit in units:
            canon = self.cache.get(unit.digest)
            canon_reports.append(canon)
            if canon is None:
                misses.append(len(canon_reports) - 1)
        pending: dict[str, list[int]] = {}
        for k in misses:
            pending.setdefault(units[k].digest, []).append(k)
        items = [
            _BatchItem(
                taskset=units[ks[0]].taskset.subset(list(units[ks[0]].order)),
                platform=units[ks[0]].platform,
                scheduler=units[ks[0]].scheduler,
                adversary=units[ks[0]].adversary,
                alpha=units[ks[0]].alpha,
            )
            for ks in pending.values()
        ]
        if items:
            if self.backend is None:
                run = run_trials(
                    _evaluate_batch_item,
                    items,
                    jobs=self.jobs,
                    label="service/batch",
                )
                records = list(run.records)
            else:
                records = self._evaluate_batch_kernel(items)
            self._observe_backend(len(items))
            for (digest, ks), canon in zip(pending.items(), records):
                self.cache.put(digest, canon)
                for k in ks:
                    canon_reports[k] = canon
        return [
            (canon, k not in misses)
            for k, canon in enumerate(canon_reports)  # type: ignore[misc]
        ]

    def _evaluate_batch_kernel(
        self, items: list[_BatchItem]
    ) -> list[dict[str, Any]]:
        """Batch-evaluate misses through the kernel backend.

        Misses are grouped by theorem config (scheduler, adversary,
        alpha) so each group becomes *one*
        :func:`~repro.kernels.test_feasibility_batch` call — within a
        group the kernels further shard by instance shape.
        """
        groups: dict[tuple[str, str, float | None], list[int]] = {}
        for t, item in enumerate(items):
            groups.setdefault(
                (item.scheduler, item.adversary, item.alpha), []
            ).append(t)
        out: list[dict[str, Any]] = [{} for _ in items]
        for (scheduler, adversary, alpha), idxs in groups.items():
            reports = test_feasibility_batch(
                [(items[t].taskset, items[t].platform) for t in idxs],
                scheduler,  # type: ignore[arg-type]
                adversary,  # type: ignore[arg-type]
                alpha=alpha,
                backend=self.backend,
            )
            for t, rep in zip(idxs, reports):
                out[t] = report_to_dict(rep, backend=self.backend)
        return out


# -- the worker process ------------------------------------------------------


class _Worker:
    """One shard worker: a :class:`ShardCore` behind a frame loop."""

    def __init__(
        self,
        shard: int,
        *,
        cache_size: int,
        backend: str | None,
        chaos: bool,
    ):
        self.shard = shard
        self.chaos = chaos
        self._backend_tests: dict[str, int] = {}
        self._requests: dict[str, int] = {}
        self._items = 0
        self.core = ShardCore(
            cache_size=cache_size,
            backend=backend,
            jobs=1,  # a shard is single-process serial by design
            on_backend=self._count_backend,
        )

    def _count_backend(self, backend: str, count: int) -> None:
        self._backend_tests[backend] = (
            self._backend_tests.get(backend, 0) + count
        )

    def _apply_chaos(self, units: list[TestUnit | PartitionUnit]) -> None:
        """Honour fault-injection task names (``--chaos`` runs only)."""
        if not self.chaos:
            return
        for unit in units:
            for task in unit.taskset:
                name = task.name
                if name == CHAOS_EXIT_NAME:
                    # A real crash, not an exception: the point is to
                    # exercise the front end's dead-shard detection and
                    # replay path, so nothing here may unwind politely.
                    os._exit(CHAOS_EXIT_CODE)
                if name.startswith(CHAOS_SLEEP_PREFIX):
                    ms = float(name[len(CHAOS_SLEEP_PREFIX):].rstrip("_"))
                    time.sleep(ms / 1000.0)

    def stats(self) -> dict[str, Any]:
        """The per-shard observability snapshot (``stats`` frames)."""
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "requests": dict(sorted(self._requests.items())),
            "items": self._items,
            "cache": self.core.cache.stats().as_dict(),
            "backend_tests": dict(sorted(self._backend_tests.items())),
        }

    def dispatch(self, op: str, payload: Any) -> Any:
        self._requests[op] = self._requests.get(op, 0) + 1
        if op == "test":
            self._apply_chaos([payload])
            self._items += 1
            return self.core.test(payload)
        if op == "partition":
            self._apply_chaos([payload])
            self._items += 1
            return self.core.partition(payload)
        if op == "batch":
            self._apply_chaos(payload)
            self._items += len(payload)
            return self.core.batch(payload)
        if op == "stats":
            return self.stats()
        if op in ("ping", "shutdown"):
            return None
        raise ValueError(f"unknown op {op!r}")


def serve_connection(sock: socket.socket, worker: _Worker) -> int:
    """Answer frames until ``shutdown`` or EOF.  Returns an exit code.

    Frames are answered strictly in arrival order; an exception inside
    a handler produces an ``error`` response for that frame and the
    loop continues — only a closed socket or an explicit ``shutdown``
    ends the worker, so one poisoned request can never take a shard
    (and its warm cache) down with it.
    """
    while True:
        message = recv_frame(sock)
        if message is None:
            return 0  # front end closed the pair: drain finished
        op, seq, payload = message
        try:
            result = worker.dispatch(op, payload)
            response = (seq, "ok", result)
        except Exception as exc:  # noqa: BLE001 - reported to the front end
            response = (seq, "error", f"{type(exc).__name__}: {exc}")
        try:
            send_frame(sock, response)
        except (BrokenPipeError, ConnectionError):
            return 0  # front end went away mid-reply
        if op == "shutdown":
            return 0


def worker_main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.service.shard``."""
    parser = argparse.ArgumentParser(prog="repro.service.shard")
    parser.add_argument("--fd", type=int, required=True,
                        help="inherited socketpair file descriptor")
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--chaos", action="store_true")
    args = parser.parse_args(argv)

    # The front end owns shutdown: it drains via explicit frames (or by
    # closing the socketpair), so terminal-delivered SIGINT/SIGTERM to
    # the process group must not kill a shard mid-drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    sock = socket.socket(fileno=args.fd)
    worker = _Worker(
        args.shard,
        cache_size=args.cache_size,
        backend=args.backend,
        chaos=args.chaos,
    )
    try:
        return serve_connection(sock, worker)
    finally:
        sock.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(worker_main())
