"""Sharded multi-process front end: asyncio dispatcher + worker pool.

The second service architecture (the first is the single-process
:mod:`repro.service.server`): one asyncio process owns the HTTP surface
and routes every verdict request to one of N worker processes
(:mod:`repro.service.shard`) keyed by a prefix of the canonical
:func:`~repro.io_.serialize.instance_digest`.  Each worker owns a
private verdict LRU — the digest routing guarantees a canonical
instance is only ever seen by one worker, so there is no cross-process
locking, no shared memory, and no cache-coherence protocol at all.

Division of labour per request:

* **front end** — HTTP parsing, JSON decode, payload validation,
  canonical order + digest computation, shard routing, response
  remapping to submission order, JSON encode.  ``/v1/batch`` splits its
  payload by shard, fans the sub-batches out concurrently, and
  reassembles the responses positionally (the same
  positional-reduction discipline as :mod:`repro.runner`), so the body
  is byte-identical to the single-process server's.
* **worker** — cache lookup and verdict evaluation only, through the
  same :class:`~repro.service.shard.ShardCore` the single-process
  service uses.

Worker lifecycle: workers are spawned as subprocesses over an
inherited ``socketpair`` (pre-fork style, no dependence on fork safety
under threads).  If a worker dies, the front end detects EOF on the
pair, respawns the shard with an *empty* LRU, replays every in-flight
frame exactly once, and answers ``503`` only for a request whose
replay also died.  SIGTERM drains: stop accepting, finish in-flight
HTTP requests, send every worker a ``shutdown`` frame (FIFO after its
pending work), then reap the processes.

Consistency guarantees (see ``docs/service.md``): report and digest
bytes are identical to the single-process server for every worker
count and backend; the ``cached`` flags agree whenever the comparison
is run from a cold start with per-worker capacity at least the working
set (sharding changes cache *architecture*, so eviction patterns under
pressure legitimately differ).
"""

# repro: noqa-file[REP006, REP010] — every object here lives on the
# single asyncio event-loop thread; there are no concurrent request
# threads to race with, so lock-guarding this state (or proving a
# lock-holding caller chain for it) would be dead weight.

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
import traceback
from pathlib import Path
from typing import Any, Awaitable, Callable

from .. import __version__
from ..io_.serialize import canonical_task_order, shard_for_digest
from .app import _remap_partition_dict, _remap_report_dict
from .metrics import MetricsRegistry, render_shard_prometheus
from .protocol import (
    PartitionUnit,
    TestUnit,
    frame_bytes,
    read_frame_async,
)
from .server import MAX_BODY_BYTES, _error_body
from .validation import (
    ValidationError,
    parse_batch_request,
    parse_partition_request,
    parse_test_request,
)
from .shard import partition_query_digest, test_query_digest

__all__ = ["ShardedFrontend", "serve_sharded"]

#: How long a drain waits for in-flight HTTP requests and worker exits
#: before escalating to cancellation / SIGKILL.
DRAIN_TIMEOUT = 30.0

#: Timeout for polling worker ``stats`` frames on ``/metrics`` — a
#: worker buried under a long batch answers late; the scrape must not
#: stall behind it.
STATS_TIMEOUT = 2.0

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Content Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ShardUnavailable(Exception):
    """A request could not be served because its shard is gone."""

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard} unavailable: {reason}")
        self.shard = shard
        self.reason = reason


class _WorkerError(Exception):
    """The worker answered an ``error`` frame (handler bug, not crash)."""


class _PendingCall:
    """One frame awaiting its response (and possibly one replay)."""

    __slots__ = ("future", "op", "payload", "replayed")

    def __init__(
        self, future: asyncio.Future, op: str, payload: Any, replayed: bool
    ):
        self.future = future
        self.op = op
        self.payload = payload
        self.replayed = replayed


class _WorkerHandle:
    """Front-end side of one shard worker process."""

    def __init__(self, frontend: "ShardedFrontend", index: int):
        self.frontend = frontend
        self.index = index
        self.state = "starting"  # starting | ok | restarting | dead
        self.restarts = 0
        self.proc: subprocess.Popen | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.pending: dict[int, _PendingCall] = {}
        self._next_seq = 0
        self._reader_task: asyncio.Task | None = None
        self._ready = asyncio.Event()
        self.draining = False

    @property
    def queue_depth(self) -> int:
        return len(self.pending)

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker process and wire its socketpair end in."""
        parent, child = socket.socketpair()
        child.set_inheritable(True)
        # `-c` rather than `-m repro.service.shard`: the package import
        # of `.shard` under runpy's __main__ execution trips a spurious
        # found-in-sys.modules RuntimeWarning on the worker's stderr.
        argv = [
            sys.executable,
            "-c",
            "from repro.service.shard import worker_main;"
            " raise SystemExit(worker_main())",
            "--fd",
            str(child.fileno()),
            "--shard",
            str(self.index),
            "--cache-size",
            str(self.frontend.cache_size),
        ]
        if self.frontend.backend is not None:
            argv += ["--backend", self.frontend.backend]
        if self.frontend.chaos:
            argv.append("--chaos")
        # The worker must import repro from the same tree the front end
        # runs from, installed or not.
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parent.parent.parent)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        # blocking Popen is confined to startup and crash-respawn; a
        # fork+exec pause there is accepted over the complexity of an
        # executor hop in the spawn path
        self.proc = subprocess.Popen(  # repro: noqa[REP012]
            argv, pass_fds=[child.fileno()], env=env
        )
        child.close()
        self.reader, self.writer = await asyncio.open_connection(sock=parent)
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.state = "ok"
        self._ready.set()

    async def _read_loop(self) -> None:
        """Resolve responses until the worker's end of the pair closes."""
        assert self.reader is not None
        try:
            while True:
                seq, status, result = await read_frame_async(self.reader)
                call = self.pending.pop(seq, None)
                if call is None or call.future.done():
                    continue
                if status == "ok":
                    call.future.set_result(result)
                else:
                    call.future.set_exception(_WorkerError(str(result)))
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            pass
        if self.draining:
            return
        await self._respawn()

    async def _respawn(self) -> None:
        """The crash-robustness path: new process, empty LRU, replay once."""
        self.state = "restarting"
        self._ready.clear()
        self.restarts += 1
        self.frontend.log(
            f"shard {self.index} worker died "
            f"(pid {self.pid}); respawning with an empty cache"
        )
        await self._reap(timeout=5.0)
        if self.writer is not None:
            self.writer.close()
        orphans = self.pending
        self.pending = {}
        try:
            await self.start()
        except OSError as exc:
            self.state = "dead"
            for call in orphans.values():
                if not call.future.done():
                    call.future.set_exception(
                        ShardUnavailable(self.index, f"respawn failed: {exc}")
                    )
            return
        replayed = 0
        for call in orphans.values():
            if call.future.done():
                continue
            if call.replayed:
                # Second death while holding this request: give up.
                call.future.set_exception(
                    ShardUnavailable(
                        self.index,
                        "worker died twice while processing this request",
                    )
                )
                continue
            call.replayed = True
            seq = self._next_seq
            self._next_seq += 1
            self.pending[seq] = call
            assert self.writer is not None
            self.writer.write(frame_bytes((call.op, seq, call.payload)))
            replayed += 1
        if replayed:
            self.frontend.log(
                f"shard {self.index}: replayed {replayed} in-flight frame(s)"
            )
            assert self.writer is not None
            try:
                await self.writer.drain()
            except (ConnectionError, OSError):
                pass  # the new worker died instantly; its reader loop handles it

    async def _reap(self, timeout: float) -> None:
        """Wait for the worker process, escalating to SIGKILL."""
        proc = self.proc
        if proc is None:
            return
        loop = asyncio.get_running_loop()
        try:
            await asyncio.wait_for(
                loop.run_in_executor(None, proc.wait), timeout
            )
        except asyncio.TimeoutError:
            proc.kill()
            await loop.run_in_executor(None, proc.wait)

    # -- calls --------------------------------------------------------------
    async def call(self, op: str, payload: Any) -> Any:
        """Send one frame; await (and possibly survive one replay of) it."""
        if self.state == "dead":
            raise ShardUnavailable(self.index, "worker is not running")
        await self._ready.wait()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        seq = self._next_seq
        self._next_seq += 1
        self.pending[seq] = _PendingCall(future, op, payload, False)
        assert self.writer is not None
        try:
            self.writer.write(frame_bytes((op, seq, payload)))
            await self.writer.drain()
        except (ConnectionError, OSError):
            # The pipe broke under us; the reader loop is about to
            # notice and replay this pending frame on the new worker.
            pass
        return await future

    async def shutdown(self) -> None:
        """Drain: FIFO ``shutdown`` frame, then reap the process."""
        self.draining = True
        if self.state in ("ok", "starting") and self.writer is not None:
            try:
                await self.call("shutdown", None)
            except (ShardUnavailable, _WorkerError, ConnectionError, OSError):
                pass
            self.writer.close()
        await self._reap(timeout=DRAIN_TIMEOUT)
        if self._reader_task is not None:
            self._reader_task.cancel()
        self.state = "dead"

    def snapshot(self, stats: dict[str, Any] | None) -> dict[str, Any]:
        """Front-end view of this shard, for ``/healthz`` and ``/metrics``."""
        return {
            "shard": self.index,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "queue_depth": self.queue_depth,
            "stats": stats,
        }


class _Conn:
    """One HTTP connection's drain-relevant state."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class ShardedFrontend:
    """The sharded service: one of these per listening address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        cache_size: int = 1024,
        backend: str | None = None,
        chaos: bool = False,
        quiet: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_size = cache_size
        self.backend = backend
        self.chaos = chaos
        self.quiet = quiet
        self.metrics = MetricsRegistry()
        self.handles: list[_WorkerHandle] = []
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[_Conn] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._started = time.monotonic()
        self.bound_port: int | None = None

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"repro.service.frontend: {message}", file=sys.stderr, flush=True)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool and bind the listening socket."""
        self._started = time.monotonic()
        self.handles = [
            _WorkerHandle(self, k) for k in range(self.workers)
        ]
        for handle in self.handles:
            await handle.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: HTTP first, then the worker fan-out."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections would wait forever for a next
        # request; close them.  Busy ones finish their response first.
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        if self._conn_tasks:
            done, stragglers = await asyncio.wait(
                self._conn_tasks, timeout=DRAIN_TIMEOUT
            )
            for task in stragglers:
                task.cancel()
        await asyncio.gather(
            *(handle.shutdown() for handle in self.handles),
            return_exceptions=True,
        )

    # -- HTTP ---------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._conn_loop(reader, writer, conn)
        finally:
            self._conns.discard(conn)
            writer.close()

    async def _conn_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Conn,
    ) -> None:
        while not self._stopping:
            try:
                request_line = await reader.readline()
            except (ConnectionError, OSError, asyncio.LimitOverrunError):
                return
            if not request_line or request_line.strip() == b"":
                return
            try:
                method, target, _version = (
                    request_line.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                return  # not HTTP; drop the connection
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if b":" in line:
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
            close_after = headers.get("connection", "").lower() == "close"
            conn.busy = True
            try:
                status, body_bytes, content_type, close = await self._serve_one(
                    method, target, reader, headers
                )
            finally:
                conn.busy = False
            close = close or close_after or self._stopping
            reason = _HTTP_REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body_bytes)}\r\n"
                + ("Connection: close\r\n" if close else "")
                + "\r\n"
            )
            try:
                writer.write(head.encode("latin-1") + body_bytes)
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if close:
                return

    async def _serve_one(
        self,
        method: str,
        target: str,
        reader: asyncio.StreamReader,
        headers: dict[str, str],
    ) -> tuple[int, bytes, str, bool]:
        """One request → (status, body, content type, close?).

        Mirrors :mod:`repro.service.server`'s error mapping so the two
        architectures answer malformed traffic identically.
        """
        path, _, query = target.partition("?")
        t0 = time.perf_counter()
        status = 500
        close = False
        body: bytes = b""
        content_type = "application/json; charset=utf-8"
        try:
            status, payload, content_type, close = await self._route(
                method, path, query, reader, headers
            )
            if isinstance(payload, bytes):
                body = payload
            else:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
        except ValidationError as exc:
            status = 400
            body = json.dumps(exc.as_dict(), sort_keys=True).encode("utf-8")
        except ShardUnavailable as exc:
            status = 503
            body = json.dumps(
                _error_body(str(exc)), sort_keys=True
            ).encode("utf-8")
        except _HttpError as exc:
            status = exc.status
            close = close or exc.close
            body = json.dumps(exc.body, sort_keys=True).encode("utf-8")
        except (asyncio.IncompleteReadError, ConnectionError):
            # Client hung up mid-body; same accounting as server.py.
            status = 499
            close = True
            body = b""
        except Exception:
            self.log(
                f"unhandled error on {path}:\n{traceback.format_exc()}"
            )
            status = 500
            body = json.dumps(
                _error_body("internal server error"), sort_keys=True
            ).encode("utf-8")
        finally:
            self.metrics.observe(path, status, time.perf_counter() - t0)
        return status, body, content_type, close

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> Any:
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            raise _HttpError(
                411, _error_body("Content-Length header is required"), close=True
            ) from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413,
                _error_body(f"request body exceeds {MAX_BODY_BYTES} bytes"),
                close=True,
            )
        raw = await reader.readexactly(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpError(
                400, _error_body(f"request body is not valid JSON: {exc}")
            ) from None

    async def _route(
        self,
        method: str,
        path: str,
        query: str,
        reader: asyncio.StreamReader,
        headers: dict[str, str],
    ) -> tuple[int, Any, str, bool]:
        post_routes: dict[str, Callable[[Any], Awaitable[Any]]] = {
            "/v1/test": self._handle_test,
            "/v1/partition": self._handle_partition,
            "/v1/batch": self._handle_batch,
        }
        get_paths = ("/healthz", "/metrics")
        known = list(get_paths) + list(post_routes)
        if method == "POST":
            handler = post_routes.get(path)
            if handler is None:
                if path in get_paths:
                    raise _HttpError(
                        405, _error_body("method not allowed; use GET"), close=True
                    )
                raise _not_found(known)
            payload = await self._read_body(reader, headers)
            return 200, await handler(payload), "application/json; charset=utf-8", False
        if method == "GET":
            if path not in get_paths:
                if path in post_routes:
                    raise _HttpError(
                        405, _error_body("method not allowed; use POST"), close=True
                    )
                raise _not_found(known)
            if path == "/healthz":
                return 200, self._handle_healthz(), "application/json; charset=utf-8", False
            fmt = "json"
            for part in query.split("&"):
                if part.startswith("format="):
                    fmt = part[len("format="):]
            if fmt == "prometheus":
                text = await self._metrics_prometheus()
                return 200, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8", False
            if fmt != "json":
                raise _HttpError(
                    400, _error_body("format must be 'json' or 'prometheus'")
                )
            return 200, await self._metrics_json(), "application/json; charset=utf-8", False
        raise _HttpError(
            405, _error_body("method not allowed; use GET or POST"), close=True
        )

    # -- verdict endpoints --------------------------------------------------
    def _shard_of(self, digest: str) -> _WorkerHandle:
        return self.handles[shard_for_digest(digest, self.workers)]

    async def _handle_test(self, payload: Any) -> dict[str, Any]:
        q = parse_test_request(payload)
        digest, _ = test_query_digest(q)
        order = canonical_task_order(q.taskset)
        unit = TestUnit(
            digest=digest,
            taskset=q.taskset,
            order=tuple(order),
            platform=q.platform,
            scheduler=q.scheduler,
            adversary=q.adversary,
            alpha=q.alpha,
        )
        canon, cached = await self._shard_of(digest).call("test", unit)
        return {
            "digest": digest,
            "cached": cached,
            "report": _remap_report_dict(canon, order),
        }

    async def _handle_partition(self, payload: Any) -> dict[str, Any]:
        q = parse_partition_request(payload)
        digest = partition_query_digest(q)
        order = canonical_task_order(q.taskset)
        unit = PartitionUnit(
            digest=digest,
            taskset=q.taskset,
            order=tuple(order),
            platform=q.platform,
            test=q.test,
            alpha=q.alpha,
        )
        canon, cached = await self._shard_of(digest).call("partition", unit)
        return {
            "digest": digest,
            "cached": cached,
            "result": _remap_partition_dict(canon, order),
        }

    async def _handle_batch(self, payload: Any) -> dict[str, Any]:
        """Split by shard, fan out concurrently, reassemble positionally."""
        queries = parse_batch_request(payload)
        orders: list[list[int]] = []
        units: list[TestUnit] = []
        by_shard: dict[int, list[int]] = {}
        for k, q in enumerate(queries):
            digest, _ = test_query_digest(q)
            order = canonical_task_order(q.taskset)
            orders.append(order)
            units.append(
                TestUnit(
                    digest=digest,
                    taskset=q.taskset,
                    order=tuple(order),
                    platform=q.platform,
                    scheduler=q.scheduler,
                    adversary=q.adversary,
                    alpha=q.alpha,
                )
            )
            by_shard.setdefault(
                shard_for_digest(digest, self.workers), []
            ).append(k)
        shard_ids = sorted(by_shard)
        sub_results = await asyncio.gather(
            *(
                self.handles[s].call(
                    "batch", [units[k] for k in by_shard[s]]
                )
                for s in shard_ids
            )
        )
        outcomes: list[tuple[dict[str, Any], bool] | None] = [None] * len(queries)
        for s, result in zip(shard_ids, sub_results):
            for k, outcome in zip(by_shard[s], result):
                outcomes[k] = outcome
        hits = sum(1 for o in outcomes if o is not None and o[1])
        return {
            "count": len(queries),
            "cached": hits,
            "results": [
                {
                    "digest": units[k].digest,
                    "cached": cached,
                    "report": _remap_report_dict(canon, orders[k]),
                }
                for k, (canon, cached) in enumerate(outcomes)  # type: ignore[misc]
            ],
        }

    # -- observability endpoints --------------------------------------------
    def _handle_healthz(self) -> dict[str, Any]:
        """Aggregate health: degraded when any worker is dead or restarting."""
        shards = [h.snapshot(None) for h in self.handles]
        for s in shards:
            s.pop("stats")
        degraded = any(h.state != "ok" for h in self.handles)
        return {
            "status": "degraded" if degraded else "ok",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self._started,
            "architecture": "sharded",
            "workers": self.workers,
            "backend": self.backend or "scalar",
            "cache_size_per_worker": self.cache_size,
            "shards": shards,
        }

    async def _poll_shards(self) -> list[dict[str, Any]]:
        """Worker stats snapshots; a stuck or dead worker yields ``None``."""

        async def poll(handle: _WorkerHandle) -> dict[str, Any] | None:
            if handle.state != "ok":
                return None
            try:
                return await asyncio.wait_for(
                    handle.call("stats", None), STATS_TIMEOUT
                )
            except (
                asyncio.TimeoutError,
                ShardUnavailable,
                _WorkerError,
                ConnectionError,
                OSError,
            ):
                return None

        stats = await asyncio.gather(*(poll(h) for h in self.handles))
        return [h.snapshot(s) for h, s in zip(self.handles, stats)]

    async def _metrics_json(self) -> dict[str, Any]:
        return {
            "frontend": self.metrics.as_dict(),
            "uptime_seconds": time.monotonic() - self._started,
            "workers": self.workers,
            "restarts_total": sum(h.restarts for h in self.handles),
            "shards": await self._poll_shards(),
        }

    async def _metrics_prometheus(self) -> str:
        return self.metrics.render_prometheus() + render_shard_prometheus(
            await self._poll_shards()
        )


class _HttpError(Exception):
    """Abort the current request with this status and JSON body."""

    def __init__(self, status: int, body: dict[str, Any], *, close: bool = False):
        super().__init__(body.get("error", {}).get("message", ""))
        self.status = status
        self.body = body
        self.close = close


def _not_found(known: list[str]) -> _HttpError:
    return _HttpError(
        404,
        _error_body(f"unknown endpoint; known endpoints: {known}"),
        close=True,
    )


def serve_sharded(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    workers: int = 2,
    cache_size: int = 1024,
    backend: str | None = None,
    chaos: bool = False,
    quiet: bool = True,
) -> int:
    """Run the sharded front end until SIGTERM/SIGINT, drain, exit 0."""

    async def main() -> int:
        frontend = ShardedFrontend(
            host,
            port,
            workers=workers,
            cache_size=cache_size,
            backend=backend,
            chaos=chaos,
            quiet=quiet,
        )
        await frontend.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(
            f"repro.service.frontend listening on "
            f"http://{host}:{frontend.bound_port} "
            f"(workers={workers}, cache_size={cache_size}, "
            f"backend={backend or 'scalar'})",
            file=sys.stderr,
            flush=True,
        )
        await stop.wait()
        print(
            "repro.service.frontend shutting down: draining requests "
            "and worker pool...",
            file=sys.stderr,
            flush=True,
        )
        await frontend.drain()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(sig)
        print("repro.service.frontend stopped", file=sys.stderr, flush=True)
        return 0

    return asyncio.run(main())
