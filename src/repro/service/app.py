"""Transport-independent service logic: parse → canonicalize → cache → answer.

The HTTP layer (:mod:`repro.service.server`) is a thin adapter over
:class:`FeasibilityService`; everything interesting — canonical-instance
caching, index remapping, batch fan-out — lives here and is unit-testable
without a socket.

Canonical-instance caching
--------------------------
Verdicts are cached under :func:`repro.io_.serialize.instance_digest`,
which is invariant under task/machine permutation and renaming.  To make
the cached value reusable across permutations, the verdict is *computed
on the canonical instance* (tasks sorted into canonical order) and
stored in canonical terms; each response then remaps task indices back
to the submitting client's order.  Machine indices never need remapping:
:class:`~repro.core.model.Platform` stores machines speed-sorted, so the
canonical machine order and any submission's internal order coincide.

Because the canonical task order sorts by utilization descending — the
exact order §III first-fit processes tasks in — the canonical run
performs the same admission probes as a direct call on the submitted
instance, and (absent exact utilization ties) the remapped response is
byte-identical to that direct call.
"""

from __future__ import annotations

import copy
import time
from typing import Any

from .. import __version__
from ..io_.serialize import canonical_task_order
from .metrics import MetricsRegistry
from .protocol import PartitionUnit, TestUnit
from .shard import ShardCore, partition_query_digest, test_query_digest
from .validation import (
    parse_batch_request,
    parse_partition_request,
    parse_test_request,
)

__all__ = ["FeasibilityService"]


def _remap_partition_dict(
    canon: dict[str, Any], order: list[int]
) -> dict[str, Any]:
    """Translate a canonical-order partition dict to submission order.

    ``order[k]`` is the submitted index of the task at canonical
    position ``k``.  Machine indices are already canonical (speed-sorted)
    in both views and pass through unchanged.
    """
    out = dict(canon)
    assignment: list[int | None] = [None] * len(order)
    for k, machine in enumerate(canon["assignment"]):
        assignment[order[k]] = machine
    out["assignment"] = assignment
    out["machine_tasks"] = [
        [order[k] for k in tasks] for tasks in canon["machine_tasks"]
    ]
    out["order"] = [order[k] for k in canon["order"]]
    failed = canon["failed_task"]
    out["failed_task"] = order[failed] if failed is not None else None
    return out


def _remap_report_dict(canon: dict[str, Any], order: list[int]) -> dict[str, Any]:
    """Translate a canonical-order report dict to submission order."""
    out = dict(canon)
    out["partition"] = _remap_partition_dict(canon["partition"], order)
    # Certificate fields are scalars and machine indices — order-free —
    # but copy so callers can never alias the cached payload.
    if canon.get("certificate") is not None:
        out["certificate"] = copy.deepcopy(canon["certificate"])
    return out


class FeasibilityService:
    """The feasibility-query service: endpoints as plain methods.

    Every ``handle_*`` method takes a decoded JSON payload and returns a
    JSON-ready dict, raising
    :class:`~repro.service.validation.ValidationError` on bad input.
    Thread-safe: the cache and metrics use their own locks and the
    feasibility tests are pure functions of their arguments.

    All evaluation and caching lives in :class:`~repro.service.shard.ShardCore`
    — the same engine every worker of the sharded front end
    (:mod:`repro.service.frontend`) runs — so this single-process
    server and the multi-process one cannot drift apart on a verdict
    byte.  This class owns what a shard does not: payload parsing,
    digest/order computation, and remapping responses back to the
    client's submission order.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_size: int = 1024,
        backend: str | None = None,
    ):
        """``backend`` selects the evaluation path for cache misses.

        ``None`` (the default) keeps the legacy scalar path and a
        byte-identical response schema; an explicit ``scalar`` /
        ``kernel`` / ``numpy`` routes verdicts through
        :func:`repro.kernels.test_feasibility_batch` — ``/v1/batch``
        misses become one kernel call per theorem config — and stamps
        each computed report with a ``backend`` provenance key (the
        verdicts themselves are bit-identical across backends).
        """
        self.metrics = MetricsRegistry()
        self.core = ShardCore(
            cache_size=cache_size,
            backend=backend,
            jobs=jobs,
            on_backend=self.metrics.observe_backend,
        )
        self._started = time.monotonic()

    # The single-process server is one shard that owns everything; keep
    # its pre-shard public surface as thin views onto the core.
    @property
    def jobs(self) -> int:
        return self.core.jobs

    @property
    def backend(self) -> str | None:
        return self.core.backend

    @property
    def cache(self):
        return self.core.cache

    # Seam for tests (e.g. holding a request in flight to prove graceful
    # drain); the HTTP layer calls it before dispatching each request.
    def before_handle(self, endpoint: str) -> None:
        return None

    # -- endpoints ----------------------------------------------------------
    def handle_test(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/test`` — one per-theorem verdict, cached."""
        q = parse_test_request(payload)
        digest, _ = test_query_digest(q)
        order = canonical_task_order(q.taskset)
        canon, cached = self.core.test(
            TestUnit(
                digest=digest,
                taskset=q.taskset,
                order=tuple(order),
                platform=q.platform,
                scheduler=q.scheduler,
                adversary=q.adversary,
                alpha=q.alpha,
            )
        )
        return {
            "digest": digest,
            "cached": cached,
            "report": _remap_report_dict(canon, order),
        }

    def handle_partition(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/partition`` — a first-fit assignment, cached."""
        q = parse_partition_request(payload)
        digest = partition_query_digest(q)
        order = canonical_task_order(q.taskset)
        canon, cached = self.core.partition(
            PartitionUnit(
                digest=digest,
                taskset=q.taskset,
                order=tuple(order),
                platform=q.platform,
                test=q.test,
                alpha=q.alpha,
            )
        )
        return {
            "digest": digest,
            "cached": cached,
            "result": _remap_partition_dict(canon, order),
        }

    def handle_batch(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/batch`` — many verdicts, cache-aware, pool-dispatched.

        Cache hits are answered inline; the misses fan out through
        :func:`repro.runner.run_trials` (in-process at ``jobs=1``, a
        process pool otherwise) and are cached for the next caller.
        Results come back in submission order regardless of ``jobs``.
        """
        queries = parse_batch_request(payload)
        orders: list[list[int]] = []
        units: list[TestUnit] = []
        for q in queries:
            digest, _ = test_query_digest(q)
            order = canonical_task_order(q.taskset)
            orders.append(order)
            units.append(
                TestUnit(
                    digest=digest,
                    taskset=q.taskset,
                    order=tuple(order),
                    platform=q.platform,
                    scheduler=q.scheduler,
                    adversary=q.adversary,
                    alpha=q.alpha,
                )
            )
        outcomes = self.core.batch(units)
        hits = sum(1 for _, cached in outcomes if cached)
        return {
            "count": len(queries),
            "cached": hits,
            "results": [
                {
                    "digest": units[k].digest,
                    "cached": cached,
                    "report": _remap_report_dict(canon, orders[k]),
                }
                for k, (canon, cached) in enumerate(outcomes)
            ],
        }

    def handle_healthz(self) -> dict[str, Any]:
        """``GET /healthz`` — liveness plus basic identity."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self._started,
            "jobs": self.jobs,
            "backend": self.backend or "scalar",
            "cache": self.cache.stats().as_dict(),
        }

    def metrics_json(self) -> dict[str, Any]:
        """``GET /metrics`` (JSON rendering)."""
        out = self.metrics.as_dict(self.cache.stats())
        out["uptime_seconds"] = time.monotonic() - self._started
        return out

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus`` (text exposition)."""
        return self.metrics.render_prometheus(self.cache.stats())
