"""Transport-independent service logic: parse → canonicalize → cache → answer.

The HTTP layer (:mod:`repro.service.server`) is a thin adapter over
:class:`FeasibilityService`; everything interesting — canonical-instance
caching, index remapping, batch fan-out — lives here and is unit-testable
without a socket.

Canonical-instance caching
--------------------------
Verdicts are cached under :func:`repro.io_.serialize.instance_digest`,
which is invariant under task/machine permutation and renaming.  To make
the cached value reusable across permutations, the verdict is *computed
on the canonical instance* (tasks sorted into canonical order) and
stored in canonical terms; each response then remaps task indices back
to the submitting client's order.  Machine indices never need remapping:
:class:`~repro.core.model.Platform` stores machines speed-sorted, so the
canonical machine order and any submission's internal order coincide.

Because the canonical task order sorts by utilization descending — the
exact order §III first-fit processes tasks in — the canonical run
performs the same admission probes as a direct call on the submitted
instance, and (absent exact utilization ties) the remapped response is
byte-identical to that direct call.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Any

from .. import __version__
from ..core.feasibility import feasibility_test, theorem_alpha
from ..core.partition import first_fit_partition
from ..io_.serialize import (
    canonical_task_order,
    instance_digest,
    partition_result_to_dict,
    report_to_dict,
)
from ..kernels import resolve_backend, test_feasibility_batch
from ..runner import run_trials
from .cache import LRUCache
from .metrics import MetricsRegistry
from .validation import (
    PartitionQuery,
    TestQuery,
    parse_batch_request,
    parse_partition_request,
    parse_test_request,
)

__all__ = ["FeasibilityService"]


@dataclass(frozen=True)
class _BatchItem:
    """Picklable unit of /v1/batch work (crosses the runner's pool)."""

    taskset: Any  # canonical-order TaskSet
    platform: Any
    scheduler: str
    adversary: str
    alpha: float | None


def _evaluate_batch_item(item: _BatchItem) -> dict[str, Any]:
    """Per-trial function for the runner: one canonical verdict dict."""
    report = feasibility_test(
        item.taskset,
        item.platform,
        item.scheduler,
        item.adversary,
        alpha=item.alpha,
    )
    return report_to_dict(report)


def _remap_partition_dict(
    canon: dict[str, Any], order: list[int]
) -> dict[str, Any]:
    """Translate a canonical-order partition dict to submission order.

    ``order[k]`` is the submitted index of the task at canonical
    position ``k``.  Machine indices are already canonical (speed-sorted)
    in both views and pass through unchanged.
    """
    out = dict(canon)
    assignment: list[int | None] = [None] * len(order)
    for k, machine in enumerate(canon["assignment"]):
        assignment[order[k]] = machine
    out["assignment"] = assignment
    out["machine_tasks"] = [
        [order[k] for k in tasks] for tasks in canon["machine_tasks"]
    ]
    out["order"] = [order[k] for k in canon["order"]]
    failed = canon["failed_task"]
    out["failed_task"] = order[failed] if failed is not None else None
    return out


def _remap_report_dict(canon: dict[str, Any], order: list[int]) -> dict[str, Any]:
    """Translate a canonical-order report dict to submission order."""
    out = dict(canon)
    out["partition"] = _remap_partition_dict(canon["partition"], order)
    # Certificate fields are scalars and machine indices — order-free —
    # but copy so callers can never alias the cached payload.
    if canon.get("certificate") is not None:
        out["certificate"] = copy.deepcopy(canon["certificate"])
    return out


class FeasibilityService:
    """The feasibility-query service: endpoints as plain methods.

    Every ``handle_*`` method takes a decoded JSON payload and returns a
    JSON-ready dict, raising
    :class:`~repro.service.validation.ValidationError` on bad input.
    Thread-safe: the cache and metrics use their own locks and the
    feasibility tests are pure functions of their arguments.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_size: int = 1024,
        backend: str | None = None,
    ):
        """``backend`` selects the evaluation path for cache misses.

        ``None`` (the default) keeps the legacy scalar path and a
        byte-identical response schema; an explicit ``scalar`` /
        ``kernel`` / ``numpy`` routes verdicts through
        :func:`repro.kernels.test_feasibility_batch` — ``/v1/batch``
        misses become one kernel call per theorem config — and stamps
        each computed report with a ``backend`` provenance key (the
        verdicts themselves are bit-identical across backends).
        """
        self.jobs = jobs
        self.backend = resolve_backend(backend) if backend is not None else None
        self.cache = LRUCache(cache_size)
        self.metrics = MetricsRegistry()
        self._started = time.monotonic()

    # Seam for tests (e.g. holding a request in flight to prove graceful
    # drain); the HTTP layer calls it before dispatching each request.
    def before_handle(self, endpoint: str) -> None:
        return None

    # -- verdict plumbing ---------------------------------------------------
    def _test_digest(self, q: TestQuery) -> tuple[str, float]:
        """Cache key and the resolved alpha for a test query.

        Resolving ``alpha=None`` to the theorem's value first means an
        explicit ``alpha=2.0`` EDF/partitioned query and a defaulted one
        share a cache entry.
        """
        alpha = q.alpha if q.alpha is not None else theorem_alpha(
            q.scheduler, q.adversary  # type: ignore[arg-type]
        )
        digest = instance_digest(
            q.taskset,
            q.platform,
            query={
                "kind": "test",
                "scheduler": q.scheduler,
                "adversary": q.adversary,
                "alpha": alpha,
            },
        )
        return digest, alpha

    def _canonical_test_report(
        self, q: TestQuery, digest: str
    ) -> tuple[dict[str, Any], bool, list[int]]:
        """(canonical report dict, was it cached, canonical order)."""
        order = canonical_task_order(q.taskset)
        canon = self.cache.get(digest)
        if canon is not None:
            return canon, True, order
        if self.backend is None:
            report = feasibility_test(
                q.taskset.subset(order),
                q.platform,
                q.scheduler,  # type: ignore[arg-type]
                q.adversary,  # type: ignore[arg-type]
                alpha=q.alpha,
            )
            canon = report_to_dict(report)
        else:
            report = test_feasibility_batch(
                [(q.taskset.subset(order), q.platform)],
                q.scheduler,  # type: ignore[arg-type]
                q.adversary,  # type: ignore[arg-type]
                alpha=q.alpha,
                backend=self.backend,
            )[0]
            canon = report_to_dict(report, backend=self.backend)
        self.metrics.observe_backend(self.backend or "scalar")
        self.cache.put(digest, canon)
        return canon, False, order

    # -- endpoints ----------------------------------------------------------
    def handle_test(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/test`` — one per-theorem verdict, cached."""
        q = parse_test_request(payload)
        digest, _ = self._test_digest(q)
        canon, cached, order = self._canonical_test_report(q, digest)
        return {
            "digest": digest,
            "cached": cached,
            "report": _remap_report_dict(canon, order),
        }

    def handle_partition(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/partition`` — a first-fit assignment, cached."""
        q = parse_partition_request(payload)
        digest = instance_digest(
            q.taskset,
            q.platform,
            query={"kind": "partition", "test": q.test, "alpha": q.alpha},
        )
        order = canonical_task_order(q.taskset)
        canon = self.cache.get(digest)
        cached = canon is not None
        if canon is None:
            result = first_fit_partition(
                q.taskset.subset(order), q.platform, q.test, alpha=q.alpha
            )
            canon = partition_result_to_dict(result)
            self.cache.put(digest, canon)
        return {
            "digest": digest,
            "cached": cached,
            "result": _remap_partition_dict(canon, order),
        }

    def handle_batch(self, payload: Any) -> dict[str, Any]:
        """``POST /v1/batch`` — many verdicts, cache-aware, pool-dispatched.

        Cache hits are answered inline; the misses fan out through
        :func:`repro.runner.run_trials` (in-process at ``jobs=1``, a
        process pool otherwise) and are cached for the next caller.
        Results come back in submission order regardless of ``jobs``.
        """
        queries = parse_batch_request(payload)
        digests: list[str] = []
        orders: list[list[int]] = []
        canon_reports: list[dict[str, Any] | None] = []
        misses: list[int] = []
        for q in queries:
            digest, _ = self._test_digest(q)
            order = canonical_task_order(q.taskset)
            digests.append(digest)
            orders.append(order)
            canon = self.cache.get(digest)
            canon_reports.append(canon)
            if canon is None:
                misses.append(len(canon_reports) - 1)
        # Distinct queries can share a digest (permutations of one
        # instance); evaluate each digest once.
        pending: dict[str, list[int]] = {}
        for k in misses:
            pending.setdefault(digests[k], []).append(k)
        items = [
            _BatchItem(
                taskset=queries[ks[0]].taskset.subset(orders[ks[0]]),
                platform=queries[ks[0]].platform,
                scheduler=queries[ks[0]].scheduler,
                adversary=queries[ks[0]].adversary,
                alpha=queries[ks[0]].alpha,
            )
            for ks in pending.values()
        ]
        if items:
            if self.backend is None:
                run = run_trials(
                    _evaluate_batch_item,
                    items,
                    jobs=self.jobs,
                    label="service/batch",
                )
                records = list(run.records)
            else:
                records = self._evaluate_batch_kernel(items)
            self.metrics.observe_backend(
                self.backend or "scalar", count=len(items)
            )
            for (digest, ks), canon in zip(pending.items(), records):
                self.cache.put(digest, canon)
                for k in ks:
                    canon_reports[k] = canon
        hits = len(queries) - len(misses)
        return {
            "count": len(queries),
            "cached": hits,
            "results": [
                {
                    "digest": digests[k],
                    "cached": k not in misses,
                    "report": _remap_report_dict(canon_reports[k], orders[k]),
                }
                for k in range(len(queries))
            ],
        }

    def _evaluate_batch_kernel(
        self, items: list[_BatchItem]
    ) -> list[dict[str, Any]]:
        """Batch-evaluate cache misses through the kernel backend.

        Misses are grouped by theorem config (scheduler, adversary,
        alpha) so each group becomes *one*
        :func:`~repro.kernels.test_feasibility_batch` call — within a
        group the kernels further shard by instance shape.
        """
        groups: dict[tuple[str, str, float | None], list[int]] = {}
        for t, item in enumerate(items):
            groups.setdefault(
                (item.scheduler, item.adversary, item.alpha), []
            ).append(t)
        out: list[dict[str, Any]] = [{} for _ in items]
        for (scheduler, adversary, alpha), idxs in groups.items():
            reports = test_feasibility_batch(
                [(items[t].taskset, items[t].platform) for t in idxs],
                scheduler,  # type: ignore[arg-type]
                adversary,  # type: ignore[arg-type]
                alpha=alpha,
                backend=self.backend,
            )
            for t, rep in zip(idxs, reports):
                out[t] = report_to_dict(rep, backend=self.backend)
        return out

    def handle_healthz(self) -> dict[str, Any]:
        """``GET /healthz`` — liveness plus basic identity."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self._started,
            "jobs": self.jobs,
            "backend": self.backend or "scalar",
            "cache": self.cache.stats().as_dict(),
        }

    def metrics_json(self) -> dict[str, Any]:
        """``GET /metrics`` (JSON rendering)."""
        out = self.metrics.as_dict(self.cache.stats())
        out["uptime_seconds"] = time.monotonic() - self._started
        return out

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus`` (text exposition)."""
        return self.metrics.render_prometheus(self.cache.stats())
