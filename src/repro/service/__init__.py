"""Online feasibility-query serving.

The batch CLI answers one instance per process; this package serves the
paper's Theorem I.1–I.4 verdicts (plus raw first-fit partitions) over
HTTP from a long-lived process with canonical-instance caching and
request-level metrics:

* :class:`~repro.service.app.FeasibilityService` — transport-free logic;
* :mod:`~repro.service.server` — the single-process
  ``ThreadingHTTPServer`` front-end (``repro serve`` on the CLI);
* :mod:`~repro.service.frontend` / :mod:`~repro.service.shard` /
  :mod:`~repro.service.protocol` — the sharded multi-process front end
  (``repro serve --workers N``): digest-routed worker processes, each
  owning a private verdict LRU, byte-identical responses to the
  single-process server;
* :class:`~repro.service.client.ServiceClient` — stdlib client wrapper;
* :mod:`~repro.service.cache` / :mod:`~repro.service.metrics` /
  :mod:`~repro.service.validation` — the supporting pieces.

Endpoints: ``POST /v1/test``, ``POST /v1/partition``, ``POST /v1/batch``,
``GET /healthz``, ``GET /metrics`` (JSON or ``?format=prometheus``).
See ``docs/api.md`` ("Serving") for payload schemas.
"""

from .app import FeasibilityService
from .cache import CacheStats, LRUCache
from .client import ServiceClient, ServiceError
from .frontend import ShardedFrontend, serve_sharded
from .metrics import MetricsRegistry
from .server import ReproServer, make_server, serve
from .shard import ShardCore
from .validation import (
    FieldError,
    PartitionQuery,
    TestQuery,
    ValidationError,
    parse_batch_request,
    parse_partition_request,
    parse_test_request,
)

__all__ = [
    "FeasibilityService",
    "CacheStats",
    "LRUCache",
    "ServiceClient",
    "ServiceError",
    "MetricsRegistry",
    "ReproServer",
    "ShardCore",
    "ShardedFrontend",
    "make_server",
    "serve",
    "serve_sharded",
    "FieldError",
    "PartitionQuery",
    "TestQuery",
    "ValidationError",
    "parse_batch_request",
    "parse_partition_request",
    "parse_test_request",
]
