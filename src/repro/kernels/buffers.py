"""Structure-of-arrays batch buffers and their bounded caches.

The canonical storage for every batch quantity is a flat stdlib
``array('d')`` in row-major layout — ``B`` instances by ``n`` tasks (or
``m`` machines) — addressed through ``memoryview`` slices by the
pure-Python backend and through zero-copy ``np.frombuffer`` views by the
numpy backend.  One layout, two consumers, so the two kernel backends
cannot drift structurally.

Three caches make repeat batches cheap; all are bounded LRU with
hit/miss/eviction counters (mirroring the ``core/dbf.py`` profile cache
discipline):

* **task-set entries** — per :class:`~repro.core.model.TaskSet`:
  utilizations sorted non-increasing plus the processing order, keyed by
  object identity (a strong reference is held, so an id cannot be reused
  while its entry is live);
* **platform entries** — per (speeds, alpha): the alpha-scaled speed
  row and its ``max(1, ·)`` companion for the tolerance term, keyed by
  *value* so equal-speed platforms share one entry across objects;
* **scratch buffers** — per (B, m) shard shape: the running Neumaier
  (sum, compensation) state and the RMS per-machine task counts,
  zero-filled on reuse.

Utilizations are computed via the same ``Task.utilization`` property the
scalar path reads (one division per task), so the buffered values are
bit-identical to what ``MachineState.admits`` sees.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..core.model import TaskSet

__all__ = [
    "TasksetEntry",
    "PlatformEntry",
    "ShardScratch",
    "KernelCacheStats",
    "taskset_entry",
    "platform_entry",
    "shard_scratch",
    "kernel_cache_stats",
    "reset_kernel_caches",
]


@dataclass(frozen=True)
class TasksetEntry:
    """Sorted per-task-set arrays (shared by both kernel backends)."""

    taskset: TaskSet
    #: utilizations in non-increasing order (stable on ties)
    u_sorted: array
    #: original index of the task at each sorted position
    order: tuple[int, ...]
    #: ``order`` again as a flat int64 array (zero-copy ndarray view)
    order_arr: array
    #: cached ``taskset.is_implicit`` (validated per batch, not per walk)
    implicit: bool
    #: lazily memoized zero-copy ndarray views of the two arrays above
    #: (set by the numpy backend via object.__setattr__; this module
    #: stays numpy-free)
    u_np: Any = field(default=None, compare=False)
    order_np: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class PlatformEntry:
    """Alpha-scaled platform rows (machines speed-ascending)."""

    #: ``alpha * speed`` per machine — the EDF capacity / RMS bound factor
    scaled: array
    #: ``max(1.0, alpha * speed)`` — precomputed tolerance magnitude
    scaled_max1: array
    #: lazily memoized admission-crossover thresholds (numpy backend
    #: only; see ``lockstep._crossover``): per-machine EDF row, and a
    #: dict ``n -> (n+2)*m`` flat table for RMS count-dependent caps
    thr_edf_np: Any = field(default=None, compare=False)
    thr_rms: Any = field(default=None, compare=False)


class ShardScratch:
    """Reusable mutable state for one (B, m) shard evaluation."""

    __slots__ = ("b_m", "sums", "comps", "counts", "_zeros_d", "_zeros_q")

    def __init__(self, b_m: int):
        self.b_m = b_m
        self.sums = array("d", bytes(8 * b_m))
        self.comps = array("d", bytes(8 * b_m))
        self.counts = array("q", bytes(8 * b_m))
        self._zeros_d = array("d", bytes(8 * b_m))
        self._zeros_q = array("q", bytes(8 * b_m))

    def reset(self) -> None:
        """Zero-fill every working array (slice copy, no realloc)."""
        self.sums[:] = self._zeros_d
        self.comps[:] = self._zeros_d
        self.counts[:] = self._zeros_q


@dataclass(frozen=True)
class KernelCacheStats:
    """Aggregate counters over the kernel layer's caches."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_ratio": self.hit_ratio,
        }


_TS_CACHE: dict[int, TasksetEntry] = {}
_TS_CACHE_MAX = 4096
_PF_CACHE: dict[tuple[tuple[float, ...], float], PlatformEntry] = {}
_PF_CACHE_MAX = 512
_SCRATCH: dict[int, ShardScratch] = {}
_SCRATCH_MAX = 8
_HITS = 0
_MISSES = 0
_EVICTIONS = 0


def taskset_entry(taskset: TaskSet) -> TasksetEntry:
    """The cached sorted-utilization entry for ``taskset``."""
    global _HITS, _MISSES, _EVICTIONS
    key = id(taskset)
    ent = _TS_CACHE.get(key)
    if ent is not None and ent.taskset is taskset:
        _HITS += 1
        if len(_TS_CACHE) > _TS_CACHE_MAX // 2:
            del _TS_CACHE[key]  # refresh LRU recency (matters near capacity)
            _TS_CACHE[key] = ent
        return ent
    _MISSES += 1
    u = [t.utilization for t in taskset.tasks]
    order = sorted(range(len(u)), key=u.__getitem__, reverse=True)
    ent = TasksetEntry(
        taskset=taskset,
        u_sorted=array("d", (u[i] for i in order)),
        order=tuple(order),
        order_arr=array("q", order),
        implicit=taskset.is_implicit,
    )
    if len(_TS_CACHE) >= _TS_CACHE_MAX:
        _TS_CACHE.pop(next(iter(_TS_CACHE)))
        _EVICTIONS += 1
    _TS_CACHE[key] = ent
    return ent


def platform_entry(speeds: tuple[float, ...], alpha: float) -> PlatformEntry:
    """The cached alpha-scaled rows for a speed vector."""
    global _HITS, _MISSES, _EVICTIONS
    key = (speeds, alpha)
    ent = _PF_CACHE.get(key)
    if ent is not None:
        _HITS += 1
        del _PF_CACHE[key]
        _PF_CACHE[key] = ent
        return ent
    _MISSES += 1
    scaled = array("d", (s * alpha for s in speeds))
    ent = PlatformEntry(
        scaled=scaled,
        scaled_max1=array("d", (s if s > 1.0 else 1.0 for s in scaled)),
    )
    if len(_PF_CACHE) >= _PF_CACHE_MAX:
        _PF_CACHE.pop(next(iter(_PF_CACHE)))
        _EVICTIONS += 1
    _PF_CACHE[key] = ent
    return ent


def shard_scratch(b_m: int) -> ShardScratch:
    """A zeroed scratch buffer of ``B * m`` slots (pooled by size)."""
    scratch = _SCRATCH.get(b_m)
    if scratch is None:
        scratch = ShardScratch(b_m)
        if len(_SCRATCH) >= _SCRATCH_MAX:
            _SCRATCH.pop(next(iter(_SCRATCH)))
        _SCRATCH[b_m] = scratch
    else:
        del _SCRATCH[b_m]
        _SCRATCH[b_m] = scratch
        scratch.reset()
    return scratch


def kernel_cache_stats() -> KernelCacheStats:
    """Counters aggregated over the task-set and platform caches."""
    return KernelCacheStats(
        hits=_HITS,
        misses=_MISSES,
        evictions=_EVICTIONS,
        size=len(_TS_CACHE) + len(_PF_CACHE),
        capacity=_TS_CACHE_MAX + _PF_CACHE_MAX,
    )


def reset_kernel_caches() -> None:
    """Drop every cached entry and zero the counters (test isolation)."""
    global _HITS, _MISSES, _EVICTIONS
    _TS_CACHE.clear()
    _PF_CACHE.clear()
    _SCRATCH.clear()
    _HITS = _MISSES = _EVICTIONS = 0


def as_float_list(values: Iterable[float]) -> array:
    """Copy ``values`` into canonical flat ``array('d')`` storage."""
    return array("d", values)
