"""Batch feasibility evaluation — the public ``repro.kernels`` API.

:func:`test_feasibility_batch` is the batch counterpart of
:func:`repro.core.feasibility.feasibility_test` and
:func:`first_fit_batch` of
:func:`repro.core.partition.first_fit_partition`: same semantics, same
validation, *bit-identical* reports — but evaluated shard-at-a-time over
flat preallocated buffers instead of instance-at-a-time over objects.

A **shard** is the maximal sub-batch sharing one (task count, machine
speed vector) shape; instances are grouped automatically and results
scattered back to input order, so callers can mix shapes freely.  Within
a shard the structure-of-arrays machine state lets the pure-Python
``kernel`` backend skip all per-probe object work, and the ``numpy``
backend run every instance's first-fit step as one vectorized
operation.  Empty task sets take the scalar path (nothing to batch).

Backend choice follows :func:`repro.kernels.backends.resolve_backend`:
explicit argument > ``REPRO_KERNEL_BACKEND`` > auto.  ``scalar`` is the
reference loop itself, so equivalence tests can run all three through
one entry point.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.bounds import liu_layland_bound
from ..core.certificates import partitioned_infeasibility_certificate
from ..core.feasibility import (
    _ALPHAS,
    _TEST_NAME,
    Adversary,
    FeasibilityReport,
    Scheduler,
    feasibility_test,
)
from ..core.model import Platform, TaskSet
from ..core.partition import PartitionResult, first_fit_partition
from . import pyloop
from .backends import resolve_backend
from .batchmeta import ReportMeta
from .buffers import TasksetEntry, platform_entry, taskset_entry

__all__ = ["Instance", "test_feasibility_batch", "first_fit_batch"]

#: One batch element: the task set and the platform to place it on.
Instance = tuple[TaskSet, Platform]

#: Admission tests the kernels implement: the paper's O(1)-state pair
#: plus the exact constrained-deadline QPA walk (see ``dbfloop``).
_KERNEL_TESTS = ("edf", "rms-ll", "edf-dbf")

#: The error every entry point raises on a constrained task set reaching
#: a theorem test — one string, so service error bodies cannot drift
#: between the scalar and kernel paths.
_IMPLICIT_ERROR = (
    "the theorem tests require implicit deadlines (the paper's model); "
    "for constrained deadlines partition with the 'edf-dbf' admission "
    "test instead"
)

_LL_TABLES: dict[int, list[float]] = {}
_LL_TABLES_MAX = 64


def _ll_table(n: int) -> list[float]:
    """``liu_layland_bound`` tabulated for counts ``0..n+1`` (cached)."""
    tab = _LL_TABLES.get(n)
    if tab is None:
        tab = [liu_layland_bound(c) for c in range(n + 2)]
        if len(_LL_TABLES) >= _LL_TABLES_MAX:
            _LL_TABLES.pop(next(iter(_LL_TABLES)))
        _LL_TABLES[n] = tab
    return tab


def _assemble(
    raw: pyloop.RawResult,
    ent: TasksetEntry,
    platform: Platform,
    m: int,
    alpha: float,
    test_name: str,
    meta: ReportMeta | None,
) -> PartitionResult | FeasibilityReport:
    """Expand one pure-Python raw triple into the scalar result shape."""
    chosen, failed_k, loads = raw
    order = ent.order
    success = failed_k < 0
    assignment: list[int | None] = [None] * len(order)
    machine_tasks: list[list[int]] = [[] for _ in range(m)]
    for k, j in enumerate(chosen):
        ti = order[k]
        assignment[ti] = j
        machine_tasks[j].append(ti)
    result = PartitionResult(
        success=success,
        assignment=tuple(assignment),
        machine_tasks=tuple(tuple(g) for g in machine_tasks),
        loads=tuple(loads),
        failed_task=None if success else order[failed_k],
        alpha=alpha,
        test_name=test_name,
        order=order,
    )
    if meta is None:
        return result
    certificate = None
    if not success:
        certificate = partitioned_infeasibility_certificate(
            ent.taskset, platform, result
        )
    return FeasibilityReport(
        accepted=success,
        scheduler=meta.scheduler,  # type: ignore[arg-type]
        adversary=meta.adversary,  # type: ignore[arg-type]
        alpha=alpha,
        theorem=meta.theorem,
        partition=result,
        certificate=certificate,
    )


def _run_shard(
    entries: list[TasksetEntry],
    platforms: list[Platform],
    n: int,
    speeds: tuple[float, ...],
    test_name: str,
    rms: bool,
    alpha: float,
    backend: str,
    meta: ReportMeta | None,
) -> list:
    """Evaluate one uniform (task count, speeds) shard."""
    pfe = platform_entry(speeds, alpha)
    m = len(speeds)
    if test_name == "edf-dbf":
        # QPA admission is a sequential fixed-point iteration, so both
        # kernel backends share the structure-of-arrays demand walk;
        # verdicts are memoized jointly with the scalar path
        from . import dbfloop

        raw_dbf = dbfloop.solve_shard_dbf(entries, pfe)
        return [
            _assemble(
                raw_dbf[t], entries[t], platforms[t], m, alpha, test_name, meta
            )
            for t in range(len(entries))
        ]
    ll_tab = _ll_table(n) if rms else []
    if backend == "numpy":
        from . import lockstep  # deferred: numpy is optional here

        return lockstep.evaluate_shard(
            entries, platforms, pfe, alpha, rms, test_name, ll_tab, meta
        )
    raw = pyloop.solve_shard(entries, pfe, rms, ll_tab)
    return [
        _assemble(raw[t], entries[t], platforms[t], m, alpha, test_name, meta)
        for t in range(len(entries))
    ]


def _evaluate_sharded(
    instances: list[Instance],
    test_name: str,
    alpha: float,
    backend: str,
    meta: ReportMeta | None,
    scalar_one: Callable[[TaskSet, Platform], object],
) -> list:
    """Shard by (task count, speeds), run the kernel, scatter back."""
    rms = test_name == "rms-ll"
    # uniform fast path: one platform object, one task count (the shape
    # of campaign blocks and the service's per-shard batches)
    ts0, pf0 = instances[0]
    n0 = len(ts0)
    if n0 and all(p is pf0 and len(t) == n0 for t, p in instances):
        entries = [taskset_entry(ts) for ts, _ in instances]
        platforms = [pf0] * len(instances)
        return _run_shard(
            entries,
            platforms,
            n0,
            pf0.speeds,
            test_name,
            rms,
            alpha,
            backend,
            meta,
        )
    shards: dict[tuple[int, tuple[float, ...]], list[int]] = {}
    last_pf: Platform | None = None
    last_speeds: tuple[float, ...] = ()
    for i, (ts, pf) in enumerate(instances):
        if pf is not last_pf:  # batches overwhelmingly share one platform
            last_pf = pf
            last_speeds = pf.speeds
        shards.setdefault((len(ts), last_speeds), []).append(i)
    out: list = [None] * len(instances)
    for (n, speeds), idxs in shards.items():
        if n == 0:
            # nothing to batch; the scalar path is its own reference
            for i in idxs:
                out[i] = scalar_one(*instances[i])
            continue
        results = _run_shard(
            [taskset_entry(instances[i][0]) for i in idxs],
            [instances[i][1] for i in idxs],
            n,
            speeds,
            test_name,
            rms,
            alpha,
            backend,
            meta,
        )
        for t, i in enumerate(idxs):
            out[i] = results[t]
    return out


def test_feasibility_batch(
    instances: Sequence[Instance],
    scheduler: Scheduler = "edf",
    adversary: Adversary = "partitioned",
    *,
    alpha: float | None = None,
    backend: str | None = None,
) -> list[FeasibilityReport]:
    """Run one theorem's feasibility test over a batch of instances.

    Semantically ``[feasibility_test(ts, pf, scheduler, adversary,
    alpha=alpha) for ts, pf in instances]`` — every report (verdict,
    partition, loads, certificate) is bit-identical to that loop — but
    instances sharing a (task count, speed vector) shape are evaluated
    together over flat buffers by the resolved backend.

    Parameters
    ----------
    alpha:
        Override the theorem's speed augmentation (must be positive).
    backend:
        ``scalar`` / ``kernel`` / ``numpy``; ``None`` resolves via
        ``REPRO_KERNEL_BACKEND`` then auto-detection.
    """
    items = list(instances)
    try:
        a, theorem = _ALPHAS[(scheduler, adversary)]
    except KeyError:
        raise ValueError(
            f"unknown combination scheduler={scheduler!r} "
            f"adversary={adversary!r}"
        ) from None
    if alpha is not None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        a = alpha
    # validate the whole batch up front, before any backend evaluates
    # anything: a constrained task set must fail identically (same
    # exception, same message, no partial work) on every backend
    for ts, _ in items:
        if not ts.is_implicit:
            raise ValueError(_IMPLICIT_ERROR)
    resolved = resolve_backend(backend)

    def scalar_one(ts: TaskSet, pf: Platform) -> FeasibilityReport:
        return feasibility_test(ts, pf, scheduler, adversary, alpha=alpha)

    if resolved == "scalar" or not items:
        return [scalar_one(ts, pf) for ts, pf in items]
    meta = ReportMeta(scheduler=scheduler, adversary=adversary, theorem=theorem)
    return _evaluate_sharded(
        items,
        _TEST_NAME[scheduler],
        a,
        resolved,
        meta,
        scalar_one,
    )


def first_fit_batch(
    instances: Sequence[Instance],
    test: str = "edf",
    *,
    alpha: float = 1.0,
    backend: str | None = None,
) -> list[PartitionResult]:
    """Run the §III first-fit partitioner over a batch of instances.

    Semantically ``[first_fit_partition(ts, pf, test, alpha=alpha) for
    ts, pf in instances]`` with bit-identical results, restricted to the
    admission tests the kernels implement: the O(1)-state pair (``edf``,
    ``rms-ll``) and the exact constrained-deadline QPA walk
    (``edf-dbf``); other admission tests keep the scalar partitioner.
    """
    if test not in _KERNEL_TESTS:
        raise ValueError(
            f"first_fit_batch supports the admission tests "
            f"{', '.join(repr(t) for t in _KERNEL_TESTS)}, not {test!r}; "
            f"use repro.core.partition.partition for other tests"
        )
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    items = list(instances)
    resolved = resolve_backend(backend)

    def scalar_one(ts: TaskSet, pf: Platform) -> PartitionResult:
        return first_fit_partition(ts, pf, test, alpha=alpha)

    if resolved == "scalar" or not items:
        return [scalar_one(ts, pf) for ts, pf in items]
    return _evaluate_sharded(items, test, alpha, resolved, None, scalar_one)
