"""Batched scalar-identical primitives over flat parameter arrays.

Two building blocks the batch consumers share, each a documented
bit-identical rewrite of its scalar reference:

* :func:`utilization_bounds_batch` — per task set, the pair
  ``(total utilization, Liu–Layland bound)`` that the Theorem I.1/I.2
  admission tests compare.  The reduction is ``math.fsum`` *by spec*:
  fsum is exactly rounded and therefore order-independent, so summing
  the cached utilization-descending array gives the same bits as
  ``TaskSet.total_utilization`` summing input order.  Acceleration
  applies to the parameter gather, not the reduction.
* :func:`dbf_demand_batch` — per task set, the demand bound function at
  a shared grid of interval lengths, replaying
  :func:`repro.core.dbf.dbf_taskset`'s profile arithmetic
  (scale-aware ``tol_floor((t - d)/p) + 1`` jobs, ``lt(t, d)`` deadline
  gate, fsum) element-for-element.

Both accept the same ``backend`` knob as the batch tests; the ``kernel``
and ``numpy`` paths differ only in how the per-task parameter walk is
executed, never in a floating-point result.
"""

from __future__ import annotations

import math
from array import array
from typing import Sequence

from ..core.bounds import liu_layland_bound
from ..core.dbf import dbf_taskset
from ..core.model import EPS, TaskSet
from .backends import resolve_backend
from .buffers import taskset_entry

__all__ = ["utilization_bounds_batch", "dbf_demand_batch"]


def utilization_bounds_batch(
    tasksets: Sequence[TaskSet],
    *,
    backend: str | None = None,
) -> list[tuple[float, float]]:
    """``(total_utilization, liu_layland_bound(n))`` per task set.

    Bit-identical to ``[(ts.total_utilization,
    liu_layland_bound(len(ts))) for ts in tasksets]`` on every backend.
    """
    resolved = resolve_backend(backend)
    if resolved == "scalar":
        return [
            (ts.total_utilization, liu_layland_bound(len(ts)))
            for ts in tasksets
        ]
    out: list[tuple[float, float]] = []
    for ts in tasksets:
        ent = taskset_entry(ts)
        # fsum is exactly rounded => order-independent, so the sorted
        # buffer sums to the same bits as input order
        out.append((math.fsum(ent.u_sorted), liu_layland_bound(len(ent.order))))
    return out


def dbf_demand_batch(
    tasksets: Sequence[TaskSet],
    times: Sequence[float],
    *,
    backend: str | None = None,
) -> list[list[float]]:
    """Demand bound of each task set at each interval length.

    Row ``i`` equals ``[dbf_taskset(tasksets[i].tasks, t) for t in
    times]`` bit-for-bit on every backend.
    """
    resolved = resolve_backend(backend)
    ts_list = list(tasksets)
    grid = [float(t) for t in times]
    if resolved == "scalar":
        return [
            [dbf_taskset(ts.tasks, t) for t in grid] for ts in ts_list
        ]
    out: list[list[float]] = []
    if resolved == "numpy":
        import numpy as np

        for ts in ts_list:
            if not len(ts):
                out.append([0.0] * len(grid))
                continue
            dl = np.array([t.deadline for t in ts.tasks], dtype=float)
            pr = np.array([t.period for t in ts.tasks], dtype=float)
            wc = np.array([t.wcet for t in ts.tasks], dtype=float)
            row = []
            for t in grid:
                # _DemandProfile.dbf, replayed on local arrays
                q = (t - dl) / pr
                jobs = np.floor(q + EPS * np.maximum(1.0, np.abs(q))) + 1.0
                tol = EPS * np.maximum(1.0, np.maximum(abs(t), np.abs(dl)))
                demand = np.where(dl > t + tol, 0.0, jobs * wc)
                row.append(math.fsum(demand))
            out.append(row)
        return out
    floor = math.floor
    for ts in ts_list:
        n = len(ts)
        if not n:
            out.append([0.0] * len(grid))
            continue
        dl = array("d", (t.deadline for t in ts.tasks))
        pr = array("d", (t.period for t in ts.tasks))
        wc = array("d", (t.wcet for t in ts.tasks))
        row = []
        for t in grid:
            # inlined lt(t, d) gate and tol_floor((t - d)/p), same
            # expressions as the scalar dbf()
            row.append(
                math.fsum(
                    0.0
                    if dl[i] > t + EPS * max(1.0, abs(t), dl[i])
                    else (
                        floor(
                            (q := (t - dl[i]) / pr[i])
                            + EPS * max(1.0, abs(q))
                        )
                        + 1.0
                    )
                    * wc[i]
                    for i in range(n)
                )
            )
        out.append(row)
    return out
