"""Array-backed batch feasibility kernels.

A second evaluation backend for the paper's tests: instead of running
:func:`repro.core.feasibility.feasibility_test` instance-at-a-time over
Task/TaskSet objects, batches of instances are evaluated over
preallocated flat buffers (stdlib ``array``/``memoryview`` layout, with
optional numpy acceleration) — and the results are *bit-identical* to
the scalar path, an invariant enforced by the ``backend-equivalence``
oracle check and the property suite.

Public surface:

* :func:`test_feasibility_batch` / :func:`first_fit_batch` — batch
  counterparts of the scalar test and partitioner;
* :func:`utilization_bounds_batch` / :func:`dbf_demand_batch` — batched
  scalar-identical primitives;
* :func:`resolve_backend` and friends — the ``scalar`` / ``kernel`` /
  ``numpy`` backend registry (``REPRO_KERNEL_BACKEND`` env override);
* :func:`kernel_cache_stats` / :func:`reset_kernel_caches` — the
  bounded-LRU buffer cache counters.

See ``docs/kernels.md`` for the design and the bit-identity argument.
"""

from .backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    KERNEL_BACKENDS,
    available_backends,
    available_kernel_backends,
    numpy_available,
    resolve_backend,
)
from . import batch as _batch
from . import buffers as _buffers
from .batch import Instance, first_fit_batch, test_feasibility_batch
from .buffers import KernelCacheStats, kernel_cache_stats
from .primitives import dbf_demand_batch, utilization_bounds_batch


def reset_kernel_caches() -> None:
    """Drop every kernel-layer cache and zero the counters.

    Covers the buffers layer (task-set / platform / scratch), the
    Liu–Layland tables, and — when the numpy backend has been used —
    the lockstep shard-matrix and index-vector caches.
    """
    import sys

    _buffers.reset_kernel_caches()
    _batch._LL_TABLES.clear()
    lockstep = sys.modules.get(__name__ + ".lockstep")
    if lockstep is not None:
        lockstep.reset_lockstep_caches()

__all__ = [
    "BACKENDS",
    "KERNEL_BACKENDS",
    "BACKEND_ENV_VAR",
    "Instance",
    "KernelCacheStats",
    "available_backends",
    "available_kernel_backends",
    "dbf_demand_batch",
    "first_fit_batch",
    "kernel_cache_stats",
    "numpy_available",
    "reset_kernel_caches",
    "resolve_backend",
    "test_feasibility_batch",
    "utilization_bounds_batch",
]
