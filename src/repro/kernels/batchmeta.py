"""Shared report metadata threaded through the kernel backends.

Lives in its own tiny module so :mod:`repro.kernels.batch` (the public
API and pure-Python assembler) and :mod:`repro.kernels.lockstep` (the
numpy backend, imported lazily) can both depend on it without importing
each other.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReportMeta"]


@dataclass(frozen=True)
class ReportMeta:
    """Theorem-level fields every report of one batch call shares."""

    scheduler: str
    adversary: str
    theorem: str
