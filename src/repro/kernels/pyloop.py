"""Pure-Python batch first-fit over flat stdlib-array buffers.

The ``kernel`` backend: the §III first-fit loop restructured from
objects to structure-of-arrays.  Per shard — ``B`` instances sharing one
(task count, speed vector) shape — the running Neumaier (sum,
compensation) machine state lives in one flat ``array('d')`` of
``B * m`` slots addressed through a ``memoryview``; tasks stream through
in the cached utilization-descending order.

Every float operation replays the scalar path exactly:

* the admission probe is :meth:`_NeumaierSum.peek` inlined —
  ``t = s + u``, the branch on ``s >= u`` (operands are non-negative
  utilization sums, so the scalar path's ``abs`` calls resolve to the
  same branch), then ``t + (comp + pre)``;
* the tolerant comparison is :func:`~repro.core.model.leq` inlined with
  the same ``max`` and the same evaluation order;
* placement reuses the probe's ``t``/``pre`` intermediates — the same
  additions :meth:`_NeumaierSum.add` performs on identical inputs.

No object allocation, attribute dispatch, or re-sorting happens per
probe — that (not different arithmetic) is where the speedup over the
scalar loop comes from, which is why the verdicts can be bit-identical.
"""

from __future__ import annotations

from ..core.model import EPS
from .buffers import PlatformEntry, TasksetEntry, shard_scratch

__all__ = ["solve_shard"]

#: Raw per-instance outcome: (machine per sorted position, sorted
#: position of the first failure or -1, final per-machine loads).
RawResult = tuple[list[int], int, list[float]]


def solve_shard(
    entries: list[TasksetEntry],
    pf: PlatformEntry,
    rms: bool,
    ll_tab: list[float],
) -> list[RawResult]:
    """First-fit every instance of one uniform shard.

    ``ll_tab[c]`` must hold ``liu_layland_bound(c)`` for every count up
    to the shard's task count plus one (ignored when ``rms`` is False).
    """
    S = pf.scaled
    SM = pf.scaled_max1
    m = len(S)
    scratch = shard_scratch(len(entries) * m)
    sums = memoryview(scratch.sums)
    comps = memoryview(scratch.comps)
    counts = memoryview(scratch.counts)
    eps = EPS
    out: list[RawResult] = []
    base = 0
    for ent in entries:
        chosen: list[int] = []
        failed_k = -1
        for k, u in enumerate(ent.u_sorted):
            placed = -1
            for j in range(m):
                i = base + j
                s = sums[i]
                # _NeumaierSum.peek, inlined (operands non-negative)
                t = s + u
                if s >= u:
                    pre = (s - t) + u
                else:
                    pre = (u - t) + s
                total = t + (comps[i] + pre)
                # leq(total, cap), inlined: mx = max(1, total, cap)
                if rms:
                    cap = ll_tab[counts[i] + 1] * S[j]
                    mx = total if total > cap else cap
                    if mx < 1.0:
                        mx = 1.0
                else:
                    cap = S[j]
                    sm = SM[j]
                    mx = total if total > sm else sm
                # leq() inlined verbatim for the hot loop (same max, same order)
                if total <= cap + eps * mx:
                    placed = j
                    # _NeumaierSum.add on the same inputs: reuse t and pre
                    sums[i] = t
                    comps[i] = comps[i] + pre
                    if rms:
                        counts[i] = counts[i] + 1
                    break
            if placed < 0:
                failed_k = k
                break
            chosen.append(placed)
        loads = [sums[base + j] + comps[base + j] for j in range(m)]
        out.append((chosen, failed_k, loads))
        base += m
    return out
