"""Batched DBF demand walk — first-fit with the exact QPA admission.

The ``edf-dbf`` counterpart of :mod:`repro.kernels.pyloop`: per shard,
the §III first-fit loop over structure-of-arrays machine state, with the
O(1) utilization probe replaced by the pseudo-polynomial QPA probe of
:func:`repro.core.dbf.qpa_feasible_params`.

Bit-identity with the scalar partitioner is *by construction*, not by
replication: both paths resolve every probe through the same
``_PROFILES`` cache in :mod:`repro.core.dbf`, keyed by the name-free
``(wcet, period, deadline)`` triples of the candidate machine set in
placement order.  The scalar ``_DBFState.admits`` builds
``self._tasks + [task]`` and hashes those triples; this loop hands the
triples over directly — same key, same memoized verdict object.  What
the batch path saves is everything *around* the probe: Task/TaskSet
construction, MachineState dispatch, and per-instance re-sorting — and,
across a shard, the profile cache turns repeated candidate sets (common
in campaign sweeps over nearby utilizations) into dictionary hits.

The reported loads replay :class:`~repro.core.bounds._NeumaierSum`
exactly as :mod:`repro.kernels.pyloop` does (inlined peek/add on
non-negative utilization streams), so ``PartitionResult.loads`` matches
the scalar result bit for bit.

There is no vectorized variant: QPA is an inherently sequential
fixed-point iteration, so the ``numpy`` backend routes here too — the
backends still agree verdict-for-verdict, which is what the
``backend-equivalence`` oracle check asserts.
"""

from __future__ import annotations

from ..core.dbf import TaskParams, qpa_feasible_params
from .buffers import PlatformEntry, TasksetEntry, shard_scratch
from .pyloop import RawResult

__all__ = ["solve_shard_dbf"]


def solve_shard_dbf(
    entries: list[TasksetEntry],
    pf: PlatformEntry,
) -> list[RawResult]:
    """First-fit every instance of one uniform shard under QPA admission."""
    S = pf.scaled
    m = len(S)
    scratch = shard_scratch(len(entries) * m)
    sums = memoryview(scratch.sums)
    comps = memoryview(scratch.comps)
    out: list[RawResult] = []
    base = 0
    for ent in entries:
        ts = ent.taskset
        # candidate parameters in the processing (utilization-descending)
        # order — position k here is position k of ent.u_sorted
        params = [
            (ts[i].wcet, ts[i].period, ts[i].deadline) for i in ent.order
        ]
        # per-machine assigned params in placement order: exactly the
        # list _DBFState._tasks holds on the scalar path
        machines: list[list[TaskParams]] = [[] for _ in range(m)]
        chosen: list[int] = []
        failed_k = -1
        for k, cand in enumerate(params):
            placed = -1
            for j in range(m):
                if qpa_feasible_params((*machines[j], cand), S[j]):
                    placed = j
                    machines[j].append(cand)
                    i = base + j
                    u = ent.u_sorted[k]
                    s = sums[i]
                    # _NeumaierSum.add, inlined (operands non-negative)
                    t = s + u
                    if s >= u:
                        pre = (s - t) + u
                    else:
                        pre = (u - t) + s
                    sums[i] = t
                    comps[i] = comps[i] + pre
                    break
            if placed < 0:
                failed_k = k
                break
            chosen.append(placed)
        loads = [sums[base + j] + comps[base + j] for j in range(m)]
        out.append((chosen, failed_k, loads))
        base += m
    return out
