"""Kernel backend registry and resolution.

Three backends evaluate batches of feasibility instances:

``scalar``
    The reference path: a per-instance loop over
    :func:`repro.core.feasibility.feasibility_test`.  Always available;
    every other backend is defined as bit-identical to it.
``kernel``
    Pure-Python structure-of-arrays loop over preallocated stdlib
    ``array('d')`` buffers (:mod:`repro.kernels.pyloop`).  No third-party
    dependency; replays the scalar arithmetic operation-for-operation.
``numpy``
    Vectorized lockstep first-fit over the same flat buffers viewed as
    ndarrays (:mod:`repro.kernels.lockstep`).  Optional acceleration —
    gated on numpy being importable.

Resolution order for the backend actually used: an explicit argument
wins, then the ``REPRO_KERNEL_BACKEND`` environment variable, then
``auto`` (numpy when importable, else ``kernel``).  An explicitly
requested backend is never silently substituted: asking for ``numpy``
without numpy installed raises instead of falling back, so benchmark
and equivalence results always name the code path that produced them.
"""

from __future__ import annotations

import os

__all__ = [
    "BACKENDS",
    "KERNEL_BACKENDS",
    "BACKEND_ENV_VAR",
    "numpy_available",
    "available_backends",
    "available_kernel_backends",
    "resolve_backend",
]

#: Every recognized backend name, reference path first.
BACKENDS: tuple[str, ...] = ("scalar", "kernel", "numpy")

#: The non-reference backends (the ones the equivalence oracle audits).
KERNEL_BACKENDS: tuple[str, ...] = ("kernel", "numpy")

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

try:  # numpy is a hard dependency of the repo, but the kernel layer
    import numpy  # noqa: F401  # only probed for availability

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    _HAVE_NUMPY = False


def numpy_available() -> bool:
    """Is the numpy backend usable in this process?"""
    return _HAVE_NUMPY


def available_backends() -> tuple[str, ...]:
    """Backends usable right now, reference path first."""
    return tuple(b for b in BACKENDS if b != "numpy" or _HAVE_NUMPY)


def available_kernel_backends() -> tuple[str, ...]:
    """The usable non-scalar backends (equivalence-audit targets)."""
    return tuple(b for b in KERNEL_BACKENDS if b != "numpy" or _HAVE_NUMPY)


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``None`` consults :data:`BACKEND_ENV_VAR`, then falls back to
    ``auto``.  ``auto`` picks numpy when importable, else ``kernel``.
    Explicit names are validated and never substituted.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "auto"
    backend = backend.strip().lower()
    if backend == "auto":
        return "numpy" if _HAVE_NUMPY else "kernel"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)} (or auto)"
        )
    if backend == "numpy" and not _HAVE_NUMPY:
        raise RuntimeError(
            "numpy backend requested but numpy is not importable; "
            "use backend='kernel' or install numpy"
        )
    return backend
