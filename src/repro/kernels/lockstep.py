"""Vectorized lockstep batch first-fit (the ``numpy`` backend).

All ``B`` instances of a shard run the §III first-fit loop *in
lockstep*: step ``k`` places every instance's ``k``-th
largest-utilization task simultaneously against a ``(B, m)``
structure-of-arrays machine state (running Neumaier sums and
compensations over zero-copy ndarray views of the shared flat buffers).

Bit-identity with the scalar path is an invariant, not an aspiration —
the ``backend-equivalence`` oracle check and the property suite compare
full reports.  The arithmetic preserves it operation-for-operation:

* the Neumaier *peek* is computed elementwise with the scalar operand
  order (``t = sums + u``; the ``sums >= u`` branch picks
  ``(sums - t) + u`` or ``(u - t) + sums``; operands are non-negative,
  so the scalar ``abs`` calls select the same branch);
* the tolerant ``leq`` comparison becomes ``total <= T*`` against a
  precomputed *exact crossover* per capacity (:func:`_crossover`): the
  predicate ``t <= cap + EPS * max(1, t, cap)`` is monotone in ``t``,
  so its largest admitted double is found once by bisection replaying
  the scalar float sequence — every decision is bit-identical and the
  tolerance value itself is never part of any result;
* placement *reuses* the peek's ``t``/``pre`` intermediates, the exact
  additions the scalar ``add`` performs on identical inputs;
* ``argmax`` over the admission mask returns the *first* admitting
  machine (machines are speed-ascending), matching first-fit;
* task order comes from the cached stable descending sort, identical to
  ``TaskSet.order_by_utilization`` on ties.

Two engineering choices matter for throughput on small shards: every
per-step operand is materialized at ``(B, m)`` up front (numpy
broadcasting costs ~3x per op at these sizes), and report objects are
built from template dicts via ``object.__setattr__`` rather than the
frozen-dataclass constructor.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..core.certificates import partitioned_infeasibility_certificate
from ..core.feasibility import FeasibilityReport
from ..core.model import EPS, Platform
from ..core.partition import PartitionResult
from .batchmeta import ReportMeta
from .buffers import PlatformEntry, TasksetEntry

__all__ = ["evaluate_shard", "reset_lockstep_caches"]


def reset_lockstep_caches() -> None:
    """Drop the index-vector and shard-matrix caches (test isolation)."""
    _IV_CACHE.clear()
    _SHARD_CACHE.clear()

_PR_new = PartitionResult.__new__
_FR_new = FeasibilityReport.__new__
# frozen dataclasses intercept even __dict__ assignment; this bypasses
# the guard without touching per-field __setattr__ costs
_setd = object.__setattr__

#: (B, n, m) -> (rows*m, repeat(rows, n)*m) index vectors, reused across calls
_IV_CACHE: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}
_IV_CACHE_MAX = 32


def _index_vectors(b: int, n: int, m: int) -> tuple[np.ndarray, np.ndarray]:
    key = (b, n, m)
    cached = _IV_CACHE.get(key)
    if cached is None:
        rows = np.arange(b)
        cached = (rows * m, np.repeat(rows, n) * m)
        if len(_IV_CACHE) >= _IV_CACHE_MAX:
            _IV_CACHE.pop(next(iter(_IV_CACHE)))
        _IV_CACHE[key] = cached
    return cached


def _crossover(cap: float, sm: float) -> float:
    """Largest double ``t`` with ``t <= cap + EPS * max(t, sm)``.

    The predicate replays scalar ``leq``'s exact float sequence
    (``abs`` elided: every operand is non-negative), so replacing the
    per-step tolerance computation by ``total <= T*`` keeps every
    admission *decision* bit-identical — the tolerance value itself is
    never stored, only compared.  The predicate is monotone in ``t``
    (left side slope 1, right side slope EPS << 1), so one crossover
    exists; bisection runs over the bit-ordered non-negative doubles
    and the boundary is verified before returning.
    """
    pack, unpack = struct.pack, struct.unpack

    def admit(t: float) -> bool:
        m_ = t if t > sm else sm
        # leq(t, cap) verbatim
        return t <= cap + EPS * m_

    hi = 2.0 * (cap + EPS * sm + 1.0)
    lb = 0  # t = +0.0, always admitted (cap > 0)
    hb = unpack("<q", pack("<d", hi))[0]
    while hb - lb > 1:
        mid = (lb + hb) >> 1
        if admit(unpack("<d", pack("<q", mid))[0]):
            lb = mid
        else:
            hb = mid
    t_star = unpack("<d", pack("<q", lb))[0]
    if not admit(t_star) or admit(math.nextafter(t_star, math.inf)):
        raise AssertionError(
            f"admission crossover not monotone at cap={cap!r} sm={sm!r}"
        )
    return t_star


#: shard composition -> (entries, u_sorted (b,n), u_rep (n,b,m), order2 (b,n)).
#: Multi-tester sweeps and repeated service shards re-evaluate the same
#: entry sequence at different alphas; the gathered matrices are
#: alpha-independent, so they are cached keyed by the entry identities.
#: The held entries list pins the ids against reuse (same discipline as
#: the buffers layer's id-keyed task-set cache).
_SHARD_CACHE: dict[tuple, tuple] = {}
_SHARD_CACHE_MAX = 8


def _shard_matrices(
    entries: list[TasksetEntry], b: int, n: int, m: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    key = (tuple(map(id, entries)), m)
    cached = _SHARD_CACHE.get(key)
    # list == has a C-level identity fast path per element, so a hit
    # costs one C loop; a value-equal rebuild on id reuse is also safe
    if cached is not None and cached[0] == entries:
        del _SHARD_CACHE[key]  # refresh LRU recency
        _SHARD_CACHE[key] = cached
        return cached[1], cached[2], cached[3]
    u_views = []
    append_u = u_views.append
    for e in entries:
        v = e.u_np
        if v is None:  # memoize the zero-copy views on the cached entry
            v = np.frombuffer(e.u_sorted, dtype=np.float64)
            _setd(e, "u_np", v)
            _setd(e, "order_np", np.frombuffer(e.order_arr, dtype=np.int64))
        append_u(v)
    u_sorted = np.concatenate(u_views).reshape(b, n)
    # (n, b, m): u_rep[k] is a contiguous (b, m) block of step k's task
    u_rep = np.repeat(u_sorted.T[:, :, None], m, axis=2)
    order2 = np.concatenate([e.order_np for e in entries]).reshape(b, n)
    if len(_SHARD_CACHE) >= _SHARD_CACHE_MAX:
        _SHARD_CACHE.pop(next(iter(_SHARD_CACHE)))
    _SHARD_CACHE[key] = (list(entries), u_sorted, u_rep, order2)
    return u_sorted, u_rep, order2


def evaluate_shard(
    entries: list[TasksetEntry],
    platforms: list[Platform],
    pf: PlatformEntry,
    alpha: float,
    rms: bool,
    test_name: str,
    ll_tab: list[float],
    meta: ReportMeta | None,
) -> list:
    """Evaluate one uniform shard; list of ``PartitionResult`` (when
    ``meta`` is None) or ``FeasibilityReport`` otherwise, input order."""
    b = len(entries)
    n = len(entries[0].order)
    m = len(pf.scaled)
    b_m = b * m

    # ---- admission thresholds (exact crossover per capacity) -------------
    if rms:
        thr_tab = pf.thr_rms
        if thr_tab is None:
            thr_tab = {}
            _setd(pf, "thr_rms", thr_tab)
        thr_flat = thr_tab.get(n)
        if thr_flat is None:
            scaled = pf.scaled
            thr_flat = np.empty((n + 2) * m)
            for c in range(n + 2):
                llc = ll_tab[c]
                for j in range(m):
                    # cap exactly as the scalar bound: ll(count) * speed
                    cap = llc * scaled[j]
                    thr_flat[c * m + j] = _crossover(
                        cap, cap if cap > 1.0 else 1.0
                    )
            thr_tab[n] = thr_flat
        # cidx holds ((tasks placed) + 1) * m + machine: the flat index
        # into thr_flat for the *next* admission probe on that machine
        cidx = np.empty((b, m), dtype=np.int64)
        cidx[:] = np.arange(m) + m
        cidx_f = cidx.ravel()
    else:
        thr_row = pf.thr_edf_np
        if thr_row is None:
            thr_row = np.array(
                [_crossover(c, mx) for c, mx in zip(pf.scaled, pf.scaled_max1)]
            )
            _setd(pf, "thr_edf_np", thr_row)
        thr = np.empty((b, m))
        thr[:] = thr_row

    u_sorted, u_rep, order2 = _shard_matrices(entries, b, n, m)

    sums = np.zeros((b, m))
    comps = np.zeros((b, m))
    sums_f = sums.ravel()
    comps_f = comps.ravel()
    chosen_kb = np.full((n, b), -1, dtype=np.int64)
    failed_at = np.full(b, -1, dtype=np.int64)
    active = np.ones(b, dtype=bool)
    all_active = True
    rows_m, iv_all_m = _index_vectors(b, n, m)

    # per-call workspace: every loop operation writes into one of these
    # (out=), so the step body allocates nothing at steady state
    t_ = np.empty((b, m))
    pre = np.empty((b, m))
    tmp = np.empty((b, m))
    cc = np.empty((b, m))
    admit = np.empty((b, m), dtype=bool)
    t_f = t_.ravel()
    pre_f = pre.ravel()
    admit_f = admit.ravel()

    cnz = np.count_nonzero
    nadd, nmax, nmin, nleq = np.add, np.maximum, np.minimum, np.less_equal
    k = -1
    for u, choice in zip(u_rep, chosen_kb):
        k += 1
        # Neumaier peek, elementwise and branchless: the scalar branch
        # computes (s - t) + u when s >= u else (u - t) + s, which is
        # exactly (max(s, u) - t) + min(s, u) — maximum/minimum select
        # an operand bit-for-bit, so this is the same float sequence
        nadd(sums, u, out=t_)
        nmax(sums, u, out=pre)
        pre -= t_
        nmin(sums, u, out=tmp)
        pre += tmp
        nadd(comps, pre, out=cc)
        cc += t_  # total load after placing task k
        # leq(total, cap) via the precomputed exact crossover: the
        # decision total <= T*(cap) is bit-identical to the scalar
        # tolerance comparison (see _crossover)
        if rms:
            nleq(cc, thr_flat[cidx], out=admit)
        else:
            nleq(cc, thr, out=admit)
        admit.argmax(axis=1, out=choice)  # first admitting machine
        idx = rows_m + choice
        adm = admit_f[idx]
        n_adm = cnz(adm)
        if not (all_active and n_adm == b):
            act = active
            ok = act & adm
            choice[~ok] = -1  # restore the "unplaced" marker
            nf = act & ~adm
            failed_at[nf] = k
            active = act & ~nf
            all_active = False
            if not cnz(active):
                break
            idx = idx[ok]
        # Neumaier add at the chosen machine: reuse the peek intermediates
        g = comps_f[idx]
        g += pre_f[idx]
        comps_f[idx] = g  # compensation term of the inlined Neumaier add
        sums_f[idx] = t_f[idx]
        if rms:
            c2 = cidx_f[idx]
            c2 += m
            cidx_f[idx] = c2

    sums += comps  # final compensated loads

    # ---- vectorized assembly ---------------------------------------------
    chosen2 = chosen_kb.T
    assign = np.full((b, n), -1, dtype=np.int64)
    np.put_along_axis(assign, order2, chosen2, axis=1)
    # machine_tasks via one global stable grouping sort: group id =
    # instance * m + machine, values = original task indices in placement
    # (= utilization-descending) order
    if all_active:
        jv = chosen2.ravel()
        tv = order2.ravel()
        g2 = iv_all_m + jv
    else:
        ivf, kvf = np.nonzero(chosen2 >= 0)
        jv = chosen2[ivf, kvf]
        tv = order2[ivf, kvf]
        g2 = ivf * m + jv
    perm = np.argsort(g2, kind="stable")
    tvs = tv[perm].tolist()
    group_sizes = np.bincount(g2, minlength=b_m)
    offs_arr = np.zeros(b_m + 1, dtype=np.int64)
    np.cumsum(group_sizes, out=offs_arr[1:])
    offs = offs_arr.tolist()
    groups = [tuple(tvs[a:z]) for a, z in zip(offs, offs[1:])]

    # m consecutive groups per instance, split by one C-level zip pass
    mtups = list(zip(*(iter(groups),) * m))
    atups = list(map(tuple, assign.tolist()))
    ldtups = list(map(tuple, sums.tolist()))
    out: list = []
    append = out.append
    if meta is not None:
        scheduler, adversary, theorem = meta.scheduler, meta.adversary, meta.theorem
    if all_active:  # every instance accepted: lean path
        for atup, mtup, ldtup, ent in zip(atups, mtups, ldtups, entries):
            result = _PR_new(PartitionResult)
            _setd(
                result,
                "__dict__",
                {
                    "success": True,
                    "assignment": atup,
                    "machine_tasks": mtup,
                    "loads": ldtup,
                    "failed_task": None,
                    "alpha": alpha,
                    "test_name": test_name,
                    "order": ent.order,
                },
            )
            if meta is None:
                append(result)
            else:
                rep = _FR_new(FeasibilityReport)
                _setd(
                    rep,
                    "__dict__",
                    {
                        "accepted": True,
                        "scheduler": scheduler,
                        "adversary": adversary,
                        "alpha": alpha,
                        "theorem": theorem,
                        "partition": result,
                        "certificate": None,
                    },
                )
                append(rep)
        return out

    fa = failed_at.tolist()
    for i, (atup, mtup, ldtup, ent) in enumerate(
        zip(atups, mtups, ldtups, entries)
    ):
        fk = fa[i]
        success = fk < 0
        order = ent.order
        if success:
            assignment = atup
            failed = None
        else:
            assignment = tuple(j if j >= 0 else None for j in atup)
            failed = order[fk]
        result = _PR_new(PartitionResult)
        _setd(
            result,
            "__dict__",
            {
                "success": success,
                "assignment": assignment,
                "machine_tasks": mtup,
                "loads": ldtup,
                "failed_task": failed,
                "alpha": alpha,
                "test_name": test_name,
                "order": order,
            },
        )
        if meta is None:
            append(result)
        else:
            cert = None
            if not success:
                cert = partitioned_infeasibility_certificate(
                    ent.taskset, platforms[i], result
                )
            rep = _FR_new(FeasibilityReport)
            _setd(
                rep,
                "__dict__",
                {
                    "accepted": success,
                    "scheduler": scheduler,
                    "adversary": adversary,
                    "alpha": alpha,
                    "theorem": theorem,
                    "partition": result,
                    "certificate": cert,
                },
            )
            append(rep)
    return out
