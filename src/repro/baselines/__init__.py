"""Comparison algorithms: exact adversaries, prior work, heuristics, PTAS."""

from .andersson_tovar import andersson_tovar_edf_test, andersson_tovar_rms_test
from .exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_feasible,
    exact_partitioned_rms_feasible,
)
from .heuristics import PAPER_STRATEGY, Strategy, all_strategies, run_strategy
from .ptas import PTASResult, ptas_feasibility_test

__all__ = [
    "andersson_tovar_edf_test",
    "andersson_tovar_rms_test",
    "exact_partitioned_edf_feasible",
    "exact_partitioned_feasible",
    "exact_partitioned_rms_feasible",
    "PAPER_STRATEGY",
    "Strategy",
    "all_strategies",
    "run_strategy",
    "PTASResult",
    "ptas_feasibility_test",
]
