"""Comparison algorithms: exact adversaries, prior work, heuristics, PTAS."""

from .andersson_tovar import andersson_tovar_edf_test, andersson_tovar_rms_test
from .chen_fp_dbf import (
    CHEN_DM_SPEEDUP,
    ChenFPAdmissionTest,
    chen_fp_feasible,
    chen_partition,
)
from .exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_feasible,
    exact_partitioned_rms_feasible,
)
from .han_zhao import (
    HAN_ZHAO_SPEEDUP,
    HanZhaoAdmissionTest,
    han_zhao_feasible,
    han_zhao_partition,
)
from .heuristics import PAPER_STRATEGY, Strategy, all_strategies, run_strategy
from .ptas import PTASResult, ptas_feasibility_test

__all__ = [
    "andersson_tovar_edf_test",
    "andersson_tovar_rms_test",
    "CHEN_DM_SPEEDUP",
    "ChenFPAdmissionTest",
    "chen_fp_feasible",
    "chen_partition",
    "exact_partitioned_edf_feasible",
    "exact_partitioned_feasible",
    "exact_partitioned_rms_feasible",
    "HAN_ZHAO_SPEEDUP",
    "HanZhaoAdmissionTest",
    "han_zhao_feasible",
    "han_zhao_partition",
    "PAPER_STRATEGY",
    "Strategy",
    "all_strategies",
    "run_strategy",
    "PTASResult",
    "ptas_feasibility_test",
]
