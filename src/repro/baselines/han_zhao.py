"""Han–Zhao partitioned dynamic-priority test for constrained deadlines.

Han & Zhao ("An Improved Speedup Factor for Sporadic Tasks with
Constrained Deadlines under Dynamic Priority Scheduling",
arXiv:1807.08579) analyze the deadline-monotonic first-fit partitioner
whose per-machine admission is the *linearized* demand bound — each
task's dbf replaced by its first-step linear upper bound::

    dbf*_1(t) = c + (t - d) * u      for t >= d      (0 before d)

which is exactly the ``k = 1`` member of the approximate-dbf family in
:mod:`repro.core.dbf_approx` (the Baruah–Fisher form).  Their
contribution is a sharper speedup-factor analysis of this algorithm:
any constrained-deadline set feasible on ``m`` speed-1 machines is
accepted on machines :data:`HAN_ZHAO_SPEEDUP` times faster — improving
the previous 2.6322 bound (Chen & Chakraborty) for the same algorithm
family; the known lower bound is 2.5.

This module routes the algorithm through the repo's existing machinery
on *related* (uniform) machines: admission is
:class:`~repro.core.dbf_approx.EDFApproxDemandTest` with ``k=1``, and
the partitioner is :func:`~repro.core.partition.partition` with
deadline-monotonic task order — the ``E22``/``E23`` campaigns measure
its empirical acceptance and speedup against the exact ``edf-dbf``
admission across the deadline-ratio axis.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bounds import ADMISSION_TESTS
from ..core.dbf_approx import EDFApproxDemandTest, edf_approx_demand_feasible
from ..core.model import Platform, Task, TaskSet
from ..core.partition import PartitionResult, partition

__all__ = [
    "HAN_ZHAO_SPEEDUP",
    "HanZhaoAdmissionTest",
    "han_zhao_feasible",
    "han_zhao_partition",
]

#: Han–Zhao's improved speedup factor for deadline-monotonic first-fit
#: with the linearized (k=1) demand bound on constrained-deadline sets.
HAN_ZHAO_SPEEDUP = 2.5556


class HanZhaoAdmissionTest(EDFApproxDemandTest):
    """The k=1 approximate-dbf admission under its related-work name.

    Identical mathematics to ``EDFApproxDemandTest(k=1)`` — the class
    exists so partition results carry the baseline's name and so the
    registry exposes it for the service/CLI test menus.
    """

    def __init__(self) -> None:
        super().__init__(k=1)
        self.name = "han-zhao"


def han_zhao_feasible(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """Single-machine Han–Zhao (linearized-dbf) acceptance at ``speed``."""
    return edf_approx_demand_feasible(tasks, speed, k=1)


def han_zhao_partition(
    taskset: TaskSet,
    platform: Platform,
    *,
    alpha: float = 1.0,
) -> PartitionResult:
    """Deadline-monotonic first-fit with the linearized-dbf admission.

    The Han–Zhao algorithm shape: tasks by non-decreasing relative
    deadline, machines by non-decreasing speed, first-fit.
    """
    return partition(
        taskset,
        platform,
        HanZhaoAdmissionTest(),
        alpha=alpha,
        task_order="deadline-asc",
        machine_order="speed-asc",
        fit="first",
    )


ADMISSION_TESTS.setdefault("han-zhao", HanZhaoAdmissionTest())
