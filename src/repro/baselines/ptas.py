"""A simplified Hochbaum–Shmoys-style (1+eps) dual-approximation test.

The paper cites [11] for a ``(1+eps)``-approximate partitioned
feasibility test on related machines, noting it is "quite complicated and
the running time depends exponentially on 1/eps".  We implement a
simplified variant in the same dual-approximation spirit that keeps both
soundness directions and exhibits exactly that 1/eps blow-up — serving as
the reference point of experiment E11 on small instances.

Given capacities ``s_j`` (per-machine EDF-exact, Theorem II.2) and a
parameter ``eps``, the test returns:

* **feasible** — a concrete partition valid at capacities
  ``(1+eps) s_j`` exists (and is returned); or
* **infeasible** — no partition exists at capacities ``s_j``.

Method:

1. *Sand removal*: tasks with utilization ``<= eps * s_min`` are set
   aside.  If the big items pack at capacities ``s_j`` and the grand
   total fits the grand capacity, sand can be poured greedily afterwards
   with per-machine overflow below one grain ``<= eps * s_min <= eps *
   s_j`` — so the combined packing is valid at ``(1+eps) s_j``.
2. *Geometric rounding*: big-item utilizations are rounded **down** onto
   the grid ``eps*s_min * (1+eps)^k``, leaving ``O(log_{1+eps}
   (s_max/(eps s_min)))`` distinct sizes.  Rounding down means: original
   packable => rounded packable (same capacities), and each rounded item
   understates its original by a factor ``< (1+eps)`` — so a rounded
   packing is an original packing at ``(1+eps) s_j``.
3. *Exact packing of the rounded multiset* by depth-first search over
   machines (fastest first) with memoization on (machine index, remaining
   multiplicity vector).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..core.bounds import _NeumaierSum
from ..core.model import EPS, Platform, TaskSet, leq

__all__ = ["PTASResult", "ptas_feasibility_test"]


@dataclass(frozen=True)
class PTASResult:
    """Outcome of the dual-approximation test."""

    #: True: packable at (1+eps)-augmented capacities; False: provably not
    #: packable at the original capacities.
    feasible: bool
    eps: float
    #: on success: per original task index, the machine (canonical
    #: speed-ascending platform index) it was placed on
    assignment: tuple[int, ...] | None
    #: number of distinct rounded size classes (the 1/eps cost driver)
    size_classes: int
    #: DFS states visited (for the complexity study)
    nodes: int


def ptas_feasibility_test(
    taskset: TaskSet,
    platform: Platform,
    *,
    eps: float = 0.25,
    node_limit: int = 5_000_000,
) -> PTASResult:
    """Run the (1+eps) dual-approximation feasibility test.

    Raises
    ------
    ValueError
        for non-positive eps.
    RuntimeError
        if the memoized search exceeds ``node_limit`` states (choose a
        larger eps or a smaller instance).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    n = len(taskset)
    m = len(platform)
    speeds = list(platform.speeds)  # ascending
    s_min = speeds[0]
    total_capacity = platform.total_speed
    total_util = taskset.total_utilization

    # Grand-capacity necessary condition (also what lets sand pour later).
    if total_util > total_capacity * (1.0 + EPS):
        return PTASResult(
            feasible=False, eps=eps, assignment=None, size_classes=0, nodes=0
        )

    grain = eps * s_min
    sand = [i for i in range(n) if leq(taskset[i].utilization, grain)]
    big = [i for i in range(n) if i not in set(sand)]

    # Round big items down onto the geometric grid grain * (1+eps)^k.
    def round_down(u: float) -> float:
        k = math.floor(math.log(u / grain) / math.log1p(eps))
        v = grain * (1.0 + eps) ** k
        # guard against log/pow noise putting v above u
        while v > u * (1.0 + EPS):
            k -= 1
            v = grain * (1.0 + eps) ** k
        return v

    rounded: dict[float, list[int]] = {}
    for i in big:
        v = round_down(taskset[i].utilization)
        rounded.setdefault(v, []).append(i)
    sizes = sorted(rounded, reverse=True)
    counts0 = tuple(len(rounded[v]) for v in sizes)
    k_classes = len(sizes)

    nodes = 0
    machine_order = list(range(m - 1, -1, -1))  # fastest first

    # the nonlocal `nodes` bump is a search-budget telemetry counter,
    # not a cached value: the memo lives and dies inside one
    # ptas_feasibility_test invocation, so no stale state can leak
    # across calls
    @lru_cache(maxsize=None)
    def pack(machine_pos: int, counts: tuple[int, ...]):  # repro: noqa[REP011]
        """Try to pack remaining ``counts`` into machines from
        ``machine_pos`` on; return per-machine count-vectors or None."""
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"PTAS search exceeded node_limit={node_limit}; "
                f"increase eps or shrink the instance"
            )
        if all(c == 0 for c in counts):
            return ()
        if machine_pos == m:
            return None
        cap = speeds[machine_order[machine_pos]]

        # Enumerate maximal-ish fill vectors for this machine via DFS over
        # size classes (largest first), then recurse on the remainder.
        best = None

        def fill(ci: int, counts_now: tuple[int, ...], room: float, taken: tuple[int, ...]):
            nonlocal best, nodes
            nodes += 1
            if nodes > node_limit:
                raise RuntimeError(
                    f"PTAS search exceeded node_limit={node_limit}; "
                    f"increase eps or shrink the instance"
                )
            if best is not None:
                return
            if ci == k_classes:
                rest = pack(machine_pos + 1, counts_now)
                if rest is not None:
                    best = (taken, *rest)
                return
            size = sizes[ci]
            max_fit = counts_now[ci]
            if size > 0:
                max_fit = min(max_fit, max(0, int((room + EPS * cap) // size)))
            # try taking the most first: greedy-first ordering finds
            # feasible packings quickly on loose instances
            for take in range(max_fit, -1, -1):
                nxt = list(counts_now)
                nxt[ci] -= take
                fill(
                    ci + 1,
                    tuple(nxt),
                    room - take * size,
                    taken + (take,),
                )
                if best is not None:
                    return

        fill(0, counts, cap, ())
        return best

    plan = pack(0, counts0) if k_classes else ()
    pack.cache_clear()
    if plan is None:
        return PTASResult(
            feasible=False,
            eps=eps,
            assignment=None,
            size_classes=k_classes,
            nodes=nodes,
        )

    # Materialize the big-item assignment.
    assignment: list[int] = [-1] * n
    pools = {v: list(rounded[v]) for v in sizes}
    loads = [_NeumaierSum() for _ in range(m)]
    for pos, vec in enumerate(plan):
        machine = machine_order[pos]
        for ci, take in enumerate(vec):
            for _ in range(take):
                i = pools[sizes[ci]].pop()
                assignment[i] = machine
                loads[machine].add(taskset[i].utilization)

    # Pour the sand: fill machines to their (1+eps) capacity greedily.
    for i in sand:
        u = taskset[i].utilization
        placed = False
        for j in range(m):
            if leq(loads[j].peek(u), (1.0 + eps) * speeds[j]):
                loads[j].add(u)
                assignment[i] = j
                placed = True
                break
        if not placed:  # pragma: no cover - excluded by the grand-capacity check
            return PTASResult(
                feasible=False,
                eps=eps,
                assignment=None,
                size_classes=k_classes,
                nodes=nodes,
            )

    return PTASResult(
        feasible=True,
        eps=eps,
        assignment=tuple(assignment),
        size_classes=k_classes,
        nodes=nodes,
    )
