"""Exact partitioned feasibility via branch-and-bound.

The paper's partitioned adversary is existential: "some partition of the
tasks onto the machines is feasible".  For EDF (exact per-machine test =
capacity, Theorem II.2) this is the decision version of bin packing with
variable bin sizes — strongly NP-hard (§I), so exact answers are limited
to small instances; the ratio experiments use it as ground truth there
and the constructive generator (:mod:`repro.workloads.builder`) elsewhere.

Search order and pruning:

* items (tasks) descending by utilization — large items fail fast;
* machines descending by speed;
* symmetry breaking: at each decision, identical (speed, load) machines
  are tried only once; for the RTA variant only *empty* equal-speed
  machines are deduplicated (loads do not determine RTA feasibility);
* capacity pruning: total remaining work must fit total remaining space;
* node budget: the search gives up (returns ``None``) after
  ``node_limit`` nodes rather than stalling an experiment.
"""

from __future__ import annotations

import math
from typing import Literal

from ..core.bounds import _NeumaierSum, rms_rta_feasible
from ..core.model import EPS, Platform, TaskSet, leq

__all__ = [
    "exact_partitioned_edf_feasible",
    "exact_partitioned_rms_feasible",
    "exact_partitioned_feasible",
]


def exact_partitioned_edf_feasible(
    taskset: TaskSet,
    platform: Platform,
    *,
    node_limit: int = 2_000_000,
) -> bool | None:
    """Does *any* partition meet all per-machine EDF capacities at speed 1?

    Returns True/False, or ``None`` if the node budget ran out undecided.
    """
    utils = sorted((t.utilization for t in taskset), reverse=True)
    n = len(utils)
    if n == 0:
        return True
    speeds = sorted((m.speed for m in platform), reverse=True)
    m = len(speeds)
    total = math.fsum(utils)
    if total > math.fsum(speeds) * (1.0 + EPS):
        return False
    if utils[0] > speeds[0] * (1.0 + EPS):
        return False

    # Neumaier accumulators: DFS backtracking adds and removes the same
    # utilization many times; plain += would let the error grow with
    # search depth and make the admission check depend on the visit order.
    loads = [_NeumaierSum() for _ in range(m)]
    # suffix_total[i] = sum of utils[i:]
    suffix_total = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_total[i] = suffix_total[i + 1] + utils[i]

    nodes = 0
    exhausted = False

    def dfs(i: int) -> bool:
        nonlocal nodes, exhausted
        if i == n:
            return True
        nodes += 1
        if nodes > node_limit:
            exhausted = True
            return False
        free = math.fsum(
            max(0.0, speeds[j] - loads[j].total) for j in range(m)
        )
        if suffix_total[i] > free * (1.0 + EPS):
            return False
        u = utils[i]
        tried: set[tuple[float, float]] = set()
        for j in range(m):
            key = (speeds[j], loads[j].total)
            if key in tried:
                continue
            tried.add(key)
            if leq(loads[j].peek(u), speeds[j]):
                loads[j].add(u)
                if dfs(i + 1):
                    return True
                loads[j].add(-u)
                if exhausted:
                    return False
        return False

    found = dfs(0)
    if found:
        return True
    return None if exhausted else False


def exact_partitioned_rms_feasible(
    taskset: TaskSet,
    platform: Platform,
    *,
    node_limit: int = 200_000,
) -> bool | None:
    """Does *any* partition make every machine RMS-schedulable (exact RTA)
    at speed 1?  True/False, or ``None`` on node-budget exhaustion.

    This is the right adversary when the platform is contractually locked
    to fixed-priority RM scheduling per machine.
    """
    order = sorted(range(len(taskset)), key=lambda i: -taskset[i].utilization)
    n = len(order)
    if n == 0:
        return True
    speeds = sorted((mach.speed for mach in platform), reverse=True)
    m = len(speeds)
    utils = [taskset[i].utilization for i in order]
    total = math.fsum(utils)
    if total > math.fsum(speeds) * (1.0 + EPS):
        return False

    assigned: list[list[int]] = [[] for _ in range(m)]
    loads = [_NeumaierSum() for _ in range(m)]
    suffix_total = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_total[i] = suffix_total[i + 1] + utils[i]

    nodes = 0
    exhausted = False

    def dfs(i: int) -> bool:
        nonlocal nodes, exhausted
        if i == n:
            return True
        nodes += 1
        if nodes > node_limit:
            exhausted = True
            return False
        free = math.fsum(max(0.0, speeds[j] - loads[j].total) for j in range(m))
        if suffix_total[i] > free * (1.0 + EPS):
            return False
        ti = order[i]
        task = taskset[ti]
        seen_empty_speed: set[float] = set()
        for j in range(m):
            if not assigned[j]:
                if speeds[j] in seen_empty_speed:
                    continue
                seen_empty_speed.add(speeds[j])
            # quick necessary condition before the expensive RTA
            if not leq(loads[j].peek(task.utilization), speeds[j]):
                continue
            candidate = [taskset[t] for t in assigned[j]] + [task]
            if not rms_rta_feasible(candidate, speeds[j]):
                continue
            assigned[j].append(ti)
            loads[j].add(task.utilization)
            if dfs(i + 1):
                return True
            assigned[j].pop()
            loads[j].add(-task.utilization)
            if exhausted:
                return False
        return False

    found = dfs(0)
    if found:
        return True
    return None if exhausted else False


def exact_partitioned_feasible(
    taskset: TaskSet,
    platform: Platform,
    *,
    admission: Literal["edf", "rms-rta"] = "edf",
    node_limit: int | None = None,
) -> bool | None:
    """Dispatch on the per-machine exactness notion."""
    if admission == "edf":
        return exact_partitioned_edf_feasible(
            taskset, platform, node_limit=node_limit or 2_000_000
        )
    if admission == "rms-rta":
        return exact_partitioned_rms_feasible(
            taskset, platform, node_limit=node_limit or 200_000
        )
    raise ValueError(f"unknown admission {admission!r}")
