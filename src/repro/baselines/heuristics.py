"""The partitioning-heuristic family for the ordering/fit ablation (E8).

The §III algorithm makes three design choices: process tasks by
*decreasing* utilization, machines by *increasing* speed, and place
first-fit.  Each choice is load-bearing in the analysis (the medium/fast
load lower bounds of §IV.A hinge on large tasks arriving first and slow
machines filling first).  This module enumerates the full strategy cube
so E8 can measure what each choice buys empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..core.bounds import AdmissionTest
from ..core.model import Platform, TaskSet
from ..core.partition import (
    FitRule,
    MachineOrder,
    PartitionResult,
    TaskOrder,
    partition,
)

__all__ = ["Strategy", "PAPER_STRATEGY", "all_strategies", "run_strategy"]


@dataclass(frozen=True)
class Strategy:
    """A (task order, machine order, fit rule) combination."""

    task_order: TaskOrder
    machine_order: MachineOrder
    fit: FitRule

    @property
    def label(self) -> str:
        return f"{self.task_order}/{self.machine_order}/{self.fit}"


#: The paper's choices (§III).
PAPER_STRATEGY = Strategy(
    task_order="util-desc", machine_order="speed-asc", fit="first"
)

_TASK_ORDERS: tuple[TaskOrder, ...] = ("util-desc", "util-asc", "input")
_MACHINE_ORDERS: tuple[MachineOrder, ...] = ("speed-asc", "speed-desc")
_FITS: tuple[FitRule, ...] = ("first", "best", "worst")


def all_strategies() -> list[Strategy]:
    """The full 3 x 2 x 3 strategy cube, paper's strategy first."""
    cube = [
        Strategy(t, m, f)
        for t, m, f in product(_TASK_ORDERS, _MACHINE_ORDERS, _FITS)
    ]
    cube.remove(PAPER_STRATEGY)
    return [PAPER_STRATEGY, *cube]


def run_strategy(
    strategy: Strategy,
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str = "edf",
    *,
    alpha: float = 1.0,
) -> PartitionResult:
    """Run one strategy (thin wrapper over :func:`repro.core.partition.partition`)."""
    return partition(
        taskset,
        platform,
        test,
        alpha=alpha,
        task_order=strategy.task_order,
        machine_order=strategy.machine_order,
        fit=strategy.fit,
    )
