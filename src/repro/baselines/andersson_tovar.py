"""Prior-work baselines: Andersson & Tovar's 3 / 3.41-approximate tests.

References [2] and [3] of the paper proved that the *same* §III first-fit
algorithm is a 3-approximate feasibility test with EDF per machine and a
``2 + sqrt(2) ~= 3.41``-approximate test with RMS per machine — both
against a possibly migrating (non-partitioned) adversary.  The paper under
reproduction keeps the algorithm and sharpens the analysis (2 / 2.41 vs a
partitioned adversary, 2.98 / 3.34 vs any adversary).

These wrappers run the identical algorithm at the prior-work speed
augmentations so experiment E11 can compare verdicts head-to-head: the
new tests reject strictly more genuinely-infeasible instances at the same
acceptance guarantee.
"""

from __future__ import annotations

from ..core.constants import ALPHA_EDF_PRIOR, ALPHA_RMS_PRIOR
from ..core.feasibility import FeasibilityReport, feasibility_test
from ..core.model import Platform, TaskSet

__all__ = [
    "andersson_tovar_edf_test",
    "andersson_tovar_rms_test",
]


def andersson_tovar_edf_test(
    taskset: TaskSet, platform: Platform
) -> FeasibilityReport:
    """[2]: first-fit EDF at alpha = 3, versus any adversary.

    Accepted: schedulable on 3x-faster machines.  Rejected: no scheduler
    (even migratory) meets all deadlines at original speeds.
    """
    return feasibility_test(
        taskset, platform, "edf", "any", alpha=ALPHA_EDF_PRIOR
    )


def andersson_tovar_rms_test(
    taskset: TaskSet, platform: Platform
) -> FeasibilityReport:
    """[3]: first-fit RMS (Liu–Layland) at alpha = 2 + sqrt(2) ~= 3.414,
    versus any adversary."""
    return feasibility_test(
        taskset, platform, "rms", "any", alpha=ALPHA_RMS_PRIOR
    )
