"""Chen's partitioned fixed-priority DBF baseline (FBB-FFD family).

Jian-Jia Chen ("Partitioned Multiprocessor Fixed-Priority Scheduling of
Sporadic Real-Time Tasks", arXiv:1505.04693) analyzes deadline-monotonic
partitioning with the Fisher–Baruah–Baker linear-time admission: task
``tau_k`` fits on a machine of speed ``s`` already holding the
higher-priority set ``P`` iff::

    c_k + sum_{i in P} (c_i + u_i * d_k)  <=  s * d_k

— each interfering task contributes one carried-in job (``c_i``) plus
its utilization over the window ``d_k``, a linear upper bound on the
fixed-priority request bound function.  The test is sufficient (never
accepts an unschedulable set under DM) and polynomial; Chen's
contribution is the sharpened speedup analysis of this algorithm on
constrained-deadline systems (:data:`CHEN_DM_SPEEDUP`, against the
classic ``3 - 1/m`` bound).

Order discipline: the one-shot :func:`chen_fp_feasible` sorts the set
deadline-monotonically itself, so the verdict is permutation-invariant
and the incremental :class:`_ChenState` can re-run it per probe — the
partitioner may feed tasks in any order (the §III loop feeds
utilization-descending) and incremental-vs-oneshot stays exact, which
the oracle lattice asserts.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.bounds import ADMISSION_TESTS, AdmissionTest, MachineState, _NeumaierSum
from ..core.model import EPS, Platform, Task, TaskSet, leq
from ..core.partition import PartitionResult, partition
from ..core.rta import dm_priority_order

__all__ = [
    "CHEN_DM_SPEEDUP",
    "ChenFPAdmissionTest",
    "chen_fp_feasible",
    "chen_partition",
]

#: Chen's speedup factor for deadline-monotonic partitioning with the
#: FBB-FFD linear admission on constrained-deadline task systems.
CHEN_DM_SPEEDUP = 2.84306


def chen_fp_feasible(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """FBB-FFD acceptance of a whole set on one speed-``s`` machine.

    Checks the linear bound for every task against all higher-DM-priority
    tasks; sorts deadline-monotonically itself, so the verdict is
    permutation-invariant whenever relative deadlines are distinct (DM
    ties are broken by submission position, as in ``dm_priority_order``).
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    n = len(tasks)
    if n == 0:
        return True
    total_u = math.fsum(t.utilization for t in tasks)
    if total_u > speed * (1.0 + EPS):
        return False
    order = dm_priority_order(tasks)
    for pos, k in enumerate(order):
        task = tasks[k]
        d_k = task.deadline
        demand = task.wcet + math.fsum(
            tasks[i].wcet + tasks[i].utilization * d_k
            for i in order[:pos]
        )
        if not leq(demand, speed * d_k):
            return False
    return True


class _ChenState(MachineState):
    __slots__ = ("_tasks", "_load")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._tasks: list[Task] = []
        self._load = _NeumaierSum()

    def admits(self, task: Task) -> bool:
        # full one-shot re-check: adding a task can only add interference
        # for *lower*-priority tasks, but the candidate may slot anywhere
        # in the DM order, so every task's bound is re-evaluated
        return chen_fp_feasible(self._tasks + [task], self.speed)

    def add(self, task: Task) -> None:
        self._tasks.append(task)
        self._load.add(task.utilization)

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return len(self._tasks)


class ChenFPAdmissionTest(AdmissionTest):
    """Partitioner admission using the FBB-FFD linear DM test."""

    name = "chen-dm"

    def open(self, speed: float) -> MachineState:
        return _ChenState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return chen_fp_feasible(tasks, speed)


def chen_partition(
    taskset: TaskSet,
    platform: Platform,
    *,
    alpha: float = 1.0,
) -> PartitionResult:
    """Chen's algorithm shape: deadline-monotonic first-fit, FBB-FFD
    admission, machines by non-decreasing speed."""
    return partition(
        taskset,
        platform,
        ChenFPAdmissionTest(),
        alpha=alpha,
        task_order="deadline-asc",
        machine_order="speed-asc",
        fit="first",
    )


ADMISSION_TESTS.setdefault("chen-dm", ChenFPAdmissionTest())
