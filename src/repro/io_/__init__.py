"""Serialization and table rendering."""

from .serialize import (
    load_json,
    partition_result_to_dict,
    platform_from_dict,
    platform_to_dict,
    save_json,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from .tables import format_table, rows_to_csv, write_csv

__all__ = [
    "load_json",
    "partition_result_to_dict",
    "platform_from_dict",
    "platform_to_dict",
    "save_json",
    "task_from_dict",
    "task_to_dict",
    "taskset_from_dict",
    "taskset_to_dict",
    "format_table",
    "rows_to_csv",
    "write_csv",
]
