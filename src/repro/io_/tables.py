"""Aligned-text and CSV table rendering for experiment outputs.

Every experiment emits its table/figure data as ``list[dict]`` rows;
these helpers render them for the terminal (the "paper table" the bench
prints) and for archival CSV.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "rows_to_csv", "write_csv"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned monospace table.

    Columns are the union of row keys, in first-appearance order.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        {c: _fmt(row.get(c, ""), precision) for c in columns} for row in rows
    ]
    widths = {
        c: max(len(c), *(len(r[c]) for r in rendered)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(r[c].rjust(widths[c]) for c in columns))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Rows as CSV text (union of keys, first-appearance order)."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in columns})
    return buf.getvalue()


def write_csv(path: str | Path, rows: Sequence[Mapping[str, Any]]) -> None:
    """Write rows to a CSV file."""
    Path(path).write_text(rows_to_csv(rows))
