"""JSON (de)serialization for tasksets, platforms, and results.

Round-trippable plain-dict encodings so experiments can be archived and
instances shared/reproduced.  Floats are stored exactly (repr round-trip)
— a reloaded instance produces bit-identical test verdicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.model import Machine, Platform, Task, TaskSet
from ..core.partition import PartitionResult

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "taskset_to_dict",
    "taskset_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "partition_result_to_dict",
    "save_json",
    "load_json",
]


def task_to_dict(task: Task) -> dict[str, Any]:
    """Plain-dict form of a task (deadline only when constrained)."""
    out: dict[str, Any] = {
        "wcet": task.wcet,
        "period": task.period,
        "name": task.name,
    }
    if not task.is_implicit:
        out["deadline"] = task.deadline
    return out


def task_from_dict(data: dict[str, Any]) -> Task:
    """Rebuild a task from its plain-dict form."""
    deadline = data.get("deadline")
    return Task(
        wcet=float(data["wcet"]),
        period=float(data["period"]),
        name=str(data.get("name", "")),
        deadline=float(deadline) if deadline is not None else None,
    )


def taskset_to_dict(taskset: TaskSet) -> dict[str, Any]:
    """Plain-dict form of a task set."""
    return {"tasks": [task_to_dict(t) for t in taskset]}


def taskset_from_dict(data: dict[str, Any]) -> TaskSet:
    """Rebuild a task set from its plain-dict form."""
    return TaskSet(task_from_dict(d) for d in data["tasks"])


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """Plain-dict form of a platform."""
    return {
        "machines": [
            {"speed": m.speed, "name": m.name} for m in platform
        ]
    }


def platform_from_dict(data: dict[str, Any]) -> Platform:
    """Rebuild a platform from its plain-dict form."""
    return Platform(
        Machine(speed=float(d["speed"]), name=str(d.get("name", "")))
        for d in data["machines"]
    )


def partition_result_to_dict(result: PartitionResult) -> dict[str, Any]:
    """One-way export of a partition verdict (results archive)."""
    return {
        "success": result.success,
        "assignment": list(result.assignment),
        "loads": list(result.loads),
        "failed_task": result.failed_task,
        "alpha": result.alpha,
        "test_name": result.test_name,
        "order": list(result.order),
    }


def save_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Write a payload dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON payload dict."""
    return json.loads(Path(path).read_text())
