"""JSON (de)serialization for tasksets, platforms, and results.

Round-trippable plain-dict encodings so experiments can be archived and
instances shared/reproduced.  Floats are stored exactly (repr round-trip)
— a reloaded instance produces bit-identical test verdicts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from ..core.certificates import FailureCertificate
from ..core.model import Machine, Platform, Task, TaskSet
from ..core.partition import PartitionResult

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "taskset_to_dict",
    "taskset_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "partition_result_to_dict",
    "partition_result_from_dict",
    "certificate_to_dict",
    "certificate_from_dict",
    "report_to_dict",
    "report_from_dict",
    "canonical_task_order",
    "canonical_instance",
    "instance_digest",
    "shard_for_digest",
    "save_json",
    "load_json",
]

#: Hex digits of the canonical digest used as the shard routing key.
#: 8 digits = 32 bits — astronomically more key space than any worker
#: count, while leaving the rest of the digest free to change without
#: moving an instance between shards.
SHARD_KEY_HEX_DIGITS = 8


def task_to_dict(task: Task) -> dict[str, Any]:
    """Plain-dict form of a task (deadline only when constrained)."""
    out: dict[str, Any] = {
        "wcet": task.wcet,
        "period": task.period,
        "name": task.name,
    }
    if not task.is_implicit:
        out["deadline"] = task.deadline
    return out


def task_from_dict(data: dict[str, Any]) -> Task:
    """Rebuild a task from its plain-dict form."""
    deadline = data.get("deadline")
    return Task(
        wcet=float(data["wcet"]),
        period=float(data["period"]),
        name=str(data.get("name", "")),
        deadline=float(deadline) if deadline is not None else None,
    )


def taskset_to_dict(taskset: TaskSet) -> dict[str, Any]:
    """Plain-dict form of a task set."""
    return {"tasks": [task_to_dict(t) for t in taskset]}


def taskset_from_dict(data: dict[str, Any]) -> TaskSet:
    """Rebuild a task set from its plain-dict form."""
    return TaskSet(task_from_dict(d) for d in data["tasks"])


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """Plain-dict form of a platform."""
    return {
        "machines": [
            {"speed": m.speed, "name": m.name} for m in platform
        ]
    }


def platform_from_dict(data: dict[str, Any]) -> Platform:
    """Rebuild a platform from its plain-dict form."""
    return Platform(
        Machine(speed=float(d["speed"]), name=str(d.get("name", "")))
        for d in data["machines"]
    )


def partition_result_to_dict(result: PartitionResult) -> dict[str, Any]:
    """Plain-dict form of a partition verdict."""
    return {
        "success": result.success,
        "assignment": list(result.assignment),
        "machine_tasks": [list(ts) for ts in result.machine_tasks],
        "loads": list(result.loads),
        "failed_task": result.failed_task,
        "alpha": result.alpha,
        "test_name": result.test_name,
        "order": list(result.order),
    }


def partition_result_from_dict(data: dict[str, Any]) -> PartitionResult:
    """Rebuild a partition verdict from its plain-dict form.

    ``machine_tasks`` is reconstructed from ``assignment`` + ``order``
    when absent (archives written before it was exported).
    """
    assignment = tuple(
        int(a) if a is not None else None for a in data["assignment"]
    )
    order = tuple(int(i) for i in data["order"])
    loads = tuple(float(x) for x in data["loads"])
    if "machine_tasks" in data:
        machine_tasks = tuple(
            tuple(int(i) for i in ts) for ts in data["machine_tasks"]
        )
    else:
        per_machine: list[list[int]] = [[] for _ in loads]
        for i in order:
            if assignment[i] is not None:
                per_machine[assignment[i]].append(i)
        machine_tasks = tuple(tuple(ts) for ts in per_machine)
    failed = data["failed_task"]
    return PartitionResult(
        success=bool(data["success"]),
        assignment=assignment,
        machine_tasks=machine_tasks,
        loads=loads,
        failed_task=int(failed) if failed is not None else None,
        alpha=float(data["alpha"]),
        test_name=str(data["test_name"]),
        order=order,
    )


def certificate_to_dict(cert: FailureCertificate) -> dict[str, Any]:
    """Plain-dict form of an infeasibility certificate.

    ``certifies`` is included for consumers (it is the point of the
    certificate) but recomputed, not trusted, on reload.
    """
    return {
        "w_n": cert.w_n,
        "prefix_utilization": cert.prefix_utilization,
        "eligible_machines": list(cert.eligible_machines),
        "eligible_capacity": cert.eligible_capacity,
        "alpha": cert.alpha,
        "test_name": cert.test_name,
        "certifies": cert.certifies,
    }


def certificate_from_dict(data: dict[str, Any]) -> FailureCertificate:
    """Rebuild an infeasibility certificate from its plain-dict form."""
    return FailureCertificate(
        w_n=float(data["w_n"]),
        prefix_utilization=float(data["prefix_utilization"]),
        eligible_machines=tuple(int(j) for j in data["eligible_machines"]),
        eligible_capacity=float(data["eligible_capacity"]),
        alpha=float(data["alpha"]),
        test_name=str(data["test_name"]),
    )


def report_to_dict(
    report: "FeasibilityReport", *, backend: str | None = None
) -> dict[str, Any]:
    """Plain-dict form of a :class:`~repro.core.feasibility.FeasibilityReport`.

    This is *the* JSON schema for feasibility verdicts — the CLI ``test
    --json`` output and every ``repro.service`` response use it, so the
    two never drift apart.  ``guarantee`` is derived text, ignored by
    :func:`report_from_dict`.

    ``backend`` records which evaluation backend produced the report
    (``scalar`` / ``kernel`` / ``numpy``); it is provenance only — the
    key is omitted when ``None`` and ignored by :func:`report_from_dict`,
    so reports from different backends remain dict-identical apart from
    it (the ``backend-equivalence`` oracle check relies on that).
    """
    out: dict[str, Any] = {
        "accepted": report.accepted,
        "scheduler": report.scheduler,
        "adversary": report.adversary,
        "alpha": report.alpha,
        "theorem": report.theorem,
        "guarantee": report.guarantee,
        "partition": partition_result_to_dict(report.partition),
        "certificate": (
            certificate_to_dict(report.certificate)
            if report.certificate is not None
            else None
        ),
    }
    if backend is not None:
        out["backend"] = backend
    return out


def report_from_dict(data: dict[str, Any]) -> "FeasibilityReport":
    """Rebuild a feasibility report from its plain-dict form."""
    from ..core.feasibility import FeasibilityReport

    cert = data.get("certificate")
    return FeasibilityReport(
        accepted=bool(data["accepted"]),
        scheduler=data["scheduler"],
        adversary=data["adversary"],
        alpha=float(data["alpha"]),
        theorem=str(data["theorem"]),
        partition=partition_result_from_dict(data["partition"]),
        certificate=certificate_from_dict(cert) if cert is not None else None,
    )


# -- Canonical instances and digests ----------------------------------------
#
# Two submissions that differ only in task order, machine order, or names
# describe the same feasibility instance: the §III first-fit algorithm
# sorts tasks by utilization and the Platform constructor sorts machines
# by speed, so the verdict cannot depend on either.  The canonical form
# fixes one representative per equivalence class; its digest keys the
# service's verdict cache.


def canonical_task_order(taskset: TaskSet) -> list[int]:
    """Task indices in canonical order.

    Primary key: utilization descending — the order first-fit processes
    tasks in.  Ties (exactly equal utilization) are broken by period,
    wcet, then deadline, all ascending, so the order depends only on the
    tasks' numeric parameters, never on their submission order.
    """
    return sorted(
        range(len(taskset)),
        key=lambda i: (
            -taskset[i].utilization,
            taskset[i].period,
            taskset[i].wcet,
            taskset[i].deadline,
        ),
    )


def canonical_instance(
    taskset: TaskSet, platform: Platform
) -> dict[str, Any]:
    """Order-invariant, name-free plain form of (taskset, platform).

    Tasks appear as ``[wcet, period, deadline]`` triples in canonical
    order; machines as their sorted speeds.  Floats are kept exact
    (``json.dumps`` emits the shortest round-trip ``repr``), so two
    instances canonicalize identically iff their parameters are
    bit-identical.
    """
    order = canonical_task_order(taskset)
    return {
        "tasks": [
            [taskset[i].wcet, taskset[i].period, taskset[i].deadline]
            for i in order
        ],
        "speeds": sorted(m.speed for m in platform),
    }


def instance_digest(
    taskset: TaskSet,
    platform: Platform,
    *,
    query: Mapping[str, Any] | None = None,
) -> str:
    """SHA-256 hex digest of the canonical instance (plus query params).

    Invariant under task/machine permutation and renaming; sensitive to
    any change of wcet, period, deadline, or speed; stable across
    interpreter runs and platforms (pure function of the canonical JSON
    byte string — no ``hash()`` involved).
    """
    payload = canonical_instance(taskset, platform)
    if query:
        payload["query"] = dict(query)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def shard_for_digest(digest: str, shards: int) -> int:
    """Owning shard for a canonical instance digest (``0 <= k < shards``).

    The key is the leading :data:`SHARD_KEY_HEX_DIGITS` hex digits of
    the digest reduced modulo the shard count, so (a) two requests for
    the same canonical instance — under any task/machine permutation or
    renaming — always land on the same shard, which is what lets each
    shard own a private verdict cache with no cross-process
    coordination, and (b) SHA-256 uniformity spreads distinct instances
    evenly across shards for every shard count.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    return int(digest[:SHARD_KEY_HEX_DIGITS], 16) % shards


def save_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Write a payload dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON payload dict."""
    return json.loads(Path(path).read_text())
