"""Workload profiles: corpus shape, request mix, and access pattern.

A profile pins everything about a load run except the target server:
the instance corpus (drawn from the repo's own workload generators at a
fixed seed), the loop mode (closed with N in-flight clients, or open
with a seeded arrival process), and the *access pattern* over the
corpus.  The access pattern is where the sharded architecture's
headline effect lives:

* ``scan`` — each client walks the corpus cyclically from a staggered
  start.  With a working set larger than one worker's LRU this is the
  canonical LRU-killer (a cyclic scan over ``W > C`` entries hits 0%),
  while N workers hold the set in *aggregate* — per-shard caches add
  capacity, not just isolation.
* ``zipf`` — skewed popularity.  Digest-prefix routing sends hot keys
  to fixed shards; this pattern is how per-shard imbalance is measured
  rather than hand-waved.

Corpus draws and request sequencing both use explicitly seeded NumPy
generators derived from the profile seed (:func:`stream_seed`), so two
runs of a profile issue byte-identical request streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..io_.serialize import platform_to_dict, taskset_to_dict
from ..workloads.builder import generate_taskset
from ..workloads.platforms import geometric_platform

__all__ = [
    "LoadProfile",
    "PROFILES",
    "build_corpus",
    "request_indices",
    "stream_seed",
    "zipf_draws",
]


def stream_seed(seed: int, stream: int, client: int = 0) -> int:
    """Derive an integer sub-seed for one (stream, client) pair.

    ``random.Random`` seeded with a tuple falls back to ``hash()``,
    which ``PYTHONHASHSEED`` randomizes across processes — an int
    derivation keeps request sequences replayable everywhere.
    """
    return (seed * 1_000_003 + stream) * 1_000_003 + client


@dataclass(frozen=True)
class LoadProfile:
    """One named, fully-pinned load shape."""

    name: str
    description: str
    #: "closed" (fixed in-flight clients) or "open" (seeded arrivals)
    mode: str
    #: corpus: W distinct instances of n tasks on m machines
    working_set: int
    n_tasks: int
    n_machines: int
    #: total utilization as a fraction of platform capacity
    stress: float
    scheduler: str = "rms"
    adversary: str = "partitioned"
    #: access pattern over the corpus: "scan" or "zipf"
    access: str = "scan"
    zipf_s: float = 1.1
    #: closed-loop: concurrent clients
    concurrency: int = 8
    #: open-loop: arrival process and rates (req/s)
    arrivals: str = "poisson"
    rate: float = 200.0
    burst_rate: float = 800.0
    duration: float = 10.0
    #: corpus-draw seed (request sequencing derives per-client seeds)
    seed: int = 20160516

    def with_overrides(
        self,
        *,
        duration: float | None = None,
        concurrency: int | None = None,
        rate: float | None = None,
        seed: int | None = None,
    ) -> "LoadProfile":
        """CLI-facing overrides; everything else stays pinned."""
        out = self
        if duration is not None:
            out = replace(out, duration=duration)
        if concurrency is not None:
            out = replace(out, concurrency=concurrency)
        if rate is not None:
            out = replace(out, rate=rate)
        if seed is not None:
            out = replace(out, seed=seed)
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "mode": self.mode,
            "access": self.access,
            "working_set": self.working_set,
            "n_tasks": self.n_tasks,
            "n_machines": self.n_machines,
            "stress": self.stress,
            "scheduler": self.scheduler,
            "adversary": self.adversary,
            "concurrency": self.concurrency,
            "arrivals": self.arrivals if self.mode == "open" else None,
            "rate": self.rate if self.mode == "open" else None,
            "duration": self.duration,
            "seed": self.seed,
        }


#: The pinned profile set.  ``closed-warm`` is the headline: its working
#: set (512) deliberately exceeds the benchmark's per-worker cache
#: capacity, so single-worker throughput is miss-bound while the
#: aggregate capacity of >= 2 shards holds the whole set — the
#: architectural effect ``BENCH_service.json`` tracks.
PROFILES: dict[str, LoadProfile] = {
    p.name: p
    for p in (
        LoadProfile(
            name="closed-warm",
            description=(
                "Closed loop, staggered cyclic scan over a working set "
                "sized to overflow one worker's LRU but fit the "
                "aggregate of two — measures cache-capacity scaling."
            ),
            mode="closed",
            working_set=512,
            # Instances big enough that evaluation clearly dominates
            # the serve path (~5.4ms rms/partitioned vs ~1.7ms
            # parse+digest): the cache-capacity effect being measured
            # must not drown in per-request overhead.
            n_tasks=128,
            n_machines=64,
            stress=0.85,
            concurrency=8,
            duration=10.0,
        ),
        LoadProfile(
            name="closed-hot",
            description=(
                "Closed loop over a tiny working set that fits every "
                "cache — isolates pure serving overhead (routing, JSON, "
                "frame hop) from evaluation cost."
            ),
            mode="closed",
            working_set=64,
            n_tasks=32,
            n_machines=32,
            stress=0.85,
            concurrency=8,
            duration=10.0,
        ),
        LoadProfile(
            name="open-poisson",
            description=(
                "Open loop, Poisson arrivals at a fixed rate — exposes "
                "queueing delay a closed loop hides."
            ),
            mode="open",
            working_set=256,
            n_tasks=32,
            n_machines=32,
            stress=0.85,
            arrivals="poisson",
            rate=200.0,
            duration=10.0,
        ),
        LoadProfile(
            name="open-burst",
            description=(
                "Open loop, periodic surges at 4x the base rate — "
                "stresses queue depth and drain behaviour."
            ),
            mode="open",
            working_set=256,
            n_tasks=32,
            n_machines=32,
            stress=0.85,
            arrivals="burst",
            rate=150.0,
            burst_rate=600.0,
            duration=10.0,
        ),
        LoadProfile(
            name="zipf-skew",
            description=(
                "Closed loop, Zipf-skewed popularity — measures per-"
                "shard load imbalance under digest routing."
            ),
            mode="closed",
            working_set=512,
            n_tasks=32,
            n_machines=32,
            stress=0.85,
            access="zipf",
            concurrency=8,
            duration=10.0,
        ),
        LoadProfile(
            name="smoke",
            description=(
                "Tiny closed-loop run for CI: small instances, small "
                "working set, short duration."
            ),
            mode="closed",
            working_set=16,
            n_tasks=8,
            n_machines=4,
            stress=0.8,
            concurrency=2,
            duration=2.0,
        ),
    )
}


def build_corpus(profile: LoadProfile) -> list[bytes]:
    """Pre-serialized ``/v1/test`` request bodies, one per corpus entry.

    Bodies are encoded once, up front: the load loop must not spend its
    single shared core re-serializing JSON while the server under test
    is being timed.  All entries share one platform (heterogeneity
    ratio 4, the paper's motivating shape); the task sets differ.
    """
    rng = np.random.default_rng(profile.seed)
    platform = geometric_platform(profile.n_machines, 4.0)
    platform_dict = platform_to_dict(platform)
    total = profile.stress * platform.total_speed
    out: list[bytes] = []
    for _ in range(profile.working_set):
        taskset = generate_taskset(
            rng,
            profile.n_tasks,
            total,
            method="randfixedsum",
            u_max=profile.stress * platform.fastest_speed,
        )
        body = {
            "taskset": taskset_to_dict(taskset),
            "platform": platform_dict,
            "scheduler": profile.scheduler,
            "adversary": profile.adversary,
        }
        out.append(json.dumps(body, sort_keys=True).encode("utf-8"))
    return out


def request_indices(
    profile: LoadProfile, client: int, count: int
) -> list[int]:
    """The corpus indices client ``client`` issues, in order.

    ``scan``: cyclic walk from a start staggered by client index, so the
    union of all clients continuously touches the whole working set in
    a pattern with zero per-key reuse distance below ``W`` — the
    adversarial case for a single bounded LRU.

    ``zipf``: independent Zipf(``zipf_s``) draws over the corpus, seeded
    per client; rank 0 is the hottest key.
    """
    w = profile.working_set
    if profile.access == "scan":
        clients = max(1, profile.concurrency)
        start = (client * w) // clients
        return [(start + k) % w for k in range(count)]
    if profile.access == "zipf":
        rng = np.random.default_rng(stream_seed(profile.seed, 1, client))
        return zipf_draws(rng, w, profile.zipf_s, count)
    raise ValueError(f"unknown access pattern {profile.access!r}")


def zipf_draws(
    rng: np.random.Generator, w: int, s: float, count: int
) -> list[int]:
    """``count`` Zipf(``s``) ranks over ``[0, w)``; rank 0 is hottest."""
    weights = 1.0 / np.arange(1.0, w + 1.0) ** s
    probs = weights / weights.sum()
    return rng.choice(w, size=count, p=probs).tolist()
