"""A deliberately cheap keep-alive HTTP client.

The load generator shares one machine (often one core) with the server
it is measuring, so every cycle it spends is stolen from the thing
being timed.  ``http.client`` and ``urllib`` burn those cycles on
header objects and string churn; this client does the minimum: one
persistent socket, a pre-built request preamble, and a parser that
reads exactly the status line, a ``Content-Length`` header, and the
body.  That is the entire HTTP/1.1 subset both repro servers speak —
they always send ``Content-Length``, never chunked encoding.
"""

from __future__ import annotations

import socket

__all__ = ["HttpClient", "HttpError"]


class HttpError(Exception):
    """Transport-level failure (connect, send, or malformed response)."""


class HttpClient:
    """One keep-alive connection to one server."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buf = b""

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._buf = b""

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError as exc:
                raise HttpError(f"connect failed: {exc}") from exc
            self._buf = b""
        return self._sock

    def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """One request → ``(status, body bytes)``.

        Retries exactly once on a broken keep-alive socket (the server
        legitimately closes idle connections; the second attempt is on
        a fresh one).
        """
        try:
            return self._request_once(method, path, body)
        except HttpError:
            self.close()
            return self._request_once(method, path, body)

    def _request_once(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, bytes]:
        sock = self._connect()
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            sock.sendall(head + payload)
            return self._read_response(sock)
        except OSError as exc:
            self.close()
            raise HttpError(f"request failed: {exc}") from exc

    def _read_line(self, sock: socket.socket) -> bytes:
        while b"\r\n" not in self._buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise HttpError("server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\r\n", 1)
        return line

    def _read_exact(self, sock: socket.socket, n: int) -> bytes:
        while len(self._buf) < n:
            chunk = sock.recv(65536)
            if not chunk:
                raise HttpError("server closed mid-body")
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def _read_response(self, sock: socket.socket) -> tuple[int, bytes]:
        status_line = self._read_line(sock)
        parts = status_line.split(b" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise HttpError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        length: int | None = None
        close = False
        while True:
            line = self._read_line(sock)
            if not line:
                break
            key, _, value = line.partition(b":")
            key = key.strip().lower()
            if key == b"content-length":
                length = int(value.strip())
            elif key == b"connection" and value.strip().lower() == b"close":
                close = True
        if length is None:
            raise HttpError("response has no Content-Length")
        body = self._read_exact(sock, length)
        if close:
            self.close()
        return status, body
