"""Closed- and open-loop load drivers and their report.

Two drivers, one report shape:

* **closed loop** — ``concurrency`` clients, each with one keep-alive
  connection, each issuing its next request the moment the previous
  response lands.  Throughput is the measurement; the loop adapts to
  the server, so latency here is service time, not queueing delay.
* **open loop** — requests are sent at pre-drawn arrival times
  regardless of responses.  Latency here *includes* queueing, and the
  report additionally tracks send lateness (how far behind schedule
  the generator itself fell — nonzero lateness means the measured
  tail is a lower bound).

Timing discipline: ``time.monotonic`` anchors schedules and deadlines,
``time.perf_counter`` measures per-request latency — never wall-clock
(the repo-wide REP003 rule, which applies to measurement code too: a
clock step mid-run must not be able to corrupt an archived number).
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from .arrivals import burst_arrivals, poisson_arrivals
from .client import HttpClient, HttpError
from .profiles import LoadProfile, build_corpus, stream_seed, zipf_draws

__all__ = ["LoadReport", "percentile", "run_load"]


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of pre-sorted data."""
    if not sorted_samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[rank - 1]


@dataclass
class LoadReport:
    """Everything one load run measured, JSON-ready."""

    profile: dict[str, Any]
    target: str
    duration_seconds: float
    requests: int
    errors: int
    rps: float
    latency_ms: dict[str, float]
    #: open loop only: offered vs sent and generator lateness
    open_loop: dict[str, Any] | None = None
    #: the server's /healthz after the run (architecture, cache state)
    server: dict[str, Any] | None = None
    status_counts: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "target": self.target,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "errors": self.errors,
            "rps": self.rps,
            "latency_ms": self.latency_ms,
            "open_loop": self.open_loop,
            "server": self.server,
            "status_counts": self.status_counts,
        }

    def summary(self) -> str:
        lat = self.latency_ms
        line = (
            f"{self.profile.get('name', '?')}: {self.requests} requests "
            f"in {self.duration_seconds:.2f}s = {self.rps:.1f} req/s, "
            f"p50 {lat.get('p50', 0.0):.2f}ms / p99 {lat.get('p99', 0.0):.2f}ms"
        )
        if self.errors:
            line += f", {self.errors} error(s)"
        if self.open_loop is not None:
            line += (
                f" (offered {self.open_loop['offered']}, lateness p99 "
                f"{self.open_loop['lateness_ms']['p99']:.2f}ms)"
            )
        return line


@dataclass
class _ClientTally:
    """One driver thread's measurements (merged after join)."""

    latencies: list[float] = field(default_factory=list)
    statuses: dict[int, int] = field(default_factory=dict)
    errors: int = 0
    lateness: list[float] = field(default_factory=list)

    def record(self, status: int, seconds: float) -> None:
        self.latencies.append(seconds)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status != 200:
            self.errors += 1


def _index_stream(profile: LoadProfile, client: int) -> Iterator[int]:
    """Lazy, unbounded version of :func:`request_indices`."""
    if profile.access == "scan":
        w = profile.working_set
        clients = max(1, profile.concurrency)
        k = (client * w) // clients
        while True:
            yield k
            k = (k + 1) % w
    else:
        rng = np.random.default_rng(stream_seed(profile.seed, 1, client))
        while True:
            yield from zipf_draws(rng, profile.working_set, profile.zipf_s, 256)


def _closed_worker(
    host: str,
    port: int,
    path: str,
    corpus: list[bytes],
    profile: LoadProfile,
    client_index: int,
    deadline: float,
    tally: _ClientTally,
) -> None:
    stream = _index_stream(profile, client_index)
    with HttpClient(host, port) as http:
        while time.monotonic() < deadline:
            body = corpus[next(stream)]
            t0 = time.perf_counter()
            try:
                status, _ = http.request("POST", path, body)
            except HttpError:
                tally.errors += 1
                continue
            tally.record(status, time.perf_counter() - t0)


def _open_worker(
    host: str,
    port: int,
    path: str,
    corpus: list[bytes],
    schedule: list[tuple[float, int]],
    start: float,
    tally: _ClientTally,
) -> None:
    """Send each assigned (offset, corpus index) at its scheduled time."""
    with HttpClient(host, port) as http:
        for offset, idx in schedule:
            now = time.monotonic()
            due = start + offset
            if now < due:
                time.sleep(due - now)
            tally.lateness.append(max(0.0, time.monotonic() - due))
            t0 = time.perf_counter()
            try:
                status, _ = http.request("POST", path, corpus[idx])
            except HttpError:
                tally.errors += 1
                continue
            tally.record(status, time.perf_counter() - t0)


def _latency_summary(latencies: list[float]) -> dict[str, float]:
    samples = sorted(latencies)
    return {
        "p50": percentile(samples, 50) * 1000.0,
        "p90": percentile(samples, 90) * 1000.0,
        "p99": percentile(samples, 99) * 1000.0,
        "mean": (sum(samples) / len(samples) * 1000.0) if samples else 0.0,
        "max": (samples[-1] * 1000.0) if samples else 0.0,
    }


def _fetch_healthz(host: str, port: int) -> dict[str, Any] | None:
    try:
        with HttpClient(host, port, timeout=5.0) as http:
            status, body = http.request("GET", "/healthz")
        if status != 200:
            return None
        return json.loads(body)
    except (HttpError, json.JSONDecodeError, OSError):
        return None


def run_load(
    host: str,
    port: int,
    profile: LoadProfile,
    *,
    corpus: list[bytes] | None = None,
    path: str = "/v1/test",
) -> LoadReport:
    """Drive ``profile`` against ``host:port`` and measure it.

    ``corpus`` may be passed in to amortize corpus construction across
    runs (the benchmark reuses one corpus for every worker count — the
    comparison would be void otherwise).
    """
    if corpus is None:
        corpus = build_corpus(profile)
    tallies: list[_ClientTally] = []
    threads: list[threading.Thread] = []
    offered = 0
    if profile.mode == "closed":
        start = time.monotonic()
        deadline = start + profile.duration
        for c in range(profile.concurrency):
            tally = _ClientTally()
            tallies.append(tally)
            threads.append(
                threading.Thread(
                    target=_closed_worker,
                    args=(host, port, path, corpus, profile, c, deadline, tally),
                    name=f"loadgen-closed-{c}",
                )
            )
    elif profile.mode == "open":
        rng = np.random.default_rng(stream_seed(profile.seed, 2))
        if profile.arrivals == "poisson":
            offsets = poisson_arrivals(rng, profile.rate, profile.duration)
        elif profile.arrivals == "burst":
            offsets = burst_arrivals(
                rng, profile.rate, profile.burst_rate, profile.duration
            )
        else:
            raise ValueError(f"unknown arrival process {profile.arrivals!r}")
        idx_rng = np.random.default_rng(stream_seed(profile.seed, 3))
        indices = idx_rng.integers(profile.working_set, size=len(offsets))
        schedule = [
            (offset, int(idx)) for offset, idx in zip(offsets, indices)
        ]
        offered = len(schedule)
        # Partition arrivals round-robin across enough senders that one
        # slow response cannot stall the whole schedule.
        senders = max(8, profile.concurrency)
        buckets: list[list[tuple[float, int]]] = [[] for _ in range(senders)]
        for k, entry in enumerate(schedule):
            buckets[k % senders].append(entry)
        start = time.monotonic()
        for c, bucket in enumerate(buckets):
            tally = _ClientTally()
            tallies.append(tally)
            threads.append(
                threading.Thread(
                    target=_open_worker,
                    args=(host, port, path, corpus, bucket, start, tally),
                    name=f"loadgen-open-{c}",
                )
            )
    else:
        raise ValueError(f"unknown mode {profile.mode!r}")

    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start

    latencies = [x for tally in tallies for x in tally.latencies]
    errors = sum(t.errors for t in tallies)
    statuses: dict[str, int] = {}
    for tally in tallies:
        for status, count in tally.statuses.items():
            key = str(status)
            statuses[key] = statuses.get(key, 0) + count
    open_loop: dict[str, Any] | None = None
    if profile.mode == "open":
        lateness = sorted(
            x for tally in tallies for x in tally.lateness
        )
        open_loop = {
            "offered": offered,
            "lateness_ms": {
                "p50": percentile(lateness, 50) * 1000.0,
                "p99": percentile(lateness, 99) * 1000.0,
                "max": (lateness[-1] * 1000.0) if lateness else 0.0,
            },
        }
    return LoadReport(
        profile=profile.as_dict(),
        target=f"http://{host}:{port}{path}",
        duration_seconds=elapsed,
        requests=len(latencies),
        errors=errors,
        rps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms=_latency_summary(latencies),
        open_loop=open_loop,
        server=_fetch_healthz(host, port),
        status_counts=statuses,
    )
