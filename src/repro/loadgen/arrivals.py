"""Open-loop arrival processes: when each request *should* be sent.

An open-loop generator decides send times independently of response
times — the defining property that lets it expose queueing collapse
(a closed-loop client slows down with the server and hides it).  Both
processes here are pure functions of a seeded generator, so a profile
replays the identical arrival sequence on every run and every worker
count being compared.

Times are offsets in seconds from the start of the run; the harness
anchors them to ``time.monotonic()``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["poisson_arrivals", "burst_arrivals"]


def poisson_arrivals(
    rng: np.random.Generator, rate: float, duration: float
) -> list[float]:
    """Homogeneous Poisson process: exponential gaps at ``rate`` req/s."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    out: list[float] = []
    t = 0.0
    while True:
        # Inverse-CDF sampling; guard the log against a 0.0 draw.
        t += -math.log(1.0 - float(rng.random())) / rate
        if t >= duration:
            return out
        out.append(t)


def burst_arrivals(
    rng: np.random.Generator,
    base_rate: float,
    burst_rate: float,
    duration: float,
    *,
    period: float = 2.0,
    burst_fraction: float = 0.25,
) -> list[float]:
    """Periodic-surge process: Poisson at ``base_rate``, except during
    the first ``burst_fraction`` of every ``period`` where the rate is
    ``burst_rate``.

    Models the on/off traffic shape (request surges over a quiet
    baseline) that stresses queue depth and restart behaviour harder
    than a stationary process at the same mean rate.
    """
    if burst_rate < base_rate:
        raise ValueError(
            f"burst_rate {burst_rate} must be >= base_rate {base_rate}"
        )
    if not 0 < burst_fraction < 1:
        raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    out: list[float] = []
    t = 0.0
    while t < duration:
        phase = t % period
        in_burst = phase < period * burst_fraction
        rate = burst_rate if in_burst else base_rate
        gap = -math.log(1.0 - float(rng.random())) / rate
        # Do not let one draw leap across a phase boundary at the wrong
        # rate: clamp the step to the boundary and redraw from there.
        boundary = (
            period * burst_fraction - phase if in_burst else period - phase
        )
        if gap >= boundary:
            t += boundary
            continue
        t += gap
        if t < duration:
            out.append(t)
    return out
