"""Load generation for the feasibility-query service.

The serving stack (single-process :mod:`repro.service.server` and the
sharded :mod:`repro.service.frontend`) needs a measurement story of its
own: verdict micro-benchmarks say nothing about sustained RPS, tail
latency, or how a shard's private cache behaves under a real request
mix.  This package is that story:

* :mod:`~repro.loadgen.arrivals` — open-loop arrival processes
  (Poisson and periodic-burst), seeded and deterministic;
* :mod:`~repro.loadgen.profiles` — named workload profiles: corpus
  shape (instance size, stress, working-set size), request mix, and
  access pattern (cyclic scans that defeat one small LRU, Zipf skew
  that imbalances shards);
* :mod:`~repro.loadgen.client` — a raw-socket keep-alive HTTP client
  cheap enough to share one core with the server under test;
* :mod:`~repro.loadgen.harness` — closed- and open-loop drivers that
  produce a :class:`~repro.loadgen.harness.LoadReport` (sustained RPS,
  p50/p90/p99 latency, error counts, server metric deltas).

``repro loadgen`` is the CLI entry point; ``benchmarks/bench_service.py``
uses the same harness to pin the service's RPS/latency trajectory in
``BENCH_service.json``.
"""

from .arrivals import burst_arrivals, poisson_arrivals
from .client import HttpClient, HttpError
from .harness import LoadReport, run_load
from .profiles import (
    PROFILES,
    LoadProfile,
    build_corpus,
    request_indices,
)

__all__ = [
    "burst_arrivals",
    "poisson_arrivals",
    "HttpClient",
    "HttpError",
    "LoadReport",
    "run_load",
    "PROFILES",
    "LoadProfile",
    "build_corpus",
    "request_indices",
]
