"""The committed baseline of grandfathered findings.

A baseline entry matches a finding by :attr:`Finding.fingerprint` —
``(path, rule, stripped source line)`` — so entries survive unrelated
edits that shift line numbers but stop matching (and the finding
resurfaces) as soon as the offending line itself changes.  Identical
lines in one file are handled as a multiset: three identical baselined
lines absorb at most three findings.

Entries that matched nothing are *stale*; they are always counted in
the summary and listed by ``--show-unused-noqa``, so the baseline can
only shrink with the code, never rot past it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    path: str
    rule: str
    snippet: str
    #: line at capture time — informational only, never matched
    line: int = 0
    #: why this finding is accepted rather than fixed
    reason: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "path": self.path,
            "rule": self.rule,
            "snippet": self.snippet,
            "line": self.line,
        }
        if self.reason:
            out["reason"] = self.reason
        return out

    def render(self) -> str:
        return f"{self.path}:{self.line}: stale baseline entry [{self.rule}] {self.snippet!r}"


class Baseline:
    """A loaded baseline file, consumed as a fingerprint multiset."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = list(entries)
        self._pool: Counter[tuple[str, str, str]] = Counter(
            e.fingerprint for e in self.entries
        )
        self._consumed: Counter[tuple[str, str, str]] = Counter()

    # -- I/O ----------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(
            BaselineEntry(
                path=e["path"],
                rule=e["rule"],
                snippet=e["snippet"],
                line=int(e.get("line", 0)),
                reason=str(e.get("reason", "")),
            )
            for e in data["findings"]
        )

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            BaselineEntry(
                path=f.path, rule=f.rule, snippet=f.snippet, line=f.line
            )
            for f in sorted(findings)
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "findings": [e.as_dict() for e in sorted(self.entries, key=lambda e: (e.path, e.line, e.rule))],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # -- matching -----------------------------------------------------------

    def absorb(self, findings: list[Finding]) -> list[Finding]:
        """Findings not covered by the baseline (consuming the pool)."""
        kept: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint
            if self._consumed[fp] < self._pool[fp]:
                self._consumed[fp] += 1
            else:
                kept.append(finding)
        return kept

    @property
    def stale(self) -> list[BaselineEntry]:
        """Entries whose fingerprint matched fewer findings than listed."""
        leftovers = self._pool - self._consumed
        out: list[BaselineEntry] = []
        seen: Counter[tuple[str, str, str]] = Counter()
        for entry in self.entries:
            fp = entry.fingerprint
            if seen[fp] < leftovers[fp]:
                seen[fp] += 1
                out.append(entry)
        return out
