"""``repro lint`` — the command-line entry point for :mod:`repro.lint`.

Exit status: 0 when clean (modulo noqa + baseline), 1 when findings or
parse errors remain (or, with ``--show-unused-noqa``, when unused
suppressions / stale baseline entries exist).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from .baseline import Baseline, BaselineEntry
from .config import DEFAULT_BASELINE, config_from_sources
from .engine import lint_changed, lint_paths
from .reporters import FORMATS, render
from .selftest import run_self_test

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src")],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="report format (sarif feeds GitHub code scanning)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="REPxxx",
        default=None,
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="REPxxx",
        default=None,
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file in place without its stale "
            "entries (those matching no current finding) and exit 0"
        ),
    )
    parser.add_argument(
        "--show-unused-noqa",
        action="store_true",
        help=(
            "list unused noqa suppressions and stale baseline entries, "
            "and fail if any exist"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file phase (0 = all cores; "
            "findings are bit-identical to --jobs 1)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "incremental-analysis cache file; unchanged modules whose "
            "project imports are also unchanged are replayed, not "
            "re-analyzed"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache and analyze every file",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "treat the given paths as changed files: analyze the whole "
            "program but report findings only for them, unless the "
            "import graph says the change is non-local"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print execution stats: phase-1 (files, cache hits, jobs) "
            "and phase-2 (effect- and unit-fixpoint iterations, "
            "per-rule timing)"
        ),
    )
    parser.add_argument(
        "--min-cache-hit-rate",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail when phase-1 cache hits / files falls below RATIO in "
            "[0, 1]; run against a warm --cache in CI to catch changes "
            "that silently bust the cache key (requires --cache)"
        ),
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "fault injection: plant one violation per rule and verify "
            "each is caught at the right file/line"
        ),
    )


def _prune_baseline(path: Path, stale: list[BaselineEntry]) -> int:
    """Rewrite ``path`` minus its stale entries, multiset-aware.

    Identical fingerprints are removed exactly as many times as they
    are stale, mirroring how :meth:`Baseline.absorb` consumes them.
    """
    stale_counts: Counter[tuple[str, str, str]] = Counter(
        e.fingerprint for e in stale
    )
    loaded = Baseline.load(path)
    kept: list[BaselineEntry] = []
    removed = 0
    for entry in loaded.entries:
        fp = entry.fingerprint
        if stale_counts[fp] > 0:
            stale_counts[fp] -= 1
            removed += 1
        else:
            kept.append(entry)
    Baseline(kept).save(path)
    print(
        f"pruned {removed} stale entr(y/ies) from {path}; "
        f"{len(kept)} kept"
    )
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.self_test:
        result = run_self_test()
        print(result.summary())
        return 0 if result.ok else 1

    root = (args.root or Path.cwd()).resolve()
    config = config_from_sources(
        root,
        select=tuple(args.select) if args.select else None,
        ignore=tuple(args.ignore) if args.ignore else None,
        baseline=args.baseline,
        # a baseline never applies while capturing a new one
        no_baseline=args.no_baseline or args.write_baseline is not None,
        show_unused_noqa=args.show_unused_noqa,
        jobs=args.jobs,
        cache=None if args.no_cache else args.cache,
    )
    try:
        if args.changed:
            result, fallback = lint_changed(args.paths, config)
            if fallback is not None:
                print(f"repro lint: whole-program report ({fallback})")
        else:
            result = lint_paths(args.paths, config)
    except KeyError as exc:
        print(f"repro lint: unknown rule {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        Baseline.from_findings(result.findings).save(args.write_baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.prune_baseline:
        if config.baseline_path is None:
            print(
                "repro lint: --prune-baseline needs a baseline file "
                "(none given and none found)",
                file=sys.stderr,
            )
            return 2
        return _prune_baseline(config.baseline_path, result.stale_baseline)

    print(render(result, args.format, show_unused=args.show_unused_noqa))
    if args.stats:
        s = result.stats
        print(
            f"stats: {s.files} file(s), {s.analyzed} analyzed, "
            f"{s.cache_hits} cache hit(s), {s.cache_invalidated} "
            f"invalidated by imports, jobs={s.jobs}"
        )
        timings = " ".join(
            f"{rule}={secs * 1000:.1f}ms"
            for rule, secs in sorted(s.rule_timings.items())
        )
        print(
            f"phase2: {s.fixpoint_iterations} effect-fixpoint + "
            f"{s.unit_fixpoint_iterations} unit-fixpoint "
            f"iteration(s){'; ' + timings if timings else ''}"
        )
    code = result.exit_code(fail_on_unused=args.show_unused_noqa)
    if args.min_cache_hit_rate is not None:
        floor = args.min_cache_hit_rate
        if not 0.0 <= floor <= 1.0:
            print(
                f"repro lint: --min-cache-hit-rate must be in [0, 1], "
                f"got {floor}",
                file=sys.stderr,
            )
            return 2
        if args.no_cache or args.cache is None:
            print(
                "repro lint: --min-cache-hit-rate requires --cache "
                "(there is no cache to measure)",
                file=sys.stderr,
            )
            return 2
        s = result.stats
        rate = (s.cache_hits / s.files) if s.files else 1.0
        if rate < floor:
            print(
                f"repro lint: cache hit rate {rate:.1%} "
                f"({s.cache_hits}/{s.files} file(s)) is below the "
                f"--min-cache-hit-rate floor {floor:.1%} — a change has "
                "likely busted the incremental-cache key",
                file=sys.stderr,
            )
            return max(code, 1)
    return code
