"""Rule protocol, per-file context, and the ``REPxxx`` registry."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

from .findings import Finding
from .typeinfer import TypeInference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import ProjectGraph

__all__ = [
    "FileContext",
    "ProgramRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "resolve_selection",
]


class FileContext:
    """Everything a rule may inspect about one source file.

    Built once per file by the engine: parsed tree with parent links
    (``node._repro_parent``), source lines, import aliases, and the
    type-inference pass.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.types = TypeInference(tree)
        #: ``import numpy as np`` → {"np": "numpy"}
        self.import_aliases: dict[str, str] = {}
        #: ``from random import shuffle as sh`` → {"sh": ("random", "shuffle")}
        self.from_imports: dict[str, tuple[str, str]] = {}
        self._collect_imports()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    # -- helpers rules share ------------------------------------------------

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-based line (fingerprint input)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule.id,
            message=message,
            snippet=self.snippet(line),
            end_line=self.statement_span(node)[1],
        )

    def statement_span(self, node: ast.AST) -> tuple[int, int]:
        """``(lineno, end_lineno)`` of the statement enclosing ``node``.

        The suppression span: a ``# repro: noqa`` anywhere on these
        lines silences findings anchored inside the statement.
        """
        cur: ast.AST | None = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = getattr(cur, "_repro_parent", None)
        anchor = getattr(node, "lineno", 1)
        if cur is None:
            return anchor, anchor
        start = getattr(cur, "lineno", anchor)
        end = getattr(cur, "end_lineno", None) or anchor
        # block statements (for/while/if/with/def): span the header only,
        # so a noqa inside the body cannot silence a finding on the header
        body = getattr(cur, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            first = getattr(body[0], "lineno", end)
            if first > start:
                end = first - 1
        return min(start, anchor), max(end, anchor)

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        cur = getattr(node, "_repro_parent", None)
        while cur is not None:
            yield cur
            cur = getattr(cur, "_repro_parent", None)

    def resolves_to(self, node: ast.expr, module: str, name: str) -> bool:
        """Does ``node`` denote ``module.name`` under this file's imports?

        Matches both the attribute form (``time.time`` with ``import
        time``, including aliases) and the from-import form (``from time
        import time``).
        """
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            target = self.import_aliases.get(node.value.id)
            if target == module and node.attr == name:
                return True
        if isinstance(node, ast.Name):
            return self.from_imports.get(node.id) == (module, name)
        return False


class Rule(ABC):
    """One lint rule.

    Class attributes carry the registry metadata; :meth:`check` yields
    findings for one file.  ``default_paths`` scopes the rule: it runs
    only on files whose posix path contains one of the fragments (an
    empty tuple means every file).  Per-rule path overrides come from
    :class:`~repro.lint.config.LintConfig`.
    """

    #: ``REPxxx`` identifier
    id: str = ""
    #: short kebab-case name (SARIF rule name, docs anchor)
    name: str = ""
    #: one-line summary (SARIF shortDescription)
    summary: str = ""
    #: rationale paragraph (SARIF fullDescription)
    rationale: str = ""
    #: path fragments this rule applies to; empty = everywhere
    default_paths: tuple[str, ...] = ()
    #: path fragments this rule never applies to
    excluded_paths: tuple[str, ...] = ("tests/", "test_", "conftest")

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def applies_to(self, path: str, include: tuple[str, ...] | None = None) -> bool:
        """Is ``path`` in this rule's scope (with optional override)?"""
        for fragment in self.excluded_paths:
            if fragment in path:
                return False
        paths = include if include is not None else self.default_paths
        if not paths:
            return True
        return any(fragment in path for fragment in paths)


class ProgramRule(Rule):
    """A whole-program rule: runs in phase 2 over the project graph.

    Program rules never inspect a single file in isolation —
    :meth:`check` is a no-op and :meth:`check_program` receives the
    :class:`~repro.lint.callgraph.ProjectGraph` built from every
    analyzed module's summary.  The engine path-scopes the findings a
    program rule yields exactly like per-file findings (``applies_to``
    on the finding's path), so ``default_paths``/``excluded_paths``
    keep their meaning.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    @abstractmethod
    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        """Yield findings across the whole analyzed program."""


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``id``) to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """Registered rules by id, in id order (imports rule modules)."""
    from . import rules  # noqa: F401 - registration side effect

    return dict(sorted(_RULES.items()))


def get_rule(rule_id: str) -> Rule:
    rules = all_rules()
    try:
        return rules[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(rules)}"
        ) from None


def resolve_selection(
    select: tuple[str, ...] | None, ignore: tuple[str, ...] | None
) -> dict[str, Rule]:
    """Apply ``--select`` / ``--ignore`` to the registry.

    ``select`` of ``None`` means "all rules"; ``ignore`` always wins.
    Unknown ids raise ``KeyError`` so typos fail loudly rather than
    silently linting nothing.
    """
    rules = all_rules()
    known = set(rules)
    for rid in (select or ()) + (ignore or ()):
        if rid not in known:
            raise KeyError(f"unknown rule {rid!r}; known: {sorted(known)}")
    chosen = dict(rules) if select is None else {r: rules[r] for r in select}
    for rid in ignore or ():
        chosen.pop(rid, None)
    return chosen
