"""REP009 — registry member module unreachable from its registry.

The repo's plugin surfaces — ``repro.experiments`` and the lint rule
set itself — register by import side effect: a module calls
``@register`` at import time, and the package ``__init__`` imports
every member so the registrations run.  The failure mode is silent: a
new ``e18_*.py`` that never gets added to the ``__init__`` import list
simply does not exist as far as ``repro experiments list`` is
concerned.  No error, no test failure, just an experiment that cannot
be launched (this bit PR 1 during the campaign-runner bring-up).

Phase 2 walks the project import graph from each registry package's
``__init__`` and flags member modules (direct children matching the
registry's filename pattern) that no reachable module imports.  The
rule stays silent when the registry ``__init__`` itself is outside the
analyzed file set, so linting a single file never fabricates orphans.
Registries default to the two in-repo surfaces and extend via
``[tool.repro-lint.registries]`` in pyproject.
"""

from __future__ import annotations

import fnmatch
from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["OrphanedRegistration", "DEFAULT_REGISTRIES"]

#: registry package → fnmatch pattern of member module filenames
DEFAULT_REGISTRIES: dict[str, str] = {
    "repro.experiments": "e*",
    "repro.lint.rules": "rep*",
}


@register
class OrphanedRegistration(ProgramRule):
    id = "REP009"
    name = "orphaned-registration"
    summary = (
        "Registry member module on disk but unreachable from its "
        "registry __init__"
    )
    rationale = (
        "Registration-by-import means an experiment or rule module the "
        "registry package never imports silently does not exist: its "
        "@register decorator never runs.  Reachability from the "
        "registry __init__ over project import edges is the ground "
        "truth for 'will this plugin load'."
    )
    default_paths = ()

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for package, pattern in sorted(program.registries.items()):
            if package not in program.modules:
                continue  # registry not in the analyzed set: no verdict
            reachable = program.reachable_from(package)
            prefix = package + "."
            for module in sorted(program.modules):
                if not module.startswith(prefix):
                    continue
                summary = program.modules[module]
                basename = module[len(prefix) :]
                if (
                    "." in basename
                    or summary.is_package
                    or not fnmatch.fnmatch(basename, pattern)
                    or module in reachable
                ):
                    continue
                yield Finding(
                    path=summary.path,
                    line=1,
                    col=1,
                    rule=self.id,
                    message=(
                        f"module `{module}` matches registry pattern "
                        f"`{pattern}` of `{package}` but is unreachable "
                        "from the registry __init__; its registrations "
                        "never run"
                    ),
                    snippet=summary.first_line,
                )
