"""REP003 — wall-clock reads inside reproducible paths.

Experiment, oracle, and runner code produce artifacts (tables, seeds,
counterexample files) that must be bit-identical across reruns; a
``time.time()`` or ``datetime.now()`` anywhere in those paths leaks the
wall clock into results or seed derivation.  Duration *measurement*
(``perf_counter``, ``process_time``, ``monotonic``) is explicitly
allowed — telemetry goes to stderr and never into result rows.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["WallClockRead"]

#: (module, function) pairs that read the wall clock.
_WALL_CLOCK = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)


@register
class WallClockRead(Rule):
    id = "REP003"
    name = "wall-clock-read"
    summary = (
        "Wall-clock read in a reproducible path; results and seeds must "
        "not depend on when the code runs"
    )
    rationale = (
        "Campaign artifacts are compared bit-for-bit across reruns and "
        "across --jobs values.  A wall-clock read that reaches a result "
        "row, a digest, or a seed makes two identical runs disagree.  "
        "Monotonic duration clocks (perf_counter/process_time) remain "
        "allowed for stderr telemetry."
    )
    default_paths = (
        "repro/experiments/",
        "repro/oracle/",
        "repro/runner/",
        "repro/workloads/",
        "repro/io_/",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for module, name in _WALL_CLOCK:
                if ctx.resolves_to(node.func, module, name):
                    yield ctx.finding(
                        self,
                        node,
                        f"wall-clock read `{module}.{name}()` in a "
                        "reproducible path; derive timestamps from inputs "
                        "(or keep duration telemetry on perf_counter and "
                        "off the result path)",
                    )
                    break
                # the datetime/date classes, spelled either through the
                # module (datetime.datetime.now()) or via from-import
                # (from datetime import datetime; datetime.now())
                through_module = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == name
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == module
                    and isinstance(node.func.value.value, ast.Name)
                    and ctx.import_aliases.get(node.func.value.value.id)
                    == "datetime"
                )
                from_imported_class = (
                    module in ("datetime", "date")
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == name
                    and isinstance(node.func.value, ast.Name)
                    and ctx.from_imports.get(node.func.value.id)
                    == ("datetime", module)
                )
                if through_module or from_imported_class:
                    yield ctx.finding(
                        self,
                        node,
                        f"wall-clock read `datetime.{module}.{name}()` in "
                        "a reproducible path; derive timestamps from "
                        "inputs instead",
                    )
                    break
