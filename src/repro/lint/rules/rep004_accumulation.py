"""REP004 — bare ``+=`` float accumulation where compensation is required.

PR 3's fuzzer caught the incremental admission states drifting from the
one-shot ``math.fsum`` path because per-machine loads accumulated with
plain ``+=`` — enough noise on a boundary instance to make the
partitioner and ``verify_partition`` disagree.  The fix is
:class:`repro.core.bounds._NeumaierSum` (incremental) or ``math.fsum``
(one-shot).  This rule flags the pattern statically in ``core/`` and
``baselines/``:

* ``x += <float>`` lexically inside a ``for``/``while`` loop, and
* ``self._x += <float>`` anywhere (an accumulator fed across method
  calls — exactly the admission-state shape).

Integer counters (``count += 1``) never trigger: the operand must infer
as float.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["BareFloatAccumulation"]


def _inside_loop(ctx: FileContext, node: ast.AST) -> bool:
    for parent in ctx.parents(node):
        if isinstance(parent, (ast.For, ast.While)):
            return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


def _is_self_state(target: ast.expr) -> bool:
    """``self._x`` or ``self._x[...]`` targets."""
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and target.attr.startswith("_")
    )


@register
class BareFloatAccumulation(Rule):
    id = "REP004"
    name = "bare-float-accumulation"
    summary = (
        "Plain += float accumulation; use _NeumaierSum (incremental) or "
        "math.fsum (one-shot)"
    )
    rationale = (
        "Plain running sums drift from the exactly-rounded fsum path by "
        "O(n) rounding errors; on a boundary instance that is enough to "
        "flip an admission verdict and make the incremental and one-shot "
        "evaluation paths disagree.  Neumaier compensation keeps the "
        "running total within one rounding of the exact sum."
    )
    default_paths = ("repro/core/", "repro/baselines/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            value_float = ctx.types.is_float(node.value)
            target_float = ctx.types.is_float(node.target)
            if not (value_float or target_float):
                continue
            if _is_self_state(node.target):
                yield ctx.finding(
                    self,
                    node,
                    "float accumulator state updated with bare "
                    "`+=`; use `_NeumaierSum.add` so the incremental "
                    "total cannot drift from the one-shot fsum path",
                )
            elif _inside_loop(ctx, node):
                yield ctx.finding(
                    self,
                    node,
                    "bare `+=` float accumulation in a loop; compute the "
                    "total with `math.fsum` (or a `_NeumaierSum`) so the "
                    "result is exactly rounded and order-independent",
                )
