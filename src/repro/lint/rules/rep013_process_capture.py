"""REP013 — mutable or unpicklable state captured across a process fork.

The campaign runner (``repro.runner.executor.run_trials``) and the
sharded service protocol (``repro.service.protocol`` pickle frames) are
the two process boundaries in the system.  Both give each worker a
*copy* of whatever crosses; the bit-identity story depends on nothing
mutable leaking through:

* a trial function that mutates a module global "works" serially and at
  ``--jobs 1``, then silently diverges at ``--jobs N`` — each worker
  mutates its private copy and the parent sees none of it (or worse,
  sees a fork-inherited half);
* a ``threading.Lock``/socket/open handle reaching ``pickle`` either
  raises at the worst time or, fork-inherited, "succeeds" as a
  duplicate that guards nothing.

Phase 1 records **capture sites** — ``run_trials(fn, ...)`` calls with
the trial callable resolved, and pickle-frame constructions — plus each
module's **carrier globals** (locks, sockets, handles, by initializer).
This rule flags a fan-out whose resolved trial function transitively
mutates global/nonlocal state (memo-writes excluded: per-process caches
are a deliberate, verdict-neutral pattern), and any capture whose
argument expressions reference a carrier global.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["CrossProcessMutableCapture"]

#: transitive effects that diverge under fork fan-out; per-process
#: memo caches (``memo-write``) are deliberately allowed
_DIVERGENT_TAGS = frozenset({"mutates-global", "mutates-nonlocal"})


@register
class CrossProcessMutableCapture(ProgramRule):
    id = "REP013"
    name = "cross-process-mutable-capture"
    summary = (
        "mutable global state or lock/socket/handle carrier crosses a "
        "process boundary"
    )
    rationale = (
        "Workers get copies: a fanned-out trial that mutates a module "
        "global diverges silently between --jobs values, and a pickled "
        "lock or handle either raises mid-campaign or duplicates into "
        "a guard that guards nothing.  Both break the bit-identity "
        "contract in ways only visible under specific parallelism."
    )
    default_paths = ()  # everywhere outside tests

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        carriers: dict[tuple[str, str], str] = {}
        for summary in program.modules.values():
            for name, detail in summary.global_carriers:
                carriers[(summary.module, name)] = detail

        for summary in program.modules.values():
            for site in summary.capture_sites:
                if site.kind == "fanout" and site.fn_ref is not None:
                    target = program.resolve(*site.fn_ref)
                    if target is not None:
                        effects = program.effects(*target)
                        tags = sorted(set(effects) & _DIVERGENT_TAGS)
                        if tags:
                            detail, chain = effects[tags[0]]
                            hops = " -> ".join(
                                f"`{hop}`"
                                for hop in (
                                    f"{target[0]}.{target[1]}",
                                )
                                + chain
                            )
                            yield Finding(
                                path=summary.path,
                                line=site.line,
                                col=site.col,
                                rule=self.id,
                                message=(
                                    f"trial function {hops} mutates "
                                    f"shared state ({detail}) and is "
                                    "fanned out across processes; each "
                                    "worker mutates a private copy, so "
                                    "results diverge between --jobs "
                                    "values — return the data instead "
                                    "and reduce in the parent"
                                ),
                                snippet=site.snippet,
                                end_line=site.end_line,
                            )
                for cand in site.carrier_candidates:
                    resolved = self._carrier(program, carriers, cand)
                    if resolved is None:
                        continue
                    (mod, name), detail = resolved
                    boundary = (
                        "the process-pool fan-out"
                        if site.kind == "fanout"
                        else "a pickle frame"
                    )
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule=self.id,
                        message=(
                            f"`{mod}.{name}` (a {detail} carrier) "
                            f"flows into {boundary}; locks, sockets, "
                            "and open handles must never cross a "
                            "process boundary — pass plain data and "
                            "reconstruct resources in the worker"
                        ),
                        snippet=site.snippet,
                        end_line=site.end_line,
                    )

    @staticmethod
    def _carrier(
        program: "ProjectGraph",
        carriers: dict[tuple[str, str], str],
        cand: tuple[str, str],
    ) -> tuple[tuple[str, str], str] | None:
        """Resolve a candidate name to a known carrier global, if any."""
        if cand in carriers:
            return cand, carriers[cand]
        # symbol-import candidates may re-export through a package
        module, name = cand
        seen: set[tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            summary = program.modules.get(module)
            if summary is None:
                return None
            if (module, name) in carriers:
                return (module, name), carriers[(module, name)]
            origin = None
            for local, mod, orig in summary.symbol_imports:
                if local == name:
                    origin = (mod, orig)
                    break
            if origin is None:
                return None
            module, name = origin
        return None
