"""REP007 — tolerance escape across function boundaries.

REP001 flags a bare ``<=``/``>=``/``==`` when *both* operands visibly
infer as floats inside one file.  That leaves a hole the fuzzing
campaign of PR 3 walked straight through: the comparison
``demand(ts, t) <= capacity`` is invisible to per-file analysis when
``demand`` lives in another module — the call's return type is unknown
locally, so REP001 stays silent and the boundary verdict can still
flip on rounding noise.

This rule closes the hole interprocedurally.  Phase 1 records every
bare comparison with a call operand that resolves to a project
function; phase 2 asks the project graph whether the callee *produces
a float* (directly, by annotation, or transitively through ``return
helper(...)`` chains — a pessimistic fixpoint, so recursion without
float evidence never flags).  A site fires only when both sides are
float-bearing, mirroring REP001's contract; the same literal/guard/
assert exemptions apply, enforced at summary-extraction time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["ToleranceEscape"]


def _float_bearing(program: "ProjectGraph", desc: tuple[str, str, str]) -> bool:
    if desc[0] == "float":
        return True
    if desc[0] == "call":
        return program.returns_float(desc[1], desc[2])
    return False


def _call_label(program: "ProjectGraph", desc: tuple[str, str, str]) -> str:
    resolved = program.resolve(desc[1], desc[2]) or (desc[1], desc[2])
    return f"`{resolved[1]}()` (defined in {resolved[0]})"


@register
class ToleranceEscape(ProgramRule):
    id = "REP007"
    name = "tolerance-escape"
    summary = (
        "Bare comparison of a float-returning project function's result; "
        "use leq/geq/close"
    )
    rationale = (
        "A feasibility verdict compared raw at a call site escapes the "
        "tolerance helpers even though the float was produced two "
        "modules away.  The call graph knows the callee produces a "
        "float, so the comparison is held to the same standard as a "
        "local one: route it through leq/geq/close or tol_leq/tol_geq."
    )
    default_paths = ("repro/core/", "repro/baselines/", "repro/analysis/")

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for summary in program.modules.values():
            for site in summary.comparisons:
                if not (
                    _float_bearing(program, site.left)
                    and _float_bearing(program, site.right)
                ):
                    continue
                calls = [
                    d
                    for d in (site.left, site.right)
                    if d[0] == "call" and program.returns_float(d[1], d[2])
                ]
                if not calls:
                    continue  # both sides local floats: REP001's finding
                who = " and ".join(_call_label(program, d) for d in calls)
                helper = (
                    "close"
                    if site.op_text == "=="
                    else ("leq" if site.op_text == "<=" else "geq")
                )
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=(
                        f"{who} returns a float; bare `{site.op_text}` at "
                        f"this call site escapes the tolerance helpers — "
                        f"route through `{helper}` (or `tol_leq`/`tol_geq` "
                        "on the LP side)"
                    ),
                    snippet=site.snippet,
                    end_line=site.end_line,
                )
