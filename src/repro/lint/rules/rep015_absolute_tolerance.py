"""REP015 — absolute tolerance on a scaled quantity.

The worst bug this repo ever shipped (fixed in PR 8) was exactly this
shape::

    if t < task.deadline - EPS:          # absolute eps vs time
        return 0.0
    jobs = math.floor((t - task.deadline) / task.period + EPS) + 1

QPA test points and dbf horizons reach ``1e12`` for harmonic-ish
periods, where ``1e-9`` is *below one ulp*: the guard silently behaves
like a bare ``<`` and the floor can absorb a whole job.  The sanctioned
forms are the scale-aware helpers — ``leq``/``lt``/``geq``/``close``
and ``tol_floor``, which all scale ``EPS`` by ``max(1.0, |x|)`` — or a
manually scaled epsilon like ``EPS * max(1.0, abs(t))``.

Phase 1 records every addition/subtraction of a *bare* epsilon (a tiny
float literal, or an eps-named constant that is not itself scaled)
inside a comparison or floor-like call.  A site fires when the other
operand provably carries ``work``/``time`` scale: locally (a time-
dimension leaf inside the expression, like the ``(t - d) / p`` quotient
above) or through a project call's return dimension via the phase-2
unit fixpoint.  Utilizations, densities and speeds are O(1) by
construction, so absolute epsilons next to them stay legal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register
from ..unitinfer import TIME, WORK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["AbsoluteTolerance"]


@register
class AbsoluteTolerance(ProgramRule):
    id = "REP015"
    name = "absolute-tolerance"
    summary = (
        "Bare epsilon added to a work/time-scale value; use the "
        "scale-aware helpers (leq/lt/tol_floor)"
    )
    rationale = (
        "An absolute epsilon next to a quantity that grows with the "
        "hyperperiod is below one ulp near 1e12 — the historical dbf() "
        "boundary bug.  The tolerance helpers scale EPS by "
        "max(1.0, |x|); anything else silently degrades to exact "
        "comparison at large scale."
    )
    default_paths = ("repro/core/", "repro/baselines/", "repro/kernels/")

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for module in sorted(program.modules):
            summary = program.modules[module]
            for site in summary.eps_sites:
                dim = site.lineage_dim
                if not dim:
                    partner = program.eval_dim(site.partner)
                    if partner not in (WORK, TIME):
                        continue
                    dim = partner
                where = (
                    "decides a comparison"
                    if site.context == "compare"
                    else "feeds a floor/ceil boundary"
                )
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=(
                        f"absolute tolerance `{site.eps_display}` against "
                        f"the {dim}-scale value `{site.partner_display}` "
                        f"{where}; at hyperperiod scale this is below one "
                        "ulp — use `leq`/`lt`/`tol_floor` or scale by "
                        "`max(1.0, abs(x))`"
                    ),
                    snippet=site.snippet,
                    end_line=site.end_line,
                )
