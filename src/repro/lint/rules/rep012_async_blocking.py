"""REP012 — blocking call reachable from an ``async def``.

The sharded front end runs one asyncio event loop that multiplexes
every client connection and every shard pipe.  A single synchronous
block anywhere under a coroutine — ``time.sleep``, a subprocess wait,
file IO, a held ``threading.Lock`` — freezes the whole loop: all
shards, all clients, the health endpoint, for the full duration.  It
shows up in production as tail-latency cliffs and in tests as nothing,
because a serial test never has a second connection waiting.

Phase 1 records each function's own blocking-family effects and its
resolved calls; phase 2's fixpoint makes the *transitive* set
available.  This rule walks every ``async def`` in scope and flags

* its own blocking effect sites (the direct ``time.sleep(...)`` in a
  coroutine), and
* call sites whose resolved target is a **sync** function whose
  transitive effect set contains a blocking tag — with the call chain
  to the offending primitive named in the message.

Calls to other ``async def`` functions are skipped (the callee is
awaited and reported at its own site if guilty), as are unresolvable
calls (no speculation).  Legitimate blocking must move to
``loop.run_in_executor`` or carry a ``# repro: noqa[REP012]`` with the
reason (e.g. startup-only paths before the loop serves traffic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["BlockingCallInAsync"]


@register
class BlockingCallInAsync(ProgramRule):
    id = "REP012"
    name = "blocking-call-in-async"
    summary = "blocking IO/sleep/subprocess/lock reachable from async def"
    rationale = (
        "The dispatcher is a single event loop over every shard and "
        "client; one synchronous block freezes them all for its whole "
        "duration.  Serial tests never catch it — only concurrent "
        "traffic does, as a tail-latency cliff.  The call graph makes "
        "the blocking primitive visible even when it hides two sync "
        "calls deep."
    )
    default_paths = ("repro/service/",)

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        from ..callgraph import BLOCKING_TAGS

        for summary in program.modules.values():
            for fn in summary.functions:
                if not fn.is_async:
                    continue
                for site in fn.effects:
                    if site.tag not in BLOCKING_TAGS:
                        continue
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule=self.id,
                        message=(
                            f"async `{fn.qualname}` blocks the event "
                            f"loop: {site.detail}; move it to "
                            "`loop.run_in_executor(...)` or an async "
                            "equivalent"
                        ),
                        snippet=site.snippet,
                        end_line=site.end_line,
                    )
                reported: set[tuple[str, str]] = set()
                for call in fn.calls:
                    target = program.resolve(call.module, call.name)
                    if target is None or target in reported:
                        continue
                    callee = program.function(*target)
                    if callee is None or callee.is_async:
                        continue
                    effects = program.effects(*target)
                    tags = sorted(set(effects) & BLOCKING_TAGS)
                    if not tags:
                        continue
                    reported.add(target)
                    detail, chain = effects[tags[0]]
                    hops = " -> ".join(
                        f"`{hop}`"
                        for hop in (f"{target[0]}.{target[1]}",) + chain
                    )
                    yield Finding(
                        path=summary.path,
                        line=call.line,
                        col=call.col,
                        rule=self.id,
                        message=(
                            f"async `{fn.qualname}` calls {hops}, which "
                            f"blocks the event loop ({detail}); await "
                            "an async path or dispatch via "
                            "`loop.run_in_executor(...)`"
                        ),
                        snippet=call.snippet,
                        end_line=call.line,
                    )
