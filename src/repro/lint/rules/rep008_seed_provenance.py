"""REP008 — RNG seeded from material outside the trial-seed chain.

REP002 flags *unseeded* RNG construction.  The subtler failure PR 2's
campaign runner was built to prevent is an RNG that **is** seeded, but
from a value with the wrong provenance: ``default_rng(hash(label))``
(PYTHONHASHSEED-dependent), ``default_rng(int(time.time()))``, or a
seed threaded through three helper functions whose origin was a
wall-clock read all along.  Each reproduces *sometimes* — exactly the
kind of flake the differential oracle cannot bisect.

Phase 1 tracks a provenance lattice for every expression that reaches
an RNG constructor: **blessed** material is literals, names/attributes
matching ``seed``/``entropy``, ``zlib.crc32`` digests, and
``SeedSequence``/``generate_state``/``spawn`` chains over blessed
inputs (the ``Campaign._trial_seed`` pattern); **tainted** material is
``hash``/``id`` and anything from ``time``/``os``/``uuid``/``random``/
``secrets``; calls into project functions defer to phase 2, which runs
an optimistic fixpoint over function return provenance — a derivation
chain may recurse, but a taint or unprovable source anywhere in it
breaks the verdict.  Mixtures (``SeedSequence([base_seed, digest,
point, rep])``) are blessed if any component is blessed and none is
tainted; a value the analysis cannot trace at all is flagged, because
seeds are a whitelist, not a blacklist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["SeedProvenanceTaint"]


@register
class SeedProvenanceTaint(ProgramRule):
    id = "REP008"
    name = "seed-provenance"
    summary = (
        "RNG seeded from a value not derived from the crc32 trial-seed "
        "digest"
    )
    rationale = (
        "Seeding an RNG from hash(), a clock, or an untraceable value "
        "makes trials irreproducible even though the construction looks "
        "seeded.  Every seed must derive from the blessed chain: the "
        "campaign base seed, zlib.crc32 name digests, and SeedSequence "
        "mixing — the provenance is checked across function and module "
        "boundaries."
    )
    default_paths = ()  # everywhere outside tests

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for summary in program.modules.values():
            for site in summary.rng_sites:
                ok, why = program.prov_verdict(site.prov)
                if ok:
                    continue
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=(
                        f"`{site.constructor}(...)` seeded from material "
                        f"not derived from the trial-seed digest ({why}); "
                        "derive seeds from the campaign base seed via "
                        "`zlib.crc32` + `SeedSequence`"
                    ),
                    snippet=site.snippet,
                    end_line=site.end_line,
                )
