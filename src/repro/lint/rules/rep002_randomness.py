"""REP002 — unseeded or global-state randomness outside tests.

Every random stream in this repo derives from an explicit per-trial
seed (the crc32 trial-seed digest of PR 1); acceptance-ratio campaigns
are bit-reproducible only because no code path touches an unseeded or
process-global generator.  Flagged anywhere outside tests:

* ``np.random.default_rng()`` with no seed argument;
* ``np.random.seed(...)`` and the legacy global-state module functions
  (``np.random.random``, ``np.random.randint``, ...);
* ``random.*`` module functions (``random.random``, ``random.shuffle``,
  ...), including names imported from the ``random`` module.

``default_rng(seed)``, ``SeedSequence(...)``, ``Generator(...)`` and
``PCG64(...)`` with explicit arguments are the blessed constructions
and pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["UnseededRandomness"]

#: numpy.random attributes that are fine *with* arguments.
_SEEDABLE = frozenset({"default_rng", "SeedSequence", "Generator", "PCG64"})


def _numpy_random_attr(ctx: FileContext, func: ast.expr) -> str | None:
    """``np.random.<attr>`` / ``numpy.random.<attr>`` → attr name."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and ctx.import_aliases.get(value.value.id) == "numpy"
    ):
        return func.attr
    # `from numpy import random` / `from numpy import random as npr`
    if isinstance(value, ast.Name) and ctx.from_imports.get(value.id) == (
        "numpy",
        "random",
    ):
        return func.attr
    return None


def _random_module_attr(ctx: FileContext, func: ast.expr) -> str | None:
    """``random.<attr>`` (stdlib) → attr name, or from-imported name."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and ctx.import_aliases.get(func.value.id) == "random"
    ):
        return func.attr
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        if origin is not None and origin[0] == "random":
            return origin[1]
    return None


@register
class UnseededRandomness(Rule):
    id = "REP002"
    name = "unseeded-randomness"
    summary = (
        "Unseeded default_rng() or global-state random API; thread an "
        "explicitly seeded Generator instead"
    )
    rationale = (
        "Campaign results must be bit-identical across runs and across "
        "--jobs values.  Unseeded generators seed from the OS; the "
        "stdlib `random` module and `np.random.seed` mutate process-"
        "global state that parallel workers and import order can "
        "perturb.  All randomness flows from explicit per-trial seeds."
    )
    default_paths = ()  # everywhere outside tests

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            np_attr = _numpy_random_attr(ctx, node.func)
            if np_attr is not None:
                if np_attr in _SEEDABLE:
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            self,
                            node,
                            f"`np.random.{np_attr}()` without a seed draws "
                            "OS entropy; pass an explicit seed (derive it "
                            "from the campaign's trial-seed digest)",
                        )
                else:
                    yield ctx.finding(
                        self,
                        node,
                        f"global-state `np.random.{np_attr}(...)`; use an "
                        "explicitly seeded `np.random.default_rng(seed)` "
                        "Generator instead",
                    )
                continue
            rand_attr = _random_module_attr(ctx, node.func)
            if rand_attr is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"stdlib `random.{rand_attr}(...)` uses hidden global "
                    "state; use an explicitly seeded "
                    "`np.random.default_rng(seed)` Generator instead",
                )
