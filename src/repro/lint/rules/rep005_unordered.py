"""REP005 — iteration over unordered collections without ``sorted``.

Set iteration order depends on hash values — and for strings on the
process's hash seed — so a ``for`` loop or comprehension over a set
that feeds serialization, digests, or seed derivation produces
different artifacts on different runs.  Dicts preserve insertion order
in Python 3.7+ and are not flagged; filesystem listings
(``os.listdir``, ``Path.iterdir``, ``glob``) return OS-dependent order
and are.

Exempt: sets consumed by order-insensitive reducers — ``sorted``,
``min``, ``max``, ``len``, ``any``, ``all``, ``set``, ``frozenset``,
``math.fsum`` (exactly rounded, hence order-independent; plain ``sum``
is *not* exempt for floats).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["UnorderedIteration"]

#: bare-name reducers whose result does not depend on iteration order.
_ORDER_FREE = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: filesystem-listing calls with OS-dependent order.
_FS_LISTING = (("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob"))


def _consumed_order_free(node: ast.AST) -> bool:
    """Is ``node`` the direct argument of an order-insensitive reducer?

    Covers ``sorted(x for x in seen)`` — the comprehension's order leak
    is neutralized by the reducer it feeds.
    """
    parent = getattr(node, "_repro_parent", None)
    if not isinstance(parent, ast.Call) or node not in parent.args:
        return False
    func = parent.func
    if isinstance(func, ast.Name) and func.id in _ORDER_FREE:
        return True
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "fsum"
        and isinstance(func.value, ast.Name)
        and func.value.id == "math"
    ):
        return True
    return False


def _iter_sources(node: ast.AST) -> Iterator[ast.expr]:
    """Iteration sources of for-loops and comprehension clauses."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for gen in node.generators:
            yield gen.iter


@register
class UnorderedIteration(Rule):
    id = "REP005"
    name = "unordered-iteration"
    summary = (
        "Iterating a set (or an OS directory listing) without sorted(); "
        "order leaks into downstream artifacts"
    )
    rationale = (
        "Set iteration order varies with hash seeding; directory "
        "listings vary with the filesystem.  Anything they feed — JSON, "
        "digests, derived seeds, accumulated floats — silently stops "
        "being reproducible.  Wrap the source in sorted() with an "
        "explicit key."
    )
    default_paths = ()  # determinism is a global property

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for source in _iter_sources(node):
                if ctx.types.is_set(source) and not _consumed_order_free(node):
                    yield ctx.finding(
                        self,
                        node,
                        "iteration over a set has hash-dependent order; "
                        "iterate `sorted(<set>)` so downstream artifacts "
                        "are reproducible",
                    )
                    continue
                for module, name in _FS_LISTING:
                    if isinstance(source, ast.Call) and ctx.resolves_to(
                        source.func, module, name
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"`{module}.{name}()` returns OS-dependent "
                            "order; wrap in `sorted(...)` before iterating",
                        )
                        break
                else:
                    if (
                        isinstance(source, ast.Call)
                        and isinstance(source.func, ast.Attribute)
                        and source.func.attr in ("iterdir", "glob", "rglob")
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"`Path.{source.func.attr}()` returns "
                            "OS-dependent order; wrap in `sorted(...)` "
                            "before iterating",
                        )
