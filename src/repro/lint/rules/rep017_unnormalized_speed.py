"""REP017 — work compared against time without speed normalization.

On a unit-speed machine, demand (work) and interval length (time) are
numerically interchangeable — ``dbf(tasks, t) <= t`` looks right and
*is* right for speed 1.  On a heterogeneous platform it is the classic
porting bug: the feasibility test is ``demand <= speed * t`` (or
equivalently ``demand / speed <= t``), and the unnormalized form
silently admits task sets that overload slow machines.  This is the
single-machine test of Bonifaci & Marchetti-Spaccamela generalized to
machine speeds, and every baseline we reproduce has to apply the
normalization somewhere.

The mechanism is REP014's unit fixpoint; this rule owns the one
mismatch pair — ``work`` on one side, ``time`` on the other — because
its fix is specific and mechanical: divide the work by the machine
``speed`` (or multiply the interval by it) before comparing.  All
other dimension mixes stay REP014's findings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register
from ..unitinfer import TIME, WORK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["UnnormalizedSpeed"]


@register
class UnnormalizedSpeed(ProgramRule):
    id = "REP017"
    name = "unnormalized-speed"
    summary = (
        "Work compared/mixed with time without dividing by machine speed"
    )
    rationale = (
        "demand <= t is only correct at unit speed; on a heterogeneous "
        "platform the test is demand <= speed * t.  The unit fixpoint "
        "proves one side is work and the other time — a missing speed "
        "normalization, caught even when the demand is computed in "
        "another module."
    )
    default_paths = ("repro/core/", "repro/baselines/", "repro/kernels/")

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for summary, site, left, right in program.unit_mismatches():
            if {left, right} != {WORK, TIME}:
                continue  # any other mix is REP014's finding
            work_side = (
                site.left_display if left == WORK else site.right_display
            )
            time_side = (
                site.left_display if left == TIME else site.right_display
            )
            yield Finding(
                path=summary.path,
                line=site.line,
                col=site.col,
                rule=self.id,
                message=(
                    f"`{work_side}` is work but `{time_side}` is time; "
                    "normalize by the machine speed first "
                    "(`work / speed` vs time, or work vs `speed * t`)"
                ),
                snippet=site.snippet,
                end_line=site.end_line,
            )
