"""The REP rule set.  Importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401 - registration side effects
    rep001_float_compare,
    rep002_randomness,
    rep003_wallclock,
    rep004_accumulation,
    rep005_unordered,
    rep006_lock_discipline,
    rep007_tolerance_escape,
    rep008_seed_provenance,
    rep009_orphaned_registration,
    rep010_caller_lock_discipline,
    rep011_impure_memo,
    rep012_async_blocking,
    rep013_process_capture,
    rep014_mixed_dimension,
    rep015_absolute_tolerance,
    rep016_dimension_call,
    rep017_unnormalized_speed,
)

__all__ = [
    "rep001_float_compare",
    "rep002_randomness",
    "rep003_wallclock",
    "rep004_accumulation",
    "rep005_unordered",
    "rep006_lock_discipline",
    "rep007_tolerance_escape",
    "rep008_seed_provenance",
    "rep009_orphaned_registration",
    "rep010_caller_lock_discipline",
    "rep011_impure_memo",
    "rep012_async_blocking",
    "rep013_process_capture",
    "rep014_mixed_dimension",
    "rep015_absolute_tolerance",
    "rep016_dimension_call",
    "rep017_unnormalized_speed",
]
