"""REP001 — bare float comparison in verdict-bearing modules.

Feasibility conditions in this repo are closed inequalities whose
verdicts must not flip on floating-point noise; every such comparison
must go through :func:`repro.core.model.leq`/``geq``/``close`` or the
LP-side :func:`repro.core.lp.tol_leq`/``tol_geq``.  PR 3's fuzzing
campaign caught raw comparisons bypassing the helpers (the hyperbolic
early exit in ``core/bounds.py``, LP-side checks in ``core/lp.py``) —
this rule catches the pattern statically.

Flagged: ``<=`` / ``>=`` / ``==`` where both operands infer as floats
(including hand-rolled ``x <= y * (1.0 + EPS)`` tolerances, which the
repo unifies on the helpers).  Exempt:

* comparisons against a zero or integer literal (sign tests and
  sentinels, which the tolerance helpers do not address);
* the test of an ``if`` whose body is a single ``raise`` (argument
  validation, not a feasibility verdict);
* ``assert`` conditions (crash-on-violation invariants).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["BareFloatComparison"]

_FLAGGED_OPS = (ast.LtE, ast.GtE, ast.Eq)

_OP_TEXT = {ast.LtE: "<=", ast.GtE: ">=", ast.Eq: "=="}


def _is_exempt_literal(node: ast.expr) -> bool:
    """Zero or integer literals: sign/sentinel tests, not boundaries."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True  # covers booleans too; fine either way
    if isinstance(node, ast.Constant) and node.value == 0.0:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_exempt_literal(node.operand)
    return False


def _guards_raise(ctx: FileContext, node: ast.Compare) -> bool:
    """Is this comparison (part of) an ``if``-test guarding a raise?"""
    cur: ast.AST = node
    for parent in ctx.parents(node):
        if isinstance(parent, ast.If) and cur is parent.test:
            return len(parent.body) == 1 and isinstance(parent.body[0], ast.Raise)
        if isinstance(parent, ast.Assert):
            return True
        if isinstance(parent, (ast.BoolOp, ast.UnaryOp)):
            cur = parent
            continue
        break
    return False


@register
class BareFloatComparison(Rule):
    id = "REP001"
    name = "bare-float-comparison"
    summary = (
        "Raw <=/>=/== between float expressions; use leq/geq/close or "
        "tol_leq/tol_geq"
    )
    rationale = (
        "Schedulability conditions are closed inequalities; a raw float "
        "comparison can flip a boundary instance on rounding noise and "
        "make two oracles disagree about the same instance.  All "
        "verdict-bearing comparisons go through the tolerance helpers "
        "so every module agrees on what 'on the boundary' means."
    )
    default_paths = ("repro/core/", "repro/baselines/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, _FLAGGED_OPS):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_exempt_literal(left) or _is_exempt_literal(right):
                    continue
                if not (ctx.types.is_float(left) and ctx.types.is_float(right)):
                    continue
                if _guards_raise(ctx, node):
                    continue
                op_text = _OP_TEXT[type(op)]
                helper = "close" if isinstance(op, ast.Eq) else (
                    "leq" if isinstance(op, ast.LtE) else "geq"
                )
                yield ctx.finding(
                    self,
                    node,
                    f"bare float comparison `{op_text}`; route through "
                    f"`{helper}` (or `tol_leq`/`tol_geq` on the LP side) "
                    "so boundary verdicts cannot flip on rounding noise",
                )
