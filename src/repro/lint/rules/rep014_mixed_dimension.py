"""REP014 — mixed-dimension arithmetic/comparison.

Everything this repo computes is arithmetic over typed quantities:
work (``wcet`` at unit speed), time (``period``, ``deadline``, QPA
test points), speed and rate (both work/time).  Adding a utilization
to a deadline, or comparing a demand bound against a machine speed,
is meaningless no matter how the floats round — yet Python happily
evaluates it, and the result only shows up as a subtly wrong campaign
curve.

Phase 1 records every ``+``/``-``/comparison whose operands both carry
unit information (a concrete dimension inferred from domain-model
attributes, parameter names and arithmetic propagation, or a term
depending on a project function's return dimension).  Phase 2 closes
return dimensions over the call graph with a Kleene fixpoint and flags
the sites where two *concrete* dimensions with different exponent
vectors meet.  ``unknown`` never fires, and ``speed`` vs ``rate``
(same work/time vector) is the core feasibility test — always allowed.

The work-vs-time special case has its own rule (REP017): that mismatch
almost always means a missing division by machine speed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register
from ..unitinfer import TIME, WORK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["MixedDimension"]


@register
class MixedDimension(ProgramRule):
    id = "REP014"
    name = "mixed-dimension"
    summary = (
        "Arithmetic or comparison between quantities of different "
        "dimensions (e.g. time vs rate)"
    )
    rationale = (
        "Adding a utilization to a deadline or comparing demand to a "
        "speed type-checks as float arithmetic but is dimensionally "
        "meaningless; the unit fixpoint proves both operand dimensions, "
        "including through cross-module return values, so the mix is a "
        "lint-time error instead of a wrong curve in a campaign plot."
    )
    default_paths = ("repro/core/", "repro/baselines/", "repro/kernels/")

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for summary, site, left, right in program.unit_mismatches():
            if {left, right} == {WORK, TIME}:
                continue  # REP017's finding: unnormalized speed
            action = (
                "mixed in arithmetic"
                if site.context == "arith"
                else f"compared with `{site.op_text}`"
            )
            yield Finding(
                path=summary.path,
                line=site.line,
                col=site.col,
                rule=self.id,
                message=(
                    f"`{site.left_display}` is {left}-dimensioned but "
                    f"`{site.right_display}` is {right}-dimensioned; "
                    f"quantities of different dimensions cannot be "
                    f"{action}"
                ),
                snippet=site.snippet,
                end_line=site.end_line,
            )
