"""REP016 — dimension-mismatched call argument.

The per-expression rule (REP014) cannot see across a call boundary:
``admit(task.period, speed)`` is dimensionally fine *locally* — the
mismatch only exists because ``admit``'s first parameter, defined in
another module, is a utilization.  Swapped ``(period, deadline)``
arguments and ``wcet``-for-``utilization`` confusions are exactly the
bug class the heterogeneous-machines baselines keep re-growing.

Phase 1 records, at every statically resolved project call, the
dimension term of each argument that carries unit information, and —
on the callee side — a per-parameter *expectation*: the dimension
implied by the parameter's name (``t``, ``speed``, ``util``, ...), an
``int`` annotation, or a consistent usage pattern inside the body
(a bare parameter added to or compared against a known-dimension
operand).  Phase 2 joins the two facts across the project graph and
flags arguments whose concrete dimension clashes with the callee's
concrete expectation.  Either side being ``unknown`` stays silent, and
``speed`` vs ``rate`` share an exponent vector — passing a total
utilization where a capacity is expected is the feasibility test
itself, not a bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register
from ..unitinfer import dims_clash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["DimensionMismatchedCall"]


@register
class DimensionMismatchedCall(ProgramRule):
    id = "REP016"
    name = "dimension-mismatched-call"
    summary = (
        "Call argument's dimension clashes with the callee parameter's "
        "expected dimension"
    )
    rationale = (
        "Passing a period where a utilization is expected type-checks "
        "and runs; the call graph knows the callee's parameter "
        "expectation even when it lives in another module, so the "
        "swapped argument is caught at lint time instead of as a wrong "
        "feasibility verdict."
    )
    default_paths = ("repro/core/", "repro/baselines/", "repro/kernels/")

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        for module in sorted(program.modules):
            summary = program.modules[module]
            for site in summary.unit_calls:
                order, expected = program.param_expectations(
                    site.module, site.name
                )
                if not expected:
                    continue
                for label, display, term in site.args:
                    if label.isdigit():
                        index = int(label)
                        if index >= len(order):
                            continue
                        param = order[index]
                    else:
                        param = label
                    want = expected.get(param)
                    if want is None:
                        continue
                    got = program.eval_dim(term)
                    if not dims_clash(got, want):
                        continue
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule=self.id,
                        message=(
                            f"argument `{display}` is {got}-dimensioned "
                            f"but parameter `{param}` of `{site.name}()` "
                            f"expects a {want}-dimensioned value"
                        ),
                        snippet=site.snippet,
                        end_line=site.end_line,
                    )
