"""REP010 — service state mutated without a lock-holding caller chain.

REP006 judges *public* service methods lexically: the mutation must sit
inside ``with self._lock:``.  Private helpers (``_evict``, ``_insert``)
legitimately mutate without taking the lock themselves — the documented
contract is "caller holds the lock" — which REP006 cannot check and so
skips entirely.  This rule closes that gap interprocedurally: a
mutation in a private method (or in an unlocked module-level function
mutating a module global) is safe only if **every** resolved caller
chain provably holds the lock at the call site, either lexically
(``with self._lock: self._evict()``) or because the caller itself is
proven locked-only.

The proof is pessimistic in every direction a race could hide:

* a function with **no** resolved callers is unproven — nothing
  establishes who calls it under what discipline (dead code included:
  a future caller inherits the obligation);
* a call cycle with no locked entry is unproven;
* an unresolvable call site elsewhere never *adds* safety, it just
  doesn't count as a caller.

Suppress per-site with ``# repro: noqa[REP010]`` where the state is
confined to one thread by construction (e.g. a serial worker process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["CallerLockDiscipline"]

_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _is_private_method(qualname: str) -> bool:
    """``Class._name`` — private, non-dunder, actually a method."""
    if "." not in qualname:
        return False
    name = qualname.rsplit(".", 1)[1]
    return (
        name.startswith("_")
        and not name.startswith("__")
        and name not in _EXEMPT_METHODS
    )


def _locked_only(
    program: "ProjectGraph",
    key: tuple[str, str],
    stack: tuple[tuple[str, str], ...],
    memo: dict[tuple[str, str], bool],
) -> bool:
    """Is every caller chain reaching ``key`` proven to hold a lock?"""
    if key in memo:
        return memo[key]
    if key in stack:
        return False  # cycle with no locked entry above it
    callers = program.callers_of(*key)
    if not callers:
        memo[key] = False
        return False
    for caller_key, site in callers:
        if site.under_lock:
            continue
        # the call site itself is unlocked: safe only if the caller's
        # whole body provably runs under a lock its own callers hold
        if not _locked_only(program, caller_key, stack + (key,), memo):
            memo[key] = False
            return False
    memo[key] = True
    return True


@register
class CallerLockDiscipline(ProgramRule):
    id = "REP010"
    name = "caller-lock-discipline"
    summary = (
        "shared service state mutated without a proven lock-holding "
        "caller chain"
    )
    rationale = (
        "Private service methods mutate self._* state under a 'caller "
        "holds the lock' contract that no lexical check can enforce.  "
        "If even one caller chain reaches the mutation without the "
        "lock, two request threads can interleave mid-update and "
        "corrupt the cache or metrics — a race the test suite will "
        "essentially never reproduce.  The whole-program call graph "
        "proves (or refutes) the contract for every chain."
    )
    default_paths = ("repro/service/",)

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        memo: dict[tuple[str, str], bool] = {}
        for summary in program.modules.values():
            for fn in summary.functions:
                key = (summary.module, fn.qualname)
                if fn.is_method and _is_private_method(fn.qualname):
                    sites = [
                        m
                        for m in fn.mutations
                        if m.kind == "attr" and not m.under_lock
                    ]
                    what = f"`self.{{target}}` in private method `{fn.qualname}`"
                elif "." not in fn.qualname:
                    sites = [
                        m
                        for m in fn.mutations
                        if m.kind == "global" and not m.under_lock
                    ]
                    what = (
                        f"module global `{{target}}` in `{fn.qualname}`"
                    )
                else:
                    continue
                if not sites:
                    continue
                if _locked_only(program, key, (), memo):
                    continue
                for site in sites:
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule=self.id,
                        message=(
                            f"{site.detail} "
                            + what.format(target=site.target)
                            + " mutated without a proven lock-holding "
                            "caller chain; every resolved caller must "
                            "wrap the call in `with self._lock:` (or "
                            "the lock must be taken here)"
                        ),
                        snippet=site.snippet,
                        end_line=site.end_line,
                    )
