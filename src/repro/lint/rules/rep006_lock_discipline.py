"""REP006 — service state mutated outside a held lock.

:mod:`repro.service` is the one concurrent subsystem: the HTTP server
fans requests across threads, and the cache/metrics objects guard their
``self._*`` state with one ``threading.Lock`` each.  A mutation that
slips outside the ``with self._lock:`` block is a data race the test
suite will almost never catch (races hide behind the GIL until a
resize or preemption lands mid-update).  This rule enforces the
discipline lexically:

Flagged, inside any class in ``repro/service/``, outside ``__init__``:

* assignments and ``+=``-style updates to ``self._x`` (or an element of
  it), and
* calls of known mutating methods (``append``, ``add``, ``pop``,
  ``clear``, ``update``, ``move_to_end``, ``popitem``, ...) on
  ``self._x``

that are not lexically inside a ``with`` statement whose context
expression mentions a lock attribute (any name containing ``lock``).
``self._lock`` itself and ``__init__``/``__new__`` construction are
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["UnlockedServiceMutation"]

_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "observe",
    }
)

_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _self_private_attr(node: ast.expr) -> str | None:
    """``self._x`` (possibly behind a subscript) → ``_x``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
    ):
        return node.attr
    return None


def _mentions_lock(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


def _context(ctx: FileContext, node: ast.AST) -> tuple[bool, bool, bool]:
    """(in_class_method, in_exempt_method, under_lock) for ``node``."""
    in_method = False
    exempt = False
    under_lock = False
    seen_function = False
    for parent in ctx.parents(node):
        if isinstance(parent, ast.With) and any(
            _mentions_lock(item.context_expr) for item in parent.items
        ):
            under_lock = True
        if (
            isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not seen_function
        ):
            seen_function = True
            if parent.name in _EXEMPT_METHODS:
                exempt = True
            grand = getattr(parent, "_repro_parent", None)
            if isinstance(grand, ast.ClassDef):
                in_method = True
    return in_method, exempt, under_lock


@register
class UnlockedServiceMutation(Rule):
    id = "REP006"
    name = "unlocked-service-mutation"
    summary = (
        "self._* service state mutated outside a held threading.Lock "
        "context"
    )
    rationale = (
        "The feasibility service handles concurrent requests; cache and "
        "metrics state is documented as lock-guarded.  A mutation "
        "outside `with self._lock:` is a data race that stays invisible "
        "under the GIL until a dict resize or thread preemption lands "
        "mid-update and corrupts counters or evicts the wrong entry."
    )
    default_paths = ("repro/service/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            attr: str | None = None
            kind = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _self_private_attr(target)
                    if attr is not None:
                        break
                kind = "assignment to"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = _self_private_attr(node.func.value)
                kind = f"`.{node.func.attr}(...)` on"
            if attr is None or "lock" in attr.lower():
                continue
            in_method, exempt, under_lock = _context(ctx, node)
            if not in_method or exempt or under_lock:
                continue
            yield ctx.finding(
                self,
                node,
                f"{kind} `self.{attr}` outside a held lock; wrap the "
                "mutation in `with self._lock:` (service state is "
                "accessed from concurrent request threads)",
            )
