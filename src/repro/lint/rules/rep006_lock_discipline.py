"""REP006 — service state mutated outside a held lock.

:mod:`repro.service` is the one concurrent subsystem: the HTTP server
fans requests across threads, and the cache/metrics objects guard their
``self._*`` state with one ``threading.Lock`` each.  A mutation that
slips outside the ``with self._lock:`` block is a data race the test
suite will almost never catch (races hide behind the GIL until a
resize or preemption lands mid-update).  This rule enforces the
discipline lexically:

Flagged, inside any class in ``repro/service/``, outside ``__init__``:

* assignments and ``+=``-style updates to ``self._x`` (or an element of
  it), and
* calls of known mutating methods (``append``, ``add``, ``pop``,
  ``clear``, ``update``, ``move_to_end``, ``popitem``, ...) on
  ``self._x``

that are not lexically inside a ``with`` statement whose context
expression mentions a lock attribute (any name containing ``lock``) or
calls a recognized **lock helper** — a ``contextlib.contextmanager``
method/function whose body enters a lock (``with self._guard():``
where ``_guard`` wraps ``with self._lock:``).  ``self._lock`` itself
and ``__init__``/``__new__`` construction are exempt.

Scope split with REP010: this rule judges **public** methods, which a
request thread calls directly — the mutation must be lexically under
the lock.  Mutations in *private* methods (``_name``) are REP010's
jurisdiction: phase 2 proves (or refutes) that every caller chain
reaching the private method already holds the lock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ..summaries import (
    MUTATOR_METHODS as _MUTATORS,
    lock_helper_names,
    self_private_attr as _self_private_attr,
    with_item_locked,
)

__all__ = [
    "UnlockedServiceMutation",
    "lock_helper_names",
    "with_item_locked",
]

_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _context(
    ctx: FileContext, node: ast.AST, helpers: frozenset[str]
) -> tuple[bool, bool, bool, str]:
    """(in_class_method, exempt, under_lock, method_name) for ``node``."""
    in_method = False
    exempt = False
    under_lock = False
    method_name = ""
    seen_function = False
    for parent in ctx.parents(node):
        if isinstance(parent, ast.With) and any(
            with_item_locked(item.context_expr, helpers)
            for item in parent.items
        ):
            under_lock = True
        if (
            isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not seen_function
        ):
            seen_function = True
            method_name = parent.name
            if parent.name in _EXEMPT_METHODS:
                exempt = True
            grand = getattr(parent, "_repro_parent", None)
            if isinstance(grand, ast.ClassDef):
                in_method = True
    return in_method, exempt, under_lock, method_name


def _is_private(method_name: str) -> bool:
    """Private (REP010 jurisdiction): ``_name`` but not dunder."""
    return method_name.startswith("_") and not method_name.startswith("__")


@register
class UnlockedServiceMutation(Rule):
    id = "REP006"
    name = "unlocked-service-mutation"
    summary = (
        "self._* service state mutated outside a held threading.Lock "
        "context"
    )
    rationale = (
        "The feasibility service handles concurrent requests; cache and "
        "metrics state is documented as lock-guarded.  A mutation "
        "outside `with self._lock:` is a data race that stays invisible "
        "under the GIL until a dict resize or thread preemption lands "
        "mid-update and corrupts counters or evicts the wrong entry."
    )
    default_paths = ("repro/service/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        helpers = lock_helper_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            attr: str | None = None
            kind = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _self_private_attr(target)
                    if attr is not None:
                        break
                kind = "assignment to"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = _self_private_attr(node.func.value)
                kind = f"`.{node.func.attr}(...)` on"
            if attr is None or "lock" in attr.lower():
                continue
            in_method, exempt, under_lock, method = _context(ctx, node, helpers)
            if not in_method or exempt or under_lock:
                continue
            if _is_private(method):
                continue  # REP010 proves (or refutes) the caller chain
            yield ctx.finding(
                self,
                node,
                f"{kind} `self.{attr}` outside a held lock; wrap the "
                "mutation in `with self._lock:` (service state is "
                "accessed from concurrent request threads)",
            )
