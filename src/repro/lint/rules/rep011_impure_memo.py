"""REP011 — memoization wrapped around a function with inferred effects.

A memo cache (``functools.lru_cache``, the service LRU, a hand-rolled
``_CACHE[key] = value`` table) is a semantic claim: *same arguments,
same value, no observable side effects worth repeating*.  The claim is
silently wrong the moment the wrapped function — or anything it calls,
transitively — draws randomness, reads a clock, touches a file, blocks,
or mutates shared state.  The first call's environment is frozen into
the cache and every later call replays it: verdicts stop being a
function of the instance and start being a function of *history*, which
is exactly the bit-identity guarantee this system sells.

Phase 2's effect fixpoint supplies the transitive effect set; this rule
flags

* any function carrying a memoizing decorator whose effect set
  intersects the impure tags, and
* any function that both writes a memo-named module global (its own
  ``memo-write`` effect) *and* carries an impure tag — the hand-rolled
  cache filling itself from an impure computation.

``lock`` and ``memo-write`` alone are not impurity (guarding or filling
a cache is the point); everything else on the lattice is.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import ProjectGraph

__all__ = ["ImpureMemoization"]


def _chain_text(chain: tuple[str, ...]) -> str:
    if not chain:
        return ""
    return " via " + " -> ".join(f"`{hop}`" for hop in chain)


@register
class ImpureMemoization(ProgramRule):
    id = "REP011"
    name = "impure-memoization"
    summary = "memo cache wraps a function with inferred side effects"
    rationale = (
        "Caching an impure function freezes one call's environment "
        "(clock reading, RNG draw, file contents, global state) into "
        "every later result.  Verdicts then depend on call history "
        "instead of the instance — the exact failure mode the "
        "bit-identity guarantee exists to prevent, and one no test "
        "catches because each individual call looks right."
    )
    default_paths = ()  # everywhere outside tests

    def check_program(self, program: "ProjectGraph") -> Iterator[Finding]:
        from ..callgraph import IMPURE_TAGS

        for summary in program.modules.values():
            for fn in summary.functions:
                effects = program.effects(summary.module, fn.qualname)
                impure = sorted(set(effects) & IMPURE_TAGS)
                if not impure:
                    continue
                tag = impure[0]
                detail, chain = effects[tag]
                why = (
                    f"inferred effect `{tag}` ({detail}"
                    f"{_chain_text(chain)})"
                )
                if fn.memoized:
                    yield Finding(
                        path=summary.path,
                        line=fn.line,
                        col=1,
                        rule=self.id,
                        message=(
                            f"`@{fn.memoized}` memoizes `{fn.qualname}`, "
                            f"which is not pure: {why}; a memo freezes "
                            "the first call's environment into every "
                            "later result"
                        ),
                        snippet=fn.snippet,
                        end_line=fn.line,
                    )
                elif "memo-write" in effects and not effects["memo-write"][1]:
                    # hand-rolled cache: this function itself writes a
                    # memo-named global while carrying an impure effect
                    from ..summaries import _MEMO_NAME_RE

                    site = next(
                        (
                            m
                            for m in fn.mutations
                            if m.kind == "global"
                            and _MEMO_NAME_RE.search(m.target)
                        ),
                        None,
                    )
                    if site is None:  # pragma: no cover - defensive
                        continue
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule=self.id,
                        message=(
                            f"`{fn.qualname}` fills memo table "
                            f"`{site.target}` but is not pure: {why}; "
                            "cached entries will replay that effect's "
                            "first outcome forever"
                        ),
                        snippet=site.snippet,
                        end_line=site.end_line,
                    )
