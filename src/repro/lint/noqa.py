"""``# repro: noqa`` suppression comments.

Two forms, scanned per file:

* line suppression — ``# repro: noqa[REP001]`` (or ``# repro: noqa``
  for every rule) suppresses findings whose statement span covers the
  comment's line, so the comment may sit on the anchor line *or* on the
  closing line of a multi-line expression;
* file pragma — ``# repro: noqa-file[REP001]`` (or bare
  ``# repro: noqa-file``) anywhere in the file suppresses the rule(s)
  for the whole file.

Every suppression records whether it actually matched a finding;
unused ones are surfaced by ``repro lint --show-unused-noqa`` so a
suppression whose finding has since been fixed cannot silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["Suppression", "NoqaScanner", "apply_suppressions"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?"
    r"(?:\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\])?"
)


@dataclass
class Suppression:
    """One parsed noqa comment."""

    path: str
    #: 1-based line the comment sits on
    line: int
    #: None means "all rules"
    codes: tuple[str, ...] | None
    #: file-wide pragma vs line suppression
    file_level: bool
    #: did any finding actually hit this suppression?
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        if self.codes is not None and finding.rule not in self.codes:
            return False
        if self.file_level:
            return True
        # the whole statement span, so a suppression on the closing line
        # of a multi-line expression is honored too
        return finding.line <= self.line <= finding.last_line

    def render(self) -> str:
        scope = "file pragma" if self.file_level else "suppression"
        codes = ", ".join(self.codes) if self.codes else "all rules"
        return f"{self.path}:{self.line}: unused noqa {scope} [{codes}]"


class NoqaScanner:
    """Scan one file's source for suppressions and apply them."""

    def __init__(self, path: str, source: str) -> None:
        self.suppressions: list[Suppression] = []
        # Tokenize rather than regex-scan raw lines: a docstring that
        # merely *mentions* the suppression syntax must not suppress
        # anything (only genuine comment tokens count).
        for lineno, text in self._comments(source):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            codes_text = match.group("codes")
            codes = (
                tuple(c.strip() for c in codes_text.split(","))
                if codes_text
                else None
            )
            self.suppressions.append(
                Suppression(
                    path=path,
                    line=lineno,
                    codes=codes,
                    file_level=match.group("file") is not None,
                )
            )

    @staticmethod
    def _comments(source: str) -> list[tuple[int, str]]:
        """(lineno, text) of every ``#`` comment token in ``source``."""
        out: list[tuple[int, str]] = []
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    out.append((tok.start[0], tok.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # the engine reports the parse error; nothing to suppress here
            pass
        return out

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Active findings after suppression; marks matched noqas used."""
        return apply_suppressions(findings, self.suppressions)

    @property
    def unused(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Active findings after suppression; marks matched noqas used.

    Module-level so the engine can apply cached suppression lists
    without re-tokenizing the source.
    """
    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for supp in suppressions:
            if supp.matches(finding):
                supp.used = True
                suppressed = True
                # keep checking: several noqas may cover one line and
                # all of them legitimately count as used
        if not suppressed:
            kept.append(finding)
    return kept
