"""Lint configuration: CLI flags layered over ``[tool.repro-lint]``.

``pyproject.toml`` may carry project defaults::

    [tool.repro-lint]
    select = ["REP001", "REP004"]   # default: every rule
    ignore = ["REP005"]
    baseline = "lint-baseline.json"

    [tool.repro-lint.rules.REP003]
    include = ["repro/experiments/", "repro/oracle/"]

    [tool.repro-lint.registries]          # REP009 surfaces beyond the
    "repro.plugins" = "p*"                # built-in defaults

CLI flags override file values.  ``tomllib`` ships with Python 3.11+;
on 3.10 the pyproject section is skipped (flags still work) — the
repository pins nothing on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["LintConfig", "load_pyproject_config"]

#: default baseline filename looked up next to the lint root
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    #: directory paths are resolved against (repo root in CI/tests)
    root: Path = field(default_factory=Path.cwd)
    #: rule ids to run (None = all registered)
    select: tuple[str, ...] | None = None
    #: rule ids to drop after selection
    ignore: tuple[str, ...] | None = None
    #: baseline file path, or None to run baseline-free
    baseline_path: Path | None = None
    #: per-rule include-path overrides (rule id → path fragments)
    rule_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: report unused noqa suppressions / stale baseline entries as errors
    show_unused_noqa: bool = False
    #: phase-1 worker processes (1 = in-process; 0/None = all cores)
    jobs: int = 1
    #: incremental-cache file, or None to run cache-free
    cache_path: Path | None = None
    #: extra registry packages for REP009 (package → fnmatch pattern),
    #: merged over the rule's built-in defaults
    registries: dict[str, str] = field(default_factory=dict)

    def include_for(self, rule_id: str) -> tuple[str, ...] | None:
        return self.rule_paths.get(rule_id)

    def registry_map(self) -> dict[str, str]:
        """Built-in REP009 registries merged with configured extras."""
        from .rules.rep009_orphaned_registration import DEFAULT_REGISTRIES

        merged = dict(DEFAULT_REGISTRIES)
        merged.update(self.registries)
        return merged


def load_pyproject_config(root: Path) -> dict[str, Any]:
    """``[tool.repro-lint]`` from ``root/pyproject.toml`` (or ``{}``).

    Returns ``{}`` when the file or section is absent — and on Python
    3.10, where stdlib ``tomllib`` does not exist (the section is a
    convenience, not a correctness dependency).
    """
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        return {}
    try:
        data = tomllib.loads(pyproject.read_text())
    except tomllib.TOMLDecodeError:
        return {}
    section = data.get("tool", {}).get("repro-lint", {})
    return section if isinstance(section, dict) else {}


def config_from_sources(
    root: Path,
    *,
    select: tuple[str, ...] | None = None,
    ignore: tuple[str, ...] | None = None,
    baseline: Path | None = None,
    no_baseline: bool = False,
    show_unused_noqa: bool = False,
    jobs: int = 1,
    cache: Path | None = None,
) -> LintConfig:
    """Layer CLI arguments over the pyproject section."""
    file_cfg = load_pyproject_config(root)
    if select is None and isinstance(file_cfg.get("select"), list):
        select = tuple(str(r) for r in file_cfg["select"])
    if ignore is None and isinstance(file_cfg.get("ignore"), list):
        ignore = tuple(str(r) for r in file_cfg["ignore"])
    rule_paths: dict[str, tuple[str, ...]] = {}
    rules_cfg = file_cfg.get("rules")
    if isinstance(rules_cfg, dict):
        for rid, sub in rules_cfg.items():
            if isinstance(sub, dict) and isinstance(sub.get("include"), list):
                rule_paths[str(rid)] = tuple(str(p) for p in sub["include"])
    registries: dict[str, str] = {}
    registries_cfg = file_cfg.get("registries")
    if isinstance(registries_cfg, dict):
        for pkg, pattern in registries_cfg.items():
            if isinstance(pattern, str):
                registries[str(pkg)] = pattern
    baseline_path: Path | None = None
    if not no_baseline:
        if baseline is not None:
            baseline_path = baseline
        else:
            configured = file_cfg.get("baseline")
            candidate = (
                root / str(configured)
                if isinstance(configured, str)
                else root / DEFAULT_BASELINE
            )
            if candidate.is_file():
                baseline_path = candidate
    return LintConfig(
        root=root,
        select=select,
        ignore=ignore,
        baseline_path=baseline_path,
        rule_paths=rule_paths,
        show_unused_noqa=show_unused_noqa,
        jobs=jobs,
        cache_path=cache,
        registries=registries,
    )
