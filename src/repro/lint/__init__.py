"""``repro.lint`` — AST-based reproducibility lint for this codebase.

A ``ruff``-style static analyzer whose rules encode the numerical- and
determinism-discipline invariants the repository's empirical methodology
depends on (bit-reproducible acceptance-ratio campaigns, tolerance-
unified feasibility verdicts, lock-disciplined service state).  Every
rule is grounded in a bug class this repo has actually had; see
``docs/lint.md`` for the catalogue.

Layers
------
:mod:`~repro.lint.findings`
    The :class:`~repro.lint.findings.Finding` record and its
    baseline fingerprint.
:mod:`~repro.lint.typeinfer`
    Heuristic per-scope type inference (float / float-sequence / set)
    that the rules query instead of guessing from spellings.
:mod:`~repro.lint.registry`
    The rule protocol and the ``REPxxx`` registry.
:mod:`~repro.lint.rules`
    The six domain rules, REP001-REP006.
:mod:`~repro.lint.noqa`
    ``# repro: noqa[REPxxx]`` line suppressions and
    ``# repro: noqa-file[REPxxx]`` file pragmas, with unused-suppression
    tracking.
:mod:`~repro.lint.baseline`
    The committed grandfather file (snippet-fingerprinted so findings
    survive line drift, and stale entries are reported rather than
    rotting silently).
:mod:`~repro.lint.engine`
    Orchestration: walk files, parse, infer, run rules, apply
    suppressions and the baseline.
:mod:`~repro.lint.reporters`
    text / JSON / SARIF 2.1.0 output.
:mod:`~repro.lint.selftest`
    Fault injection: plant one violation per rule, assert it is caught
    at the right file/line.
"""

from __future__ import annotations

from .baseline import Baseline
from .config import LintConfig
from .engine import LintResult, lint_paths, lint_source
from .findings import Finding
from .registry import Rule, all_rules, get_rule
from .selftest import run_self_test

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "run_self_test",
]
