"""``repro.lint`` — AST-based reproducibility lint for this codebase.

A ``ruff``-style static analyzer whose rules encode the numerical- and
determinism-discipline invariants the repository's empirical methodology
depends on (bit-reproducible acceptance-ratio campaigns, tolerance-
unified feasibility verdicts, lock-disciplined service state).  Every
rule is grounded in a bug class this repo has actually had; see
``docs/lint.md`` for the catalogue.

Layers
------
:mod:`~repro.lint.findings`
    The :class:`~repro.lint.findings.Finding` record and its
    baseline fingerprint.
:mod:`~repro.lint.typeinfer`
    Heuristic per-scope type inference (float / float-sequence / set)
    that the rules query instead of guessing from spellings.
:mod:`~repro.lint.registry`
    The rule protocol (per-file and whole-program) and the ``REPxxx``
    registry.
:mod:`~repro.lint.summaries`
    Phase 1's interprocedural output: per-module summaries of imports,
    function facts (produces-float, derives-from-trial-seed,
    holds-lock), and the pending sites phase 2 judges.
:mod:`~repro.lint.callgraph`
    Phase 2's project graph: import edges, cross-module call
    resolution, the float/seed fixpoints, registry reachability.
:mod:`~repro.lint.cache`
    The incremental cache — content-hash keyed, invalidated
    transitively along the import graph.
:mod:`~repro.lint.rules`
    The nine domain rules: REP001-REP006 per file, REP007-REP009
    whole-program.
:mod:`~repro.lint.noqa`
    ``# repro: noqa[REPxxx]`` line suppressions and
    ``# repro: noqa-file[REPxxx]`` file pragmas, with unused-suppression
    tracking.
:mod:`~repro.lint.baseline`
    The committed grandfather file (snippet-fingerprinted so findings
    survive line drift, and stale entries are reported rather than
    rotting silently).
:mod:`~repro.lint.engine`
    Two-phase orchestration: the parallelizable, cacheable per-file
    phase, then the whole-program phase over the project graph, then
    suppressions and the baseline on the merged findings.
:mod:`~repro.lint.reporters`
    text / JSON / SARIF 2.1.0 output.
:mod:`~repro.lint.selftest`
    Fault injection: plant one violation per rule, assert it is caught
    at the right file/line.
"""

from __future__ import annotations

from .baseline import Baseline
from .callgraph import ProjectGraph
from .config import LintConfig
from .engine import (
    EngineStats,
    LintResult,
    lint_changed,
    lint_paths,
    lint_source,
    lint_sources,
)
from .findings import Finding
from .registry import ProgramRule, Rule, all_rules, get_rule
from .selftest import run_self_test

__all__ = [
    "Baseline",
    "EngineStats",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProgramRule",
    "ProjectGraph",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_changed",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "run_self_test",
]
