"""The finding record every rule emits and reporters consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports are stable regardless
    of rule execution order.
    """

    #: posix path relative to the lint root (the baseline key space)
    path: str
    #: 1-based source line
    line: int
    #: 1-based source column
    col: int
    #: rule identifier, e.g. ``REP001``
    rule: str
    #: human-readable description of this violation
    message: str = field(compare=False)
    #: the stripped source line (used for baseline fingerprinting)
    snippet: str = field(compare=False, default="")
    #: last line of the enclosing statement (``0`` means "same as line");
    #: noqa suppressions anywhere in ``line..end_line`` match
    end_line: int = field(compare=False, default=0)

    @property
    def last_line(self) -> int:
        """End of the suppression span (at least the anchor line)."""
        return max(self.line, self.end_line)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Keyed on (path, rule, stripped source text) so a finding keeps
        matching its baseline entry when unrelated edits shift line
        numbers, but stops matching — and resurfaces — the moment the
        offending line itself changes.
        """
        return (self.path, self.rule, self.snippet)

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "end_line": self.last_line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """``path:line:col: REPxxx message`` (the text reporter line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
