"""Heuristic per-scope type inference for the lint rules.

The rules need to answer "is this expression float-valued?" (REP001,
REP004) and "is this expression a set?" (REP005) without running the
code.  Full type inference is out of scope; instead a forward pass over
each lexical scope propagates three kinds through the obvious channels:

* ``FLOAT`` — float scalars: float literals, division, ``math.*``
  results, known float attributes of the domain model (``utilization``,
  ``speed``, ...), annotated ``float`` parameters, and names assigned
  from any of those;
* ``FLOAT_SEQ`` — sequences of floats: ``[0.0] * m``, list/tuple
  literals of floats, comprehensions with float elements,
  ``sorted(<floats>)``, ``np.zeros`` and friends — so that
  ``loads[j]`` infers ``FLOAT``;
* ``SET`` — ``set``/``frozenset`` values: literals, comprehensions,
  constructor calls, and annotated names.

The pass is deliberately conservative: an expression it cannot classify
gets ``None`` and the rules stay silent.  False negatives are the cost
of near-zero false positives — the same trade every production linter
makes.
"""

from __future__ import annotations

import ast
from typing import Final

__all__ = ["FLOAT", "FLOAT_SEQ", "SET", "TypeInference"]

FLOAT: Final = "float"
FLOAT_SEQ: Final = "float_seq"
SET: Final = "set"

#: Attributes of the domain model that are float-valued wherever they
#: appear (Task/TaskSet/Machine/Platform/report fields and aliases).
FLOAT_ATTRS: Final[frozenset[str]] = frozenset(
    {
        "utilization",
        "total_utilization",
        "max_utilization",
        "density",
        "total_density",
        "wcet",
        "period",
        "deadline",
        "speed",
        "total_speed",
        "fastest_speed",
        "slowest_speed",
        "heterogeneity_ratio",
        "load",
        "stress",
        "alpha",
        "slack",
        "total",
        "wall_time",
        "cpu_time",
        "hit_ratio",
    }
)

#: Module-level constant names that are floats in this codebase.
FLOAT_NAMES: Final[frozenset[str]] = frozenset(
    {"EPS", "LP_TOL", "SQRT2", "LN2"}
)

#: Bare-name calls returning floats.
FLOAT_FUNCS: Final[frozenset[str]] = frozenset({"float", "fsum", "hypot"})

#: ``math.<fn>`` calls returning floats (``floor``/``ceil``/``lcm``
#: return ints in Python 3 and are deliberately absent).
FLOAT_MATH_FUNCS: Final[frozenset[str]] = frozenset(
    {
        "fsum",
        "sqrt",
        "log",
        "log1p",
        "log2",
        "log10",
        "exp",
        "expm1",
        "fabs",
        "hypot",
        "pow",
        "copysign",
        "fmod",
        "dist",
    }
)

#: ``np.<fn>`` / ``numpy.<fn>`` calls returning float arrays.
FLOAT_SEQ_NUMPY_FUNCS: Final[frozenset[str]] = frozenset(
    {"zeros", "ones", "full", "linspace", "geomspace", "logspace", "array"}
)

#: min/max/abs/sum propagate floatness from their arguments.
_PROPAGATING_FUNCS: Final[frozenset[str]] = frozenset({"min", "max", "abs", "sum"})


def _func_name(call: ast.Call) -> str | None:
    """Bare name of the called function, if it is a plain ``Name``."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _attr_call(call: ast.Call) -> tuple[str, str] | None:
    """``(base_name, attr)`` for single-dot calls like ``math.sqrt(x)``."""
    if isinstance(call.func, ast.Attribute) and isinstance(
        call.func.value, ast.Name
    ):
        return call.func.value.id, call.func.attr
    return None


def _is_scope(node: ast.AST) -> bool:
    return isinstance(
        node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    )


def _annotation_kind(ann: ast.expr | None) -> str | None:
    """Kind implied by a type annotation, if any."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        if ann.id == "float":
            return FLOAT
        if ann.id in ("set", "frozenset"):
            return SET
    if isinstance(ann, ast.Subscript) and isinstance(ann.value, ast.Name):
        base = ann.value.id
        if base in ("set", "frozenset", "Set", "FrozenSet", "MutableSet"):
            return SET
        if base in ("list", "tuple", "List", "Tuple", "Sequence"):
            inner = ann.slice
            if isinstance(inner, ast.Name) and inner.id == "float":
                return FLOAT_SEQ
            if isinstance(inner, ast.Tuple) and all(
                isinstance(e, ast.Name) and e.id == "float"
                for e in inner.elts
                if not isinstance(e, ast.Constant)
            ):
                return FLOAT_SEQ
    return None


class TypeInference:
    """Scope-aware kind inference for one parsed module.

    Build once per file; query with :meth:`kind_of` / :meth:`is_float` /
    :meth:`is_set`.  Requires parent links (``_repro_parent``) on the
    tree, which :mod:`repro.lint.engine` attaches before running rules.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._envs: dict[ast.AST, dict[str, str]] = {}
        self._build_scope(tree, parent_env=None)

    # -- scope construction -------------------------------------------------

    def _build_scope(
        self, scope: ast.AST, parent_env: dict[str, str] | None
    ) -> None:
        env: dict[str, str] = dict(parent_env or {})
        self._envs[scope] = env
        args = getattr(scope, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                kind = _annotation_kind(arg.annotation)
                if kind is not None:
                    env[arg.arg] = kind
        body = getattr(scope, "body", [])
        if isinstance(body, list):
            self._walk_statements(body, env)

    def _walk_statements(self, stmts: list[ast.stmt], env: dict[str, str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._build_scope(stmt, parent_env=env)
                continue
            if isinstance(stmt, ast.ClassDef):
                # class bodies share the enclosing env read-only; their
                # methods each get a child scope.
                self._walk_statements(stmt.body, dict(env))
                continue
            self._bind_expressions(stmt, env)
            if isinstance(stmt, ast.Assign):
                kind = self.kind_in_env(stmt.value, env)
                if kind is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = kind
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                kind = _annotation_kind(stmt.annotation)
                if kind is None and stmt.value is not None:
                    kind = self.kind_in_env(stmt.value, env)
                if kind is not None:
                    env[stmt.target.id] = kind
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # kind propagation: `x /= m` is float regardless of x,
                # `x += 0.5` promotes x, `count += 1` stays unknown
                if isinstance(stmt.op, ast.Div):
                    env[stmt.target.id] = FLOAT
                elif (
                    self.kind_in_env(stmt.value, env) == FLOAT
                    or env.get(stmt.target.id) == FLOAT
                ):
                    env[stmt.target.id] = FLOAT
            # recurse into compound statements (same lexical scope)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self._walk_statements(
                        [s for s in inner if isinstance(s, ast.stmt)], env
                    )
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    self._walk_statements(handler.body, env)
            items = getattr(stmt, "items", None)
            if items:  # with-statement: `as` targets stay unknown
                pass

    def _bind_expressions(self, stmt: ast.stmt, env: dict[str, str]) -> None:
        """Expression-level bindings inside one statement.

        Walrus targets bind in the enclosing scope; comprehensions get a
        child environment (registered in ``_envs``) carrying their loop
        targets, so ``loads[j]``-style element kinds survive into the
        comprehension body.  Nested function bodies are handled by their
        own scope and skipped here.
        """
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # its own scope; _build_scope handles it
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                kind = self.kind_in_env(node.value, env)
                if kind is not None:
                    env[node.target.id] = kind
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                comp_env = dict(env)
                for gen in node.generators:
                    if (
                        isinstance(gen.target, ast.Name)
                        and self.kind_in_env(gen.iter, comp_env) == FLOAT_SEQ
                    ):
                        comp_env[gen.target.id] = FLOAT
                self._envs[node] = comp_env

    # -- queries ------------------------------------------------------------

    def env_for(self, node: ast.AST) -> dict[str, str]:
        """Environment of the nearest enclosing scope of ``node``."""
        cur: ast.AST | None = node
        while cur is not None:
            if cur in self._envs:
                return self._envs[cur]
            cur = getattr(cur, "_repro_parent", None)
        return {}

    def kind_of(self, node: ast.expr) -> str | None:
        return self.kind_in_env(node, self.env_for(node))

    def is_float(self, node: ast.expr) -> bool:
        return self.kind_of(node) == FLOAT

    def is_set(self, node: ast.expr) -> bool:
        return self.kind_of(node) == SET

    # -- expression inference -----------------------------------------------

    def kind_in_env(
        self, node: ast.expr, env: dict[str, str]
    ) -> str | None:  # noqa: C901 - one dispatch table, clearer flat
        if isinstance(node, ast.Constant):
            return FLOAT if isinstance(node.value, float) else None
        if isinstance(node, ast.Name):
            if node.id in FLOAT_NAMES:
                return FLOAT
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in FLOAT_ATTRS:
                return FLOAT
            if node.attr in ("inf", "nan", "pi", "e", "tau") and isinstance(
                node.value, ast.Name
            ):
                return FLOAT
            return None
        if isinstance(node, ast.UnaryOp):
            return self.kind_in_env(node.operand, env)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return FLOAT
            left = self.kind_in_env(node.left, env)
            right = self.kind_in_env(node.right, env)
            if FLOAT in (left, right):
                return FLOAT
            # [0.0] * m and friends
            if isinstance(node.op, (ast.Mult, ast.Add)) and FLOAT_SEQ in (
                left,
                right,
            ):
                return FLOAT_SEQ
            return None
        if isinstance(node, ast.NamedExpr):
            return self.kind_in_env(node.value, env)
        if isinstance(node, ast.IfExp):
            return self.kind_in_env(node.body, env) or self.kind_in_env(
                node.orelse, env
            )
        if isinstance(node, (ast.List, ast.Tuple)):
            kinds = [self.kind_in_env(e, env) for e in node.elts]
            if kinds and all(k == FLOAT for k in kinds):
                return FLOAT_SEQ
            return None
        if isinstance(node, ast.Set):
            return SET
        if isinstance(node, ast.SetComp):
            return SET
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # the comprehension's own env (with loop targets bound) when
            # the binding pass saw it; the enclosing env otherwise
            if self.kind_in_env(node.elt, self._envs.get(node, env)) == FLOAT:
                return FLOAT_SEQ
            return None
        if isinstance(node, ast.Subscript):
            base = self.kind_in_env(node.value, env)
            if base == FLOAT_SEQ and not isinstance(node.slice, ast.Slice):
                return FLOAT
            if base == FLOAT_SEQ and isinstance(node.slice, ast.Slice):
                return FLOAT_SEQ
            return None
        if isinstance(node, ast.Call):
            return self._call_kind(node, env)
        return None

    def _call_kind(self, node: ast.Call, env: dict[str, str]) -> str | None:
        name = _func_name(node)
        if name is not None:
            if name in FLOAT_FUNCS:
                return FLOAT
            if name in ("set", "frozenset"):
                return SET
            if name in _PROPAGATING_FUNCS:
                for arg in node.args:
                    kind = self.kind_in_env(arg, env)
                    if kind == FLOAT:
                        return FLOAT
                    if kind == FLOAT_SEQ:
                        return FLOAT
                return None
            if name in ("sorted", "list", "tuple", "reversed"):
                if node.args and self.kind_in_env(node.args[0], env) in (
                    FLOAT_SEQ,
                    SET,  # sorted(set-of-floats) → ordered list
                ):
                    return FLOAT_SEQ
                return None
            if name == "reduce":
                return self._reduce_kind(node, env)
            return None
        dotted = _attr_call(node)
        if dotted is not None:
            base, attr = dotted
            if base == "math" and attr in FLOAT_MATH_FUNCS:
                return FLOAT
            if base in ("np", "numpy") and attr in FLOAT_SEQ_NUMPY_FUNCS:
                return FLOAT_SEQ
            if base == "functools" and attr == "reduce":
                return self._reduce_kind(node, env)
        return None

    def _reduce_kind(self, node: ast.Call, env: dict[str, str]) -> str | None:
        """``reduce(op, floats[, initial])`` folds to a float."""
        if len(node.args) >= 2 and self.kind_in_env(node.args[1], env) == FLOAT_SEQ:
            return FLOAT
        if len(node.args) >= 3 and self.kind_in_env(node.args[2], env) == FLOAT:
            return FLOAT
        return None
