"""Two-phase lint orchestration.

Phase 1 — per file, embarrassingly parallel, cacheable:
parse → attach parents → type inference → per-file rules → noqa scan →
module summary.  The complete output for one file is a picklable
:class:`FileAnalysis`, which makes three execution strategies
interchangeable without changing results:

* in-process (``jobs=1``, the default — zero pool overhead);
* a process pool via :func:`repro.runner.executor.run_trials`, whose
  positional reduction guarantees the parallel run is bit-identical to
  the serial one;
* the incremental cache (:mod:`repro.lint.cache`), which replays a
  prior run's ``FileAnalysis`` for content-identical modules whose
  transitive project imports are also unchanged.

Phase 2 — whole program, always fresh: build the
:class:`~repro.lint.callgraph.ProjectGraph` from every module summary
and run the :class:`~repro.lint.registry.ProgramRule` set (REP007-013)
over it.  Phase 2 is a pure function of the summaries — including the
effect-inference fixpoint behind REP010-013 — so caching phase 1 can
never change interprocedural findings.

Suppression, baseline absorption, and sorting happen last, on the
merged per-file + program findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

from .baseline import Baseline, BaselineEntry
from .cache import LintCache, content_hash
from .callgraph import ProjectGraph
from .config import LintConfig
from .findings import Finding
from .noqa import NoqaScanner, Suppression, apply_suppressions
from .registry import FileContext, ProgramRule, Rule, resolve_selection
from .summaries import ModuleSummary, build_module_summary

__all__ = [
    "EngineStats",
    "FileAnalysis",
    "LintResult",
    "lint_changed",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "iter_python_files",
]

#: directories never descended into
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", ".eggs", "build"}
)


@dataclass
class EngineStats:
    """How phase 1 was executed (the cache/parallelism audit trail)."""

    #: files in the run
    files: int = 0
    #: files actually analyzed this run
    analyzed: int = 0
    #: files replayed from the incremental cache
    cache_hits: int = 0
    #: files whose own content was unchanged but re-analyzed because a
    #: transitive project import changed
    cache_invalidated: int = 0
    #: worker processes used for the analyzed files
    jobs: int = 1
    #: rounds the phase-2 effect fixpoint took to converge (deterministic
    #: for a given program, so safe to expose in machine-readable output)
    fixpoint_iterations: int = 0
    #: rounds the phase-2 unit (return-dimension) fixpoint took — also
    #: a pure function of the summaries, deterministic across jobs/cache
    unit_fixpoint_iterations: int = 0
    #: wall-clock seconds per program rule, keyed by rule id — timing
    #: noise, so surfaced only by the CLI ``--stats`` line and kept out
    #: of :meth:`as_dict` (JSON output stays bit-identical across runs)
    rule_timings: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        return {
            "files": self.files,
            "analyzed": self.analyzed,
            "cache_hits": self.cache_hits,
            "cache_invalidated": self.cache_invalidated,
            "jobs": self.jobs,
            "fixpoint_iterations": self.fixpoint_iterations,
            "unit_fixpoint_iterations": self.unit_fixpoint_iterations,
        }


@dataclass
class FileAnalysis:
    """Phase 1's complete output for one file (picklable, cacheable)."""

    path: str
    #: sorted raw per-file-rule findings (pre-noqa, pre-baseline)
    findings: list[Finding] = field(default_factory=list)
    #: pristine suppressions (``used`` flags are applied on fresh copies)
    suppressions: list[Suppression] = field(default_factory=list)
    summary: ModuleSummary | None = None
    #: parse/decode error message, mutually exclusive with the rest
    error: str | None = None


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: findings still active after noqa + baseline
    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by inline/file noqa comments
    suppressed: int = 0
    #: findings absorbed by the baseline
    baselined: int = 0
    #: noqa comments that matched nothing
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: baseline entries that matched nothing
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: files that failed to parse: (path, message)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: number of files linted
    files: int = 0
    #: phase-1 execution accounting
    stats: EngineStats = field(default_factory=EngineStats)

    def exit_code(self, *, fail_on_unused: bool = False) -> int:
        if self.findings or self.parse_errors:
            return 1
        if fail_on_unused and (self.unused_suppressions or self.stale_baseline):
            return 1
        return 0


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``_repro_parent`` link (rules walk ancestry)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def iter_python_files(paths: Sequence[Path], root: Path) -> list[Path]:
    """All ``.py`` files under ``paths`` (resolved against ``root``),
    sorted for deterministic report order."""
    out: set[Path] = set()
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
    return sorted(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# ---------------------------------------------------------------------------
# phase 1
# ---------------------------------------------------------------------------


def _file_rules(rules: Sequence[Rule]) -> list[Rule]:
    return [r for r in rules if not isinstance(r, ProgramRule)]


def _analyze_file(rel_path: str, source: str, config: LintConfig) -> FileAnalysis:
    """Run phase 1 on one file.  Never raises: errors become records."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return FileAnalysis(path=rel_path, error=str(exc))
    attach_parents(tree)
    ctx = FileContext(rel_path, source, tree)
    rules = _file_rules(list(resolve_selection(config.select, config.ignore).values()))
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel_path, config.include_for(rule.id)):
            continue
        findings.extend(rule.check(ctx))
    return FileAnalysis(
        path=rel_path,
        findings=sorted(findings),
        suppressions=NoqaScanner(rel_path, source).suppressions,
        summary=build_module_summary(ctx),
    )


def _pool_analyze(item: tuple[str, str, LintConfig]) -> FileAnalysis:
    """Module-level per-trial function for the process pool."""
    rel_path, source, config = item
    return _analyze_file(rel_path, source, config)


def _run_phase1(
    sources: Mapping[str, str], config: LintConfig, jobs: int
) -> dict[str, FileAnalysis]:
    """Analyze every file, serially or over the runner's process pool.

    The pool path reuses :func:`repro.runner.executor.run_trials`, whose
    positional reduction makes worker completion order irrelevant — the
    parallel analyses land in the same order the serial loop would
    produce them, so downstream merging is bit-identical.
    """
    items = [(rel, sources[rel], config) for rel in sorted(sources)]
    if jobs == 1 or len(items) <= 1:
        return {rel: _analyze_file(rel, src, cfg) for rel, src, cfg in items}
    from repro.runner.executor import run_trials

    run = run_trials(_pool_analyze, items, jobs=jobs, label="lint-phase1")
    return {item[0]: analysis for item, analysis in zip(items, run.records)}


# ---------------------------------------------------------------------------
# phase 2
# ---------------------------------------------------------------------------


def _run_phase2(
    analyses: Mapping[str, FileAnalysis],
    config: LintConfig,
    stats: EngineStats | None = None,
) -> dict[str, list[Finding]]:
    """Program-rule findings grouped by path.

    Always computed fresh: the project graph is rebuilt from the (new or
    cached) summaries every run, so interprocedural verdicts can never
    go stale even when every file was a cache hit.  When ``stats`` is
    given, per-rule wall time and the effect fixpoint's iteration count
    are recorded on it for the ``--stats`` report.
    """
    from time import perf_counter

    summaries = [a.summary for a in analyses.values() if a.summary is not None]
    graph = ProjectGraph(summaries, config.registry_map())
    rules = resolve_selection(config.select, config.ignore).values()
    by_path: dict[str, list[Finding]] = {}
    for rule in rules:
        if not isinstance(rule, ProgramRule):
            continue
        started = perf_counter()
        for finding in rule.check_program(graph):
            if finding.path not in analyses:
                continue
            if not rule.applies_to(
                finding.path, config.include_for(rule.id)
            ):
                continue
            by_path.setdefault(finding.path, []).append(finding)
        if stats is not None:
            stats.rule_timings[rule.id] = perf_counter() - started
    if stats is not None:
        stats.fixpoint_iterations = graph.effect_iterations
        stats.unit_fixpoint_iterations = graph.unit_iterations
    return by_path


def _build_graph(
    analyses: Mapping[str, FileAnalysis], config: LintConfig
) -> ProjectGraph:
    summaries = [a.summary for a in analyses.values() if a.summary is not None]
    return ProjectGraph(summaries, config.registry_map())


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    virtual_path: str,
    config: LintConfig | None = None,
    *,
    apply_noqa: bool = True,
) -> list[Finding]:
    """Lint a source string with the per-file rules only.

    The backbone of the single-file fixture tests and the per-file half
    of the fault-injection self-test: rule path scoping applies to the
    virtual path, no filesystem or baseline involved.  Program rules
    need a program — use :func:`lint_sources` for those.
    """
    config = config or LintConfig()
    analysis = _analyze_file(virtual_path, source, config)
    if analysis.error is not None:
        raise SyntaxError(analysis.error)
    findings = analysis.findings
    if apply_noqa:
        findings = apply_suppressions(findings, analysis.suppressions)
    return findings


def lint_sources(
    files: Mapping[str, str],
    config: LintConfig | None = None,
    *,
    apply_noqa: bool = True,
) -> list[Finding]:
    """Lint a set of in-memory modules as one whole program.

    Runs both phases — per-file rules and the interprocedural REP007+
    set — exactly like :func:`lint_paths`, but with no filesystem,
    cache, or baseline.  This is how the multi-module fixtures and the
    planted-program self-test drive the analyzer.
    """
    config = config or LintConfig()
    analyses = {
        path: _analyze_file(path, source, config)
        for path, source in files.items()
    }
    for path, analysis in analyses.items():
        if analysis.error is not None:
            raise SyntaxError(f"{path}: {analysis.error}")
    program = _run_phase2(analyses, config)
    out: list[Finding] = []
    for path in sorted(analyses):
        analysis = analyses[path]
        findings = sorted(analysis.findings + program.get(path, []))
        if apply_noqa:
            findings = apply_suppressions(findings, analysis.suppressions)
        out.extend(findings)
    return sorted(out)


def _config_key(config: LintConfig) -> str:
    """Rule-selection fingerprint for the cache (see LintCache)."""
    return repr(
        (
            tuple(config.select) if config.select is not None else None,
            tuple(config.ignore) if config.ignore is not None else None,
            tuple(sorted((k, v) for k, v in config.rule_paths.items())),
        )
    )


def _gather_sources(
    paths: Sequence[Path | str], config: LintConfig
) -> tuple[dict[str, str], list[tuple[str, str]]]:
    """Read every file under ``paths``: (sources by rel path, read errors)."""
    sources: dict[str, str] = {}
    errors: list[tuple[str, str]] = []
    for path in iter_python_files([Path(p) for p in paths], config.root):
        rel_path = _relpath(path, config.root)
        try:
            sources[rel_path] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append((rel_path, str(exc)))
    return sources, errors


def _analyze_with_cache(
    sources: Mapping[str, str], config: LintConfig
) -> tuple[dict[str, FileAnalysis], EngineStats]:
    """Phase 1 over ``sources``, consulting the incremental cache."""
    from repro.runner.executor import resolve_jobs

    jobs = resolve_jobs(config.jobs)
    stats = EngineStats(files=len(sources), jobs=jobs)
    hashes = {rel: content_hash(src) for rel, src in sources.items()}
    cache = (
        LintCache(config.cache_path, _config_key(config))
        if config.cache_path is not None
        else None
    )
    analyses: dict[str, FileAnalysis] = {}
    if cache is not None:
        valid, invalidated = cache.partition(hashes)
        stats.cache_hits = len(valid)
        stats.cache_invalidated = len(invalidated)
        for rel in valid:
            analyses[rel] = cache.payload(rel)
    to_analyze = {rel: src for rel, src in sources.items() if rel not in analyses}
    stats.analyzed = len(to_analyze)
    fresh = _run_phase1(to_analyze, config, jobs)
    analyses.update(fresh)
    if cache is not None:
        for rel, analysis in fresh.items():
            imports = (
                analysis.summary.imports if analysis.summary is not None else ()
            )
            cache.store(rel, hashes[rel], imports, analysis)
        cache.prune(set(hashes))
        cache.save()
    return analyses, stats


def _merge_result(
    analyses: Mapping[str, FileAnalysis],
    program: Mapping[str, list[Finding]],
    config: LintConfig,
    stats: EngineStats,
    read_errors: Sequence[tuple[str, str]] = (),
) -> LintResult:
    """Noqa + baseline + sort over the merged two-phase findings."""
    result = LintResult(stats=stats)
    result.parse_errors.extend(read_errors)
    baseline = (
        Baseline.load(config.baseline_path)
        if config.baseline_path is not None
        else None
    )
    for rel in sorted(analyses):
        analysis = analyses[rel]
        if analysis.error is not None:
            result.parse_errors.append((rel, analysis.error))
            continue
        result.files += 1
        raw = sorted(analysis.findings + program.get(rel, []))
        # fresh copies: cached suppressions must not carry `used` flags
        # from a previous run into this one
        suppressions = [replace(s, used=False) for s in analysis.suppressions]
        active = apply_suppressions(raw, suppressions)
        result.suppressed += len(raw) - len(active)
        if baseline is not None:
            before = len(active)
            active = baseline.absorb(active)
            result.baselined += before - len(active)
        result.findings.extend(active)
        result.unused_suppressions.extend(s for s in suppressions if not s.used)
    if baseline is not None:
        result.stale_baseline = baseline.stale
    result.findings.sort()
    return result


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
) -> LintResult:
    """Lint files/directories: both phases, cache, noqa, baseline."""
    config = config or LintConfig()
    resolve_selection(config.select, config.ignore)  # typo'd ids fail loudly
    sources, read_errors = _gather_sources(paths, config)
    analyses, stats = _analyze_with_cache(sources, config)
    program = _run_phase2(analyses, config, stats)
    return _merge_result(analyses, program, config, stats, read_errors)


def lint_changed(
    changed: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    search_paths: Sequence[Path | str] = ("src",),
) -> tuple[LintResult, str | None]:
    """Pre-commit mode: whole-program analysis, change-scoped reporting.

    The analysis itself is never narrowed — interprocedural verdicts
    need every summary, and with a warm cache only the changed files are
    re-analyzed anyway.  What is scoped is the *report*: findings are
    filtered to the changed files when the import graph proves the
    change is local (no other project module imports a changed one, and
    no registry package is touched).  Otherwise the full whole-program
    report is returned, with the fallback reason as the second element.
    """
    config = config or LintConfig()
    resolve_selection(config.select, config.ignore)
    sources, read_errors = _gather_sources(search_paths, config)
    analyses, stats = _analyze_with_cache(sources, config)
    program = _run_phase2(analyses, config, stats)
    result = _merge_result(analyses, program, config, stats, read_errors)

    changed_rel = {
        _relpath(Path(p) if Path(p).is_absolute() else config.root / Path(p), config.root)
        for p in changed
    }
    graph = _build_graph(analyses, config)
    reason: str | None = None
    registries = config.registry_map()
    for rel in sorted(changed_rel):
        analysis = analyses.get(rel)
        if analysis is None or analysis.summary is None:
            continue
        module = analysis.summary.module
        for package in registries:
            if module == package or module.startswith(package + "."):
                reason = (
                    f"{rel} is inside registry package {package}; "
                    "registration reachability needs the whole program"
                )
                break
        if reason:
            break
        importers = graph.importers_of(module)
        if importers:
            reason = (
                f"{module} is imported by {len(importers)} other project "
                "module(s); the change is non-local"
            )
            break
    if reason is not None:
        return result, reason

    scoped = LintResult(
        findings=[f for f in result.findings if f.path in changed_rel],
        suppressed=result.suppressed,
        baselined=result.baselined,
        unused_suppressions=[
            s for s in result.unused_suppressions if s.path in changed_rel
        ],
        # a change-scoped run cannot judge baseline staleness
        stale_baseline=[],
        parse_errors=[
            (p, msg) for p, msg in result.parse_errors if p in changed_rel
        ],
        files=len(changed_rel & set(analyses)),
        stats=result.stats,
    )
    return scoped, None
