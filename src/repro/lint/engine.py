"""Lint orchestration: walk → parse → infer → rules → noqa → baseline."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .config import LintConfig
from .findings import Finding
from .noqa import NoqaScanner, Suppression
from .registry import FileContext, Rule, resolve_selection

__all__ = ["LintResult", "lint_paths", "lint_source", "iter_python_files"]

#: directories never descended into
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", ".eggs", "build"}
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: findings still active after noqa + baseline
    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by inline/file noqa comments
    suppressed: int = 0
    #: findings absorbed by the baseline
    baselined: int = 0
    #: noqa comments that matched nothing
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: baseline entries that matched nothing
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: files that failed to parse: (path, message)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: number of files linted
    files: int = 0

    def exit_code(self, *, fail_on_unused: bool = False) -> int:
        if self.findings or self.parse_errors:
            return 1
        if fail_on_unused and (self.unused_suppressions or self.stale_baseline):
            return 1
        return 0


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``_repro_parent`` link (rules walk ancestry)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def iter_python_files(paths: Sequence[Path], root: Path) -> list[Path]:
    """All ``.py`` files under ``paths`` (resolved against ``root``),
    sorted for deterministic report order."""
    out: set[Path] = set()
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
    return sorted(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _check_file(
    rel_path: str, source: str, rules: Iterable[Rule], config: LintConfig
) -> tuple[list[Finding], NoqaScanner]:
    """Raw findings for one file plus its noqa scanner (pre-baseline)."""
    tree = ast.parse(source)
    attach_parents(tree)
    ctx = FileContext(rel_path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel_path, config.include_for(rule.id)):
            continue
        findings.extend(rule.check(ctx))
    return sorted(findings), NoqaScanner(rel_path, source)


def lint_source(
    source: str,
    virtual_path: str,
    config: LintConfig | None = None,
    *,
    apply_noqa: bool = True,
) -> list[Finding]:
    """Lint a source string as if it lived at ``virtual_path``.

    The backbone of the fixture tests and the fault-injection self-test:
    rule path scoping applies to the virtual path, no filesystem or
    baseline involved.
    """
    config = config or LintConfig()
    rules = resolve_selection(config.select, config.ignore).values()
    findings, scanner = _check_file(virtual_path, source, rules, config)
    if apply_noqa:
        findings = scanner.filter(findings)
    return findings


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
) -> LintResult:
    """Lint files/directories and apply suppressions plus the baseline."""
    config = config or LintConfig()
    rules = list(resolve_selection(config.select, config.ignore).values())
    result = LintResult()
    baseline = (
        Baseline.load(config.baseline_path)
        if config.baseline_path is not None
        else None
    )
    for path in iter_python_files([Path(p) for p in paths], config.root):
        rel_path = _relpath(path, config.root)
        try:
            source = path.read_text(encoding="utf-8")
            raw, scanner = _check_file(rel_path, source, rules, config)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors.append((rel_path, str(exc)))
            continue
        result.files += 1
        active = scanner.filter(raw)
        result.suppressed += len(raw) - len(active)
        if baseline is not None:
            before = len(active)
            active = baseline.absorb(active)
            result.baselined += before - len(active)
        result.findings.extend(active)
        result.unused_suppressions.extend(scanner.unused)
    if baseline is not None:
        result.stale_baseline = baseline.stale
    result.findings.sort()
    return result
