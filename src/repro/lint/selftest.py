"""Fault-injection self-test: plant one violation per rule, confirm it fires.

``repro lint --self-test`` (and the CI lint job) runs every registered
rule against a tiny synthetic module that contains exactly one known
violation at a known line, under a virtual path inside the rule's
default scope.  If the rule reports anything other than exactly that
``rule@line``, the analyzer itself is broken — a linter that silently
stops firing is worse than no linter.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field

from .config import LintConfig
from .engine import lint_source
from .registry import all_rules

__all__ = ["PlantedCase", "SelfTestResult", "run_self_test", "PLANTED_CASES"]


@dataclass(frozen=True)
class PlantedCase:
    """One synthetic module with a single known violation."""

    rule: str
    #: virtual path inside the rule's default scope
    path: str
    #: module source (dedented at construction)
    source: str
    #: 1-based line the violation must be reported on
    line: int


PLANTED_CASES: tuple[PlantedCase, ...] = (
    PlantedCase(
        rule="REP001",
        path="src/repro/core/planted_rep001.py",
        source=textwrap.dedent(
            """\
            def admit(utilization: float, capacity: float) -> bool:
                slack = capacity - utilization
                return utilization <= capacity
            """
        ),
        line=3,
    ),
    PlantedCase(
        rule="REP002",
        path="src/repro/workloads/planted_rep002.py",
        source=textwrap.dedent(
            """\
            import numpy as np


            def draw():
                rng = np.random.default_rng()
                return rng.random()
            """
        ),
        line=5,
    ),
    PlantedCase(
        rule="REP003",
        path="src/repro/experiments/planted_rep003.py",
        source=textwrap.dedent(
            """\
            import time


            def stamp() -> float:
                return time.time()
            """
        ),
        line=5,
    ),
    PlantedCase(
        rule="REP004",
        path="src/repro/core/planted_rep004.py",
        source=textwrap.dedent(
            """\
            def total_load(utilizations):
                load = 0.0
                for u in utilizations:
                    load += u
                return load
            """
        ),
        line=4,
    ),
    PlantedCase(
        rule="REP005",
        path="src/repro/io_/planted_rep005.py",
        source=textwrap.dedent(
            """\
            def digest_ids(task_ids: set):
                out = []
                for tid in task_ids:
                    out.append(tid)
                return out
            """
        ),
        line=3,
    ),
    PlantedCase(
        rule="REP006",
        path="src/repro/service/planted_rep006.py",
        source=textwrap.dedent(
            """\
            class Cache:
                def __init__(self):
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """
        ),
        line=6,
    ),
)


@dataclass
class SelfTestResult:
    """Outcome of the fault-injection pass."""

    #: (case, human-readable problem) for every failed case
    failures: list[tuple[PlantedCase, str]] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"self-test OK: all {self.checked} planted violations detected"
        lines = [
            f"self-test FAILED: {len(self.failures)}/{self.checked} planted "
            "violations not detected correctly"
        ]
        for case, problem in self.failures:
            lines.append(f"  {case.rule} @ {case.path}:{case.line}: {problem}")
        return "\n".join(lines)


def run_self_test() -> SelfTestResult:
    """Plant one violation per rule and assert it is the only report."""
    result = SelfTestResult()
    config = LintConfig()  # every rule, no baseline, defaults only
    covered = {case.rule for case in PLANTED_CASES}
    uncovered = [rid for rid in all_rules() if rid not in covered]
    for rid in uncovered:
        result.failures.append(
            (
                PlantedCase(rule=rid, path="<missing>", source="", line=0),
                "registered rule has no planted self-test case",
            )
        )
    result.checked = len(PLANTED_CASES) + len(uncovered)
    for case in PLANTED_CASES:
        findings = lint_source(case.source, case.path, config)
        hits = [
            (f.rule, f.line)
            for f in findings
            if f.rule == case.rule and f.line == case.line
        ]
        extras = [
            f"{f.rule}@{f.line}"
            for f in findings
            if (f.rule, f.line) != (case.rule, case.line)
        ]
        if not hits:
            got = ", ".join(f"{f.rule}@{f.line}" for f in findings) or "nothing"
            result.failures.append(
                (case, f"expected {case.rule}@{case.line}, got {got}")
            )
        elif extras:
            result.failures.append(
                (case, f"unexpected extra findings: {', '.join(extras)}")
            )
    return result
