"""Fault-injection self-test: plant one violation per rule, confirm it fires.

``repro lint --self-test`` (and the CI lint job) runs every registered
rule against a tiny synthetic module that contains exactly one known
violation at a known line, under a virtual path inside the rule's
default scope.  If the rule reports anything other than exactly that
``rule@line``, the analyzer itself is broken — a linter that silently
stops firing is worse than no linter.

The per-file rules (REP001-006) are planted as single modules run
through :func:`lint_source`.  The interprocedural rules (REP007-013) are
planted as *programs* — each violation is split across two or more
modules so that detecting it requires the call graph, and run through
:func:`lint_sources`.  A registered rule with neither kind of planted
case fails the self-test outright.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field

from .config import LintConfig
from .engine import lint_source, lint_sources
from .registry import all_rules

__all__ = [
    "PlantedCase",
    "PlantedProgram",
    "SelfTestResult",
    "run_self_test",
    "PLANTED_CASES",
    "PLANTED_PROGRAMS",
]


@dataclass(frozen=True)
class PlantedCase:
    """One synthetic module with a single known violation."""

    rule: str
    #: virtual path inside the rule's default scope
    path: str
    #: module source (dedented at construction)
    source: str
    #: 1-based line the violation must be reported on
    line: int


PLANTED_CASES: tuple[PlantedCase, ...] = (
    PlantedCase(
        rule="REP001",
        path="src/repro/core/planted_rep001.py",
        source=textwrap.dedent(
            """\
            def admit(utilization: float, capacity: float) -> bool:
                slack = capacity - utilization
                return utilization <= capacity
            """
        ),
        line=3,
    ),
    PlantedCase(
        rule="REP002",
        path="src/repro/workloads/planted_rep002.py",
        source=textwrap.dedent(
            """\
            import numpy as np


            def draw():
                rng = np.random.default_rng()
                return rng.random()
            """
        ),
        line=5,
    ),
    PlantedCase(
        rule="REP003",
        path="src/repro/experiments/planted_rep003.py",
        source=textwrap.dedent(
            """\
            import time


            def stamp() -> float:
                return time.time()
            """
        ),
        line=5,
    ),
    PlantedCase(
        rule="REP004",
        path="src/repro/core/planted_rep004.py",
        source=textwrap.dedent(
            """\
            def total_load(utilizations):
                load = 0.0
                for u in utilizations:
                    load += u
                return load
            """
        ),
        line=4,
    ),
    PlantedCase(
        rule="REP005",
        path="src/repro/io_/planted_rep005.py",
        source=textwrap.dedent(
            """\
            def digest_ids(task_ids: set):
                out = []
                for tid in task_ids:
                    out.append(tid)
                return out
            """
        ),
        line=3,
    ),
    PlantedCase(
        rule="REP006",
        path="src/repro/service/planted_rep006.py",
        source=textwrap.dedent(
            """\
            class Cache:
                def __init__(self):
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """
        ),
        line=6,
    ),
)


@dataclass(frozen=True)
class PlantedProgram:
    """A multi-module program with a single cross-module violation."""

    rule: str
    #: virtual path → module source, every module needed for detection
    files: tuple[tuple[str, str], ...]
    #: path the violation must be reported in
    path: str
    #: 1-based line the violation must be reported on
    line: int
    #: extra REP009 registries the case needs (package → pattern)
    registries: tuple[tuple[str, str], ...] = ()


PLANTED_PROGRAMS: tuple[PlantedProgram, ...] = (
    # REP007: the float is produced in one module, compared bare in
    # another — invisible to per-file analysis by construction.
    PlantedProgram(
        rule="REP007",
        files=(
            (
                "src/repro/core/planted_demand.py",
                textwrap.dedent(
                    """\
                    def demand(tasks, horizon) -> float:
                        return 0.5 * horizon
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep007.py",
                textwrap.dedent(
                    """\
                    from repro.core.planted_demand import demand


                    def admits(tasks, horizon, capacity: float) -> bool:
                        return demand(tasks, horizon) <= capacity
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep007.py",
        line=5,
    ),
    # REP008: the taint (PYTHONHASHSEED-dependent hash) is two calls
    # away from the RNG construction, in a different module.
    PlantedProgram(
        rule="REP008",
        files=(
            (
                "src/repro/workloads/planted_label_seed.py",
                textwrap.dedent(
                    """\
                    def label_seed(label):
                        return hash(label)
                    """
                ),
            ),
            (
                "src/repro/workloads/planted_rep008.py",
                textwrap.dedent(
                    """\
                    import numpy as np

                    from repro.workloads.planted_label_seed import label_seed


                    def make_rng(label):
                        return np.random.default_rng(label_seed(label))
                    """
                ),
            ),
        ),
        path="src/repro/workloads/planted_rep008.py",
        line=7,
    ),
    # REP009: two member modules match the registry pattern, the
    # __init__ imports only one — the other's registration never runs.
    PlantedProgram(
        rule="REP009",
        files=(
            (
                "src/repro/plugins/__init__.py",
                "from . import p01_alpha  # noqa: F401 - registration\n",
            ),
            (
                "src/repro/plugins/p01_alpha.py",
                "REGISTERED = True\n",
            ),
            (
                "src/repro/plugins/p02_beta.py",
                "REGISTERED = True\n",
            ),
        ),
        path="src/repro/plugins/p02_beta.py",
        line=1,
        registries=(("repro.plugins", "p*"),),
    ),
    # REP010: the defining module alone is safe — its only caller wraps
    # the call in `with _LOCK:` — so the finding only appears because a
    # *second* module calls the mutator unlocked.  Detecting it
    # genuinely requires the cross-module caller index.
    PlantedProgram(
        rule="REP010",
        files=(
            (
                "src/repro/service/planted_state.py",
                textwrap.dedent(
                    """\
                    import threading

                    _LOCK = threading.Lock()
                    _STATE = {}


                    def bump(key):
                        _STATE[key] = _STATE.get(key, 0) + 1


                    def locked_bump(key):
                        with _LOCK:
                            bump(key)
                    """
                ),
            ),
            (
                "src/repro/service/planted_rep010.py",
                textwrap.dedent(
                    """\
                    from repro.service.planted_state import bump


                    def handle(key):
                        bump(key)
                    """
                ),
            ),
        ),
        path="src/repro/service/planted_state.py",
        line=8,
    ),
    # REP011: the impurity (a module-global append) lives one module
    # away from the `@lru_cache` that freezes it.
    PlantedProgram(
        rule="REP011",
        files=(
            (
                "src/repro/core/planted_effects.py",
                textwrap.dedent(
                    """\
                    _TALLY = []


                    def record(value):
                        _TALLY.append(value)
                        return value
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep011.py",
                textwrap.dedent(
                    """\
                    from functools import lru_cache

                    from repro.core.planted_effects import record


                    @lru_cache(maxsize=None)
                    def cached_record(value):
                        return record(value)
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep011.py",
        line=7,
    ),
    # REP012: the blocking primitive (`time.sleep`) hides inside a sync
    # helper in another module; only the transitive effect set reveals
    # that awaiting nothing, the coroutine stalls the whole event loop.
    PlantedProgram(
        rule="REP012",
        files=(
            (
                "src/repro/service/planted_pause.py",
                textwrap.dedent(
                    """\
                    import time


                    def pause():
                        time.sleep(0.01)
                    """
                ),
            ),
            (
                "src/repro/service/planted_rep012.py",
                textwrap.dedent(
                    """\
                    from repro.service.planted_pause import pause


                    async def poll():
                        pause()
                    """
                ),
            ),
        ),
        path="src/repro/service/planted_rep012.py",
        line=5,
    ),
    # REP013: the fanned-out trial function mutates a module global in
    # its home module — each pool worker would mutate a private copy,
    # so results diverge between --jobs values.
    PlantedProgram(
        rule="REP013",
        files=(
            (
                "src/repro/analysis/planted_trial.py",
                textwrap.dedent(
                    """\
                    _TALLY = []


                    def trial(point):
                        _TALLY.append(point)
                        return point
                    """
                ),
            ),
            (
                "src/repro/analysis/planted_rep013.py",
                textwrap.dedent(
                    """\
                    from repro.analysis.planted_trial import trial
                    from repro.runner.executor import run_trials


                    def campaign(points):
                        return run_trials(trial, points)
                    """
                ),
            ),
        ),
        path="src/repro/analysis/planted_rep013.py",
        line=6,
    ),
    # REP014: the subtraction mixes time with a *rate* — but the rate
    # arrives as another module's return value, so only the unit
    # fixpoint over the call graph can prove the mismatch.
    PlantedProgram(
        rule="REP014",
        files=(
            (
                "src/repro/core/planted_totals.py",
                textwrap.dedent(
                    """\
                    def total_utilization(tasks):
                        return sum(t.utilization for t in tasks)
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep014.py",
                textwrap.dedent(
                    """\
                    from repro.core.planted_totals import total_utilization


                    def remaining(tasks, deadline):
                        return deadline - total_utilization(tasks)
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep014.py",
        line=5,
    ),
    # REP015: the pre-PR-8 dbf() bug shape — an absolute epsilon against
    # a time-scale value.  The time dimension is only known through the
    # callee's return term, one module away.
    PlantedProgram(
        rule="REP015",
        files=(
            (
                "src/repro/core/planted_horizon.py",
                textwrap.dedent(
                    """\
                    def busy_horizon(tasks):
                        return max(t.deadline for t in tasks)
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep015.py",
                textwrap.dedent(
                    """\
                    from repro.core.planted_horizon import busy_horizon


                    def within(tasks, x):
                        return x < busy_horizon(tasks) - 1e-9
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep015.py",
        line=5,
    ),
    # REP016: the caller passes a period (time) into a parameter whose
    # name marks it as a utilization (rate) — parameter expectation and
    # argument dimension live in different modules.
    PlantedProgram(
        rule="REP016",
        files=(
            (
                "src/repro/core/planted_admit.py",
                textwrap.dedent(
                    """\
                    def admit(utilization, speed):
                        return utilization <= speed
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep016.py",
                textwrap.dedent(
                    """\
                    from repro.core.planted_admit import admit


                    def check(task):
                        return admit(task.period, 1.0)
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep016.py",
        line=5,
    ),
    # REP017: total demand (work) compared straight against a horizon
    # (time) — the missing speed normalization only provable once the
    # callee's work dimension crosses the module boundary.
    PlantedProgram(
        rule="REP017",
        files=(
            (
                "src/repro/core/planted_total_demand.py",
                textwrap.dedent(
                    """\
                    def total_demand(tasks):
                        return sum(t.wcet for t in tasks)
                    """
                ),
            ),
            (
                "src/repro/core/planted_rep017.py",
                textwrap.dedent(
                    """\
                    from repro.core.planted_total_demand import total_demand


                    def fits(tasks, horizon):
                        return total_demand(tasks) < horizon
                    """
                ),
            ),
        ),
        path="src/repro/core/planted_rep017.py",
        line=5,
    ),
)


@dataclass
class SelfTestResult:
    """Outcome of the fault-injection pass."""

    #: (case, human-readable problem) for every failed case
    failures: list[tuple[PlantedCase, str]] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"self-test OK: all {self.checked} planted violations detected"
        lines = [
            f"self-test FAILED: {len(self.failures)}/{self.checked} planted "
            "violations not detected correctly"
        ]
        for case, problem in self.failures:
            lines.append(f"  {case.rule} @ {case.path}:{case.line}: {problem}")
        return "\n".join(lines)


def run_self_test() -> SelfTestResult:
    """Plant one violation per rule and assert it is the only report."""
    result = SelfTestResult()
    config = LintConfig()  # every rule, no baseline, defaults only
    covered = {case.rule for case in PLANTED_CASES}
    covered |= {program.rule for program in PLANTED_PROGRAMS}
    uncovered = [rid for rid in all_rules() if rid not in covered]
    for rid in uncovered:
        result.failures.append(
            (
                PlantedCase(rule=rid, path="<missing>", source="", line=0),
                "registered rule has no planted self-test case",
            )
        )
    result.checked = len(PLANTED_CASES) + len(PLANTED_PROGRAMS) + len(uncovered)
    for case in PLANTED_CASES:
        findings = lint_source(case.source, case.path, config)
        hits = [
            (f.rule, f.line)
            for f in findings
            if f.rule == case.rule and f.line == case.line
        ]
        extras = [
            f"{f.rule}@{f.line}"
            for f in findings
            if (f.rule, f.line) != (case.rule, case.line)
        ]
        if not hits:
            got = ", ".join(f"{f.rule}@{f.line}" for f in findings) or "nothing"
            result.failures.append(
                (case, f"expected {case.rule}@{case.line}, got {got}")
            )
        elif extras:
            result.failures.append(
                (case, f"unexpected extra findings: {', '.join(extras)}")
            )
    for program in PLANTED_PROGRAMS:
        facade = PlantedCase(
            rule=program.rule, path=program.path, source="", line=program.line
        )
        program_config = LintConfig(registries=dict(program.registries))
        findings = lint_sources(dict(program.files), program_config)
        hits = [
            f
            for f in findings
            if f.rule == program.rule
            and f.path == program.path
            and f.line == program.line
        ]
        extras = [
            f"{f.rule}@{f.path}:{f.line}"
            for f in findings
            if (f.rule, f.path, f.line)
            != (program.rule, program.path, program.line)
        ]
        if not hits:
            got = (
                ", ".join(f"{f.rule}@{f.path}:{f.line}" for f in findings)
                or "nothing"
            )
            result.failures.append(
                (
                    facade,
                    f"expected {program.rule}@{program.path}:{program.line}, "
                    f"got {got}",
                )
            )
        elif extras:
            result.failures.append(
                (facade, f"unexpected extra findings: {', '.join(extras)}")
            )
    return result
