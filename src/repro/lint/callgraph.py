"""Phase 2's view of the project: import graph, call resolution, fixpoints.

Built from the :class:`~repro.lint.summaries.ModuleSummary` of every
analyzed file, never from ASTs — so the graph is cheap to rebuild each
run even when every module summary came out of the incremental cache.

The graph answers the three interprocedural questions the program rules
ask:

* does ``module.function`` produce a float on some return path
  (REP007), following ``return helper(...)`` chains across modules with
  a pessimistic fixpoint (cycles resolve to "not proven float");
* does ``module.function`` derive its return value from blessed seed
  material (REP008), with an optimistic fixpoint (a self-recursive
  derivation chain is innocent until a taint or unknown appears);
* which modules are reachable from a registry package's ``__init__``
  over project-internal import edges (REP009).
"""

from __future__ import annotations

from .summaries import ModuleSummary, SeedProv

__all__ = ["ProjectGraph"]


class ProjectGraph:
    """Whole-program facts derived from per-module summaries."""

    def __init__(
        self,
        summaries: list[ModuleSummary],
        registries: dict[str, str] | None = None,
    ) -> None:
        #: module name → summary, for every analyzed module
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        #: registry package → fnmatch pattern for member modules (REP009)
        self.registries: dict[str, str] = dict(registries or {})
        self._functions: dict[str, dict[str, object]] = {
            s.module: {fn.qualname: fn for fn in s.functions}
            for s in summaries
        }
        #: project-internal import edges (candidates filtered to members)
        self.import_edges: dict[str, tuple[str, ...]] = {
            s.module: tuple(
                m for m in s.imports if m in self.modules and m != s.module
            )
            for s in summaries
        }
        self._symbol_imports: dict[str, dict[str, tuple[str, str]]] = {
            s.module: {name: (mod, orig) for name, mod, orig in s.symbol_imports}
            for s in summaries
        }
        self._float_memo: dict[tuple[str, str], bool] = {}
        self._seed_memo: dict[tuple[str, str], tuple[bool, str]] = {}

    # -- symbol resolution ---------------------------------------------------

    def resolve(self, module: str, name: str) -> tuple[str, str] | None:
        """Follow re-export chains to the defining ``(module, function)``.

        ``from repro.core import dbf_bound`` re-exported through a
        package ``__init__`` resolves to the module that actually
        defines the function.  Returns ``None`` for external modules,
        unknown names, and re-export cycles.
        """
        seen: set[tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            if module not in self.modules:
                return None
            if name in self._functions[module]:
                return (module, name)
            origin = self._symbol_imports[module].get(name)
            if origin is None:
                # `from pkg import mod` style: the "symbol" may itself
                # be a submodule — nothing callable to resolve to
                return None
            module, name = origin
        return None

    def function(self, module: str, name: str):
        """The defining :class:`FunctionSummary`, or ``None``."""
        resolved = self.resolve(module, name)
        if resolved is None:
            return None
        return self._functions[resolved[0]][resolved[1]]

    # -- produces-float fixpoint (REP007) ------------------------------------

    def returns_float(self, module: str, name: str) -> bool:
        """Can a call to ``module.name`` produce a float?

        Pessimistic on cycles: a mutually recursive chain with no
        direct float evidence stays unproven, so REP007 never flags on
        speculation.
        """
        return self._returns_float((module, name), ())

    def _returns_float(
        self, key: tuple[str, str], stack: tuple[tuple[str, str], ...]
    ) -> bool:
        if key in self._float_memo:
            return self._float_memo[key]
        if key in stack:
            return False  # cycle: not proven
        resolved = self.resolve(*key)
        if resolved is None:
            return False
        fn = self._functions[resolved[0]][resolved[1]]
        result = fn.returns_float or any(
            self._returns_float(self.resolve(*dep) or dep, stack + (key,))
            for dep in fn.return_call_deps
        )
        self._float_memo[key] = result
        return result

    # -- derives-from-trial-seed fixpoint (REP008) ---------------------------

    def seed_ok(self, module: str, name: str) -> tuple[bool, str]:
        """Does every return of ``module.name`` derive from seed material?

        Returns ``(verdict, reason)`` where ``reason`` explains a
        ``False``.  Optimistic on cycles: recursion through the chain
        under test counts as derived, so only a genuine taint or
        unknown source breaks the verdict.
        """
        return self._seed_ok((module, name), ())

    def _seed_ok(
        self, key: tuple[str, str], stack: tuple[tuple[str, str], ...]
    ) -> tuple[bool, str]:
        if key in self._seed_memo:
            return self._seed_memo[key]
        if key in stack:
            return True, ""  # optimistic: the cycle alone is no taint
        resolved = self.resolve(*key)
        if resolved is None:
            return False, f"`{key[0]}.{key[1]}` is outside the analyzed program"
        fn = self._functions[resolved[0]][resolved[1]]
        if not fn.return_seed_provs:
            verdict = (
                False,
                f"`{key[0]}.{key[1]}` returns nothing seed-derived",
            )
            self._seed_memo[key] = verdict
            return verdict
        for prov in fn.return_seed_provs:
            ok, why = self.prov_verdict(prov, stack + (key,))
            if not ok:
                verdict = (False, why)
                self._seed_memo[key] = verdict
                return verdict
        self._seed_memo[key] = (True, "")
        return True, ""

    def prov_verdict(
        self,
        prov: SeedProv,
        _stack: tuple[tuple[str, str], ...] = (),
    ) -> tuple[bool, str]:
        """Judge one expression's provenance against the seed lattice."""
        if prov.taint:
            return False, prov.taint
        if prov.seed:
            return True, ""
        if prov.deps:
            for dep in prov.deps:
                ok, why = self._seed_ok(dep, _stack)
                if not ok:
                    return False, why
            return True, ""
        if prov.unknown:
            return False, prov.unknown
        return False, "value has no seed provenance"

    # -- registry reachability (REP009) --------------------------------------

    def reachable_from(self, root: str) -> set[str]:
        """Modules reachable from ``root`` over project import edges."""
        if root not in self.modules:
            return set()
        seen = {root}
        frontier = [root]
        while frontier:
            module = frontier.pop()
            for dep in self.import_edges.get(module, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        return seen

    # -- import-graph queries (incremental cache, pre-commit mode) -----------

    def importers_of(self, module: str) -> set[str]:
        """Transitive closure of modules that import ``module``."""
        reverse: dict[str, list[str]] = {}
        for src, deps in self.import_edges.items():
            for dep in deps:
                reverse.setdefault(dep, []).append(src)
        seen: set[str] = set()
        frontier = [module]
        while frontier:
            cur = frontier.pop()
            for importer in reverse.get(cur, ()):
                if importer not in seen:
                    seen.add(importer)
                    frontier.append(importer)
        return seen
